"""The MapReduce cost model of Section 3.3: constants, formulas, models, estimates."""

from .constants import (
    CostConstants,
    DEFAULT_JOB_OVERHEAD_SECONDS,
    DEFAULT_SPLIT_MB,
    GUMBO_MB_PER_REDUCER,
    HadoopSettings,
    MAP_OUTPUT_METADATA_BYTES,
    PIG_INPUT_MB_PER_REDUCER,
)
from .estimates import RelationStats, StatisticsCatalog, catalog_for
from .formulas import (
    MapPartition,
    job_cost,
    map_cost,
    map_cost_aggregated,
    map_cost_per_partition,
    merge_map_cost,
    merge_passes,
    merge_reduce_cost,
    reduce_cost,
)
from .models import (
    CostModel,
    GumboCostModel,
    JobCostBreakdown,
    JobProfile,
    WangCostModel,
    make_cost_model,
)

__all__ = [
    "CostConstants",
    "CostModel",
    "DEFAULT_JOB_OVERHEAD_SECONDS",
    "DEFAULT_SPLIT_MB",
    "GUMBO_MB_PER_REDUCER",
    "GumboCostModel",
    "HadoopSettings",
    "JobCostBreakdown",
    "JobProfile",
    "MAP_OUTPUT_METADATA_BYTES",
    "MapPartition",
    "PIG_INPUT_MB_PER_REDUCER",
    "RelationStats",
    "StatisticsCatalog",
    "WangCostModel",
    "catalog_for",
    "job_cost",
    "make_cost_model",
    "map_cost",
    "map_cost_aggregated",
    "map_cost_per_partition",
    "merge_map_cost",
    "merge_passes",
    "merge_reduce_cost",
    "reduce_cost",
]
