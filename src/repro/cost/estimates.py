"""Size and selectivity estimation for query planning.

Gumbo decides how to group semi-joins *before* running any job, so it needs
estimates of

* ``|α|`` / ``|κ|`` — the size (MB) of the facts conforming to a guard or
  conditional atom,
* the intermediate (map output) data volume a job will produce, and
* the output size ``K`` of a job.

The paper (Section 5.1, optimization (3)) obtains these "through simulation of
the map function on a sample of the input relations"; the upper bound ``N_1``
is used for output sizes (Section 4.1).  :class:`StatisticsCatalog` implements
the sampling-based estimation of conforming fractions and semi-join
selectivities over an in-memory :class:`~repro.model.database.Database`, with
a deterministic sampler so planning is reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..model.atoms import Atom
from ..model.database import Database
from ..model.terms import Variable


@dataclass(frozen=True)
class RelationStats:
    """Cardinality and size of one stored relation."""

    name: str
    tuples: int
    arity: int
    size_mb: float
    bytes_per_field: int

    @property
    def tuple_size_bytes(self) -> int:
        return self.arity * self.bytes_per_field

    def scaled(self, fraction: float) -> "RelationStats":
        """Stats for the subset containing *fraction* of the tuples."""
        fraction = max(0.0, min(1.0, fraction))
        return RelationStats(
            name=self.name,
            tuples=int(round(self.tuples * fraction)),
            arity=self.arity,
            size_mb=self.size_mb * fraction,
            bytes_per_field=self.bytes_per_field,
        )


class StatisticsCatalog:
    """Sampling-based statistics over a database, used by the planner.

    Parameters
    ----------
    database:
        The database to collect statistics on.
    sample_size:
        Maximum number of tuples sampled per relation when estimating the
        fraction of tuples conforming to an atom or matching a semi-join.
    seed:
        Seed for the deterministic sampler.
    """

    def __init__(
        self,
        database: Database,
        sample_size: int = 1000,
        seed: int = 20160522,
    ) -> None:
        self._database = database
        self._sample_size = max(1, sample_size)
        self._seed = seed
        self._relation_stats: Dict[str, RelationStats] = {}
        self._samples: Dict[str, List[Tuple[object, ...]]] = {}
        self._fraction_cache: Dict[Atom, float] = {}
        for relation in database:
            self._relation_stats[relation.name] = RelationStats(
                name=relation.name,
                tuples=len(relation),
                arity=relation.arity,
                size_mb=relation.size_mb(),
                bytes_per_field=relation.bytes_per_field,
            )

    # -- relation-level ----------------------------------------------------------

    @property
    def database(self) -> Database:
        return self._database

    def has_relation(self, name: str) -> bool:
        return name in self._relation_stats

    def relation_stats(self, name: str) -> Optional[RelationStats]:
        return self._relation_stats.get(name)

    def register_estimate(self, stats: RelationStats) -> None:
        """Register statistics for a relation that does not exist yet.

        Used for intermediate relations (the outputs of earlier subqueries)
        whose sizes the planner must guess before they are materialised.
        """
        self._relation_stats[stats.name] = stats

    def refresh_relation(self, name: str) -> None:
        """Recompute the stats of one relation in place after a data change.

        The incremental serving path keeps the catalog alive across insert
        batches instead of rebuilding it: the mutated relation's cardinality
        and size are re-read from the live database, and the derived caches
        that depend on its contents — its sample and every conforming
        fraction of an atom over it — are dropped so they are lazily
        re-derived.  Other relations' statistics are untouched.
        """
        relation = self._database.get(name)
        if relation is None:
            self._relation_stats.pop(name, None)
        else:
            self._relation_stats[name] = RelationStats(
                name=relation.name,
                tuples=len(relation),
                arity=relation.arity,
                size_mb=relation.size_mb(),
                bytes_per_field=relation.bytes_per_field,
            )
        self._samples.pop(name, None)
        for atom in [a for a in self._fraction_cache if a.relation == name]:
            del self._fraction_cache[atom]

    def scratch_copy(self) -> "StatisticsCatalog":
        """A copy whose registered estimates do not leak back into this catalog.

        The expensive parts — the per-relation samples and conforming-fraction
        cache — are *shared* (they are pure derived data of the stored
        relations), while the relation-stats mapping is copied so that
        :meth:`register_estimate` calls made while planning one query (whose
        intermediate names may collide with another query's) stay isolated.
        """
        copy = StatisticsCatalog.__new__(StatisticsCatalog)
        copy._database = self._database
        copy._sample_size = self._sample_size
        copy._seed = self._seed
        copy._relation_stats = dict(self._relation_stats)
        copy._samples = self._samples
        copy._fraction_cache = self._fraction_cache
        return copy

    # -- sampling --------------------------------------------------------------------

    def sample(self, name: str) -> List[Tuple[object, ...]]:
        """A deterministic sample (without replacement) of relation *name*."""
        if name in self._samples:
            return self._samples[name]
        relation = self._database.get(name)
        if relation is None or len(relation) == 0:
            rows: List[Tuple[object, ...]] = []
        else:
            ordered = relation.sorted_tuples()
            if len(ordered) <= self._sample_size:
                rows = ordered
            else:
                rng = random.Random(self._seed ^ hash(name) & 0xFFFFFFFF)
                rows = rng.sample(ordered, self._sample_size)
        self._samples[name] = rows
        return rows

    # -- atom-level estimates ----------------------------------------------------------

    def atom_fraction(self, atom: Atom) -> float:
        """Estimated fraction of the relation's tuples conforming to *atom*.

        Atoms without constants or repeated variables trivially have fraction
        1.0; otherwise the fraction is estimated on the sample.
        """
        if atom in self._fraction_cache:
            return self._fraction_cache[atom]
        stats = self._relation_stats.get(atom.relation)
        if stats is None or stats.tuples == 0:
            fraction = 0.0
        elif _is_unrestricted(atom):
            fraction = 1.0
        else:
            rows = self.sample(atom.relation)
            if not rows:
                # Relation registered via estimate only: assume unrestricted.
                fraction = 1.0
            else:
                matches = sum(1 for row in rows if atom.conforms(row))
                fraction = matches / len(rows)
        self._fraction_cache[atom] = fraction
        return fraction

    def atom_count(self, atom: Atom) -> float:
        """Estimated number of facts conforming to *atom*."""
        stats = self._relation_stats.get(atom.relation)
        if stats is None:
            return 0.0
        return stats.tuples * self.atom_fraction(atom)

    def atom_size_mb(self, atom: Atom) -> float:
        """Estimated size ``|atom|`` in MB of the facts conforming to *atom*."""
        stats = self._relation_stats.get(atom.relation)
        if stats is None:
            return 0.0
        return stats.size_mb * self.atom_fraction(atom)

    def atom_tuple_bytes(self, atom: Atom) -> int:
        """Size in bytes of one tuple of the atom's relation (fallback: 10/field)."""
        stats = self._relation_stats.get(atom.relation)
        if stats is None:
            return 10 * atom.arity
        return stats.tuple_size_bytes

    # -- semi-join selectivity --------------------------------------------------------------

    def semijoin_selectivity(self, guard: Atom, conditional: Atom) -> float:
        """Estimated fraction of guard facts surviving ``guard ⋉ conditional``.

        Estimated by probing a sample of the guard against the join-key set of
        a sample of the conditional relation.  When either sample is empty the
        paper's upper bound of 1.0 is returned (output ≈ guard size).
        """
        shared = guard.shared_variables(conditional)
        if not shared:
            # Boolean-style condition: either everything or nothing survives;
            # be conservative and keep the upper bound.
            return 1.0
        join_key = tuple(v for v in guard.variables if v in shared)
        guard_rows = [r for r in self.sample(guard.relation) if guard.conforms(r)]
        cond_sample = self.sample(conditional.relation)
        cond_rows = [r for r in cond_sample if conditional.conforms(r)]
        if not guard_rows:
            return 1.0
        if not cond_rows:
            # The conditional relation was sampled and nothing conforms: the
            # semi-join is (almost) empty.  Only when the relation could not be
            # sampled at all (e.g. a registered estimate) do we fall back to
            # the upper bound.
            return 0.0 if cond_sample else 1.0
        key_set = {
            tuple(binding[v] for v in join_key)
            for binding in (conditional.match(r) for r in cond_rows)
            if binding is not None
        }
        survivors = 0
        for row in guard_rows:
            binding = guard.match(row)
            if binding is None:
                continue
            if tuple(binding[v] for v in join_key) in key_set:
                survivors += 1
        return survivors / len(guard_rows)

    def semijoin_output_mb(
        self,
        guard: Atom,
        conditional: Atom,
        projection: Tuple[Variable, ...],
        use_selectivity: bool = False,
    ) -> float:
        """Estimated size in MB of ``pi_projection(guard ⋉ conditional)``.

        Defaults to the paper's upper bound (the full conforming-guard size,
        adjusted for the projection width); with *use_selectivity* the sampled
        selectivity is applied.
        """
        stats = self._relation_stats.get(guard.relation)
        if stats is None:
            return 0.0
        width_fraction = (
            len(projection) / guard.arity if guard.arity else 1.0
        )
        size = self.atom_size_mb(guard) * width_fraction
        if use_selectivity:
            size *= self.semijoin_selectivity(guard, conditional)
        return size


def _is_unrestricted(atom: Atom) -> bool:
    """True when every term is a variable and no variable repeats."""
    variables = [t for t in atom.terms]
    if any(not isinstance(t, Variable) for t in variables):
        return False
    return len(set(variables)) == len(variables)


def catalog_for(database: Database, sample_size: int = 1000) -> StatisticsCatalog:
    """Convenience constructor mirroring Gumbo's default sampling behaviour."""
    return StatisticsCatalog(database, sample_size=sample_size)
