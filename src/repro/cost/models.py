"""Cost-model objects: the Gumbo (per-partition) and Wang (aggregate) models.

The planner and the execution engine both need to turn a *job profile*
(input partitions, intermediate size, output size, number of reducers) into a
cost in seconds.  :class:`CostModel` is the small strategy interface for this;
:class:`GumboCostModel` uses Equation (2) of the paper, :class:`WangCostModel`
Equation (3).  Experiment E3 (Section 5.2, "Cost Model") compares the two.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from .constants import (
    CostConstants,
    DEFAULT_SPLIT_MB,
    GUMBO_MB_PER_REDUCER,
)
from .formulas import (
    MapPartition,
    map_cost_aggregated,
    map_cost_per_partition,
    reduce_cost,
)


@dataclass(frozen=True)
class JobProfile:
    """Everything the cost model needs to know about one MR job.

    ``partitions`` describes the uniform input parts (one per input relation
    in all of the paper's jobs); ``output_mb`` is ``K``; ``reducers`` is ``r``.
    """

    partitions: Sequence[MapPartition]
    output_mb: float
    reducers: int
    label: str = ""

    @property
    def input_mb(self) -> float:
        return sum(p.input_mb for p in self.partitions)

    @property
    def intermediate_mb(self) -> float:
        return sum(p.intermediate_mb for p in self.partitions)


@dataclass(frozen=True)
class JobCostBreakdown:
    """Cost of one job split into its phases (all in seconds)."""

    overhead: float
    map: float
    reduce: float

    @property
    def total(self) -> float:
        return self.overhead + self.map + self.reduce


class CostModel:
    """Strategy interface turning a :class:`JobProfile` into seconds."""

    name = "abstract"

    def __init__(self, constants: Optional[CostConstants] = None) -> None:
        self.constants = constants or CostConstants.paper_values()

    # -- full-job costing -----------------------------------------------------

    def map_cost(self, partitions: Sequence[MapPartition]) -> float:
        raise NotImplementedError

    def reduce_cost(
        self, intermediate_mb: float, output_mb: float, reducers: int
    ) -> float:
        return reduce_cost(intermediate_mb, output_mb, reducers, self.constants)

    def job_breakdown(self, profile: JobProfile) -> JobCostBreakdown:
        return JobCostBreakdown(
            overhead=self.constants.job_overhead,
            map=self.map_cost(profile.partitions),
            reduce=self.reduce_cost(
                profile.intermediate_mb, profile.output_mb, profile.reducers
            ),
        )

    def job_cost(self, profile: JobProfile) -> float:
        return self.job_breakdown(profile).total

    def program_cost(self, profiles: Sequence[JobProfile]) -> float:
        """Total cost of an MR program: the sum over its jobs."""
        return sum(self.job_cost(profile) for profile in profiles)

    # -- helpers used when building profiles -----------------------------------

    def default_reducers(self, intermediate_mb: float) -> int:
        """Gumbo's reducer allocation: 256 MB of intermediate data per reducer."""
        return max(1, math.ceil(intermediate_mb / GUMBO_MB_PER_REDUCER))

    def default_mappers(
        self, input_mb: float, split_mb: float = DEFAULT_SPLIT_MB
    ) -> int:
        """Number of map tasks for an input of *input_mb* MB."""
        return max(1, math.ceil(input_mb / split_mb))


class GumboCostModel(CostModel):
    """The paper's per-partition cost model (Equation (2))."""

    name = "gumbo"

    def map_cost(self, partitions: Sequence[MapPartition]) -> float:
        return map_cost_per_partition(partitions, self.constants)


class WangCostModel(CostModel):
    """The aggregate cost model of Wang & Chan / MRShare (Equation (3))."""

    name = "wang"

    def map_cost(self, partitions: Sequence[MapPartition]) -> float:
        return map_cost_aggregated(partitions, self.constants)


def make_cost_model(
    name: str, constants: Optional[CostConstants] = None
) -> CostModel:
    """Factory: ``"gumbo"`` or ``"wang"`` (case-insensitive)."""
    lowered = name.lower()
    if lowered == "gumbo":
        return GumboCostModel(constants)
    if lowered == "wang":
        return WangCostModel(constants)
    raise ValueError(f"unknown cost model {name!r}; expected 'gumbo' or 'wang'")
