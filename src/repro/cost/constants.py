"""Cost-model constants and Hadoop settings (Appendix B of the paper).

Two tables from the paper are reproduced here:

* Table 5 — the per-MB I/O cost constants measured on the authors' cluster
  (local/HDFS read and write, network transfer, the external-sort merge
  factor ``D`` and the map/reduce task buffer limits);
* Table 4 — the Hadoop settings relevant to the simulator (task memory,
  node resources, sort buffer, etc.).

The constants are plain dataclasses so that experiments can derive modified
copies (e.g. the NP-hardness reduction of Appendix A sets every constant to 0
except ``hr = 1``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


#: Metadata overhead Hadoop charges per map-output record (paper footnote 2).
MAP_OUTPUT_METADATA_BYTES = 16

#: Default HDFS block / input split size in MB (Hadoop default of 128 MB).
DEFAULT_SPLIT_MB = 128.0

#: Intermediate data allocated to one reducer by Gumbo (Section 5.1, opt. 3).
GUMBO_MB_PER_REDUCER = 256.0

#: Map *input* data allocated to one reducer by Pig (Section 5.2, PPAR discussion).
PIG_INPUT_MB_PER_REDUCER = 1024.0

#: Default MR job startup overhead in seconds (cost_h).  The paper does not
#: publish the value; typical Hadoop job latencies are 10-20 s and the paper's
#: plan-computation overhead comparison mentions ~10 s, so we default to 15 s.
DEFAULT_JOB_OVERHEAD_SECONDS = 15.0


@dataclass(frozen=True)
class CostConstants:
    """The I/O cost constants of Table 5 (all per MB, in seconds)."""

    local_read: float = 0.03        # l_r
    local_write: float = 0.085      # l_w
    hdfs_read: float = 0.15         # h_r
    hdfs_write: float = 0.25        # h_w
    transfer: float = 0.017         # t
    merge_factor: int = 10          # D, external sort merge factor
    map_buffer_mb: float = 409.0    # buf_map
    reduce_buffer_mb: float = 512.0  # buf_red
    job_overhead: float = DEFAULT_JOB_OVERHEAD_SECONDS  # cost_h

    def scaled(self, factor: float) -> "CostConstants":
        """Return a copy with every per-MB cost scaled by *factor*.

        Useful for sensitivity experiments; the merge factor and buffer sizes
        are left unchanged.
        """
        return replace(
            self,
            local_read=self.local_read * factor,
            local_write=self.local_write * factor,
            hdfs_read=self.hdfs_read * factor,
            hdfs_write=self.hdfs_write * factor,
            transfer=self.transfer * factor,
        )

    @classmethod
    def paper_values(cls) -> "CostConstants":
        """The exact constants of Table 5."""
        return cls()

    @classmethod
    def reduction_values(cls, hdfs_read: float = 1.0) -> "CostConstants":
        """Constants used by the Appendix A NP-hardness reduction.

        All I/O costs are zero except HDFS read, and there is no job overhead,
        so the cost of a job collapses to ``hr * (input MB)``.
        """
        return cls(
            local_read=0.0,
            local_write=0.0,
            hdfs_read=hdfs_read,
            hdfs_write=0.0,
            transfer=0.0,
            job_overhead=0.0,
        )


@dataclass(frozen=True)
class HadoopSettings:
    """The cluster/Hadoop configuration of Table 4 that the simulator honours.

    Only the settings with observable effect on the cost model or scheduling
    are represented; purely operational settings (speculative execution,
    replication) are retained for documentation purposes.
    """

    io_file_buffer_kb: int = 128
    dfs_replication: int = 3
    map_memory_mb: int = 1280
    reduce_memory_mb: int = 1280
    io_sort_mb: int = 512
    reduce_merge_inmem_threshold: int = 0
    reduce_input_buffer_percent: float = 0.5
    slowstart_completed_maps: float = 1.0
    speculative_execution: bool = False
    node_memory_mb: int = 49152
    min_allocation_mb: int = 4096
    max_allocation_mb: int = 49152
    node_vcores: int = 10
    split_mb: float = DEFAULT_SPLIT_MB

    @property
    def containers_per_node(self) -> int:
        """Concurrent task containers a node can host.

        Constrained by both memory (node memory / per-task memory, subject to
        the YARN minimum allocation) and vcores; on the paper's nodes the
        vcore limit (10) binds.
        """
        allocation = max(self.map_memory_mb, self.min_allocation_mb)
        by_memory = self.node_memory_mb // allocation
        return int(min(by_memory, self.node_vcores))

    @classmethod
    def paper_values(cls) -> "HadoopSettings":
        return cls()
