"""The MapReduce I/O cost formulas of Section 3.3.

The cost of an MR job is decomposed into

* ``cost_map(N_i, M_i)`` for every uniform input part ``I_i`` — reading the
  input from HDFS, sorting/merging the map output locally and writing it to
  local disk (Equation before (2));
* ``cost_red(M, K)`` — transferring the intermediate data, merging it on the
  reduce side, and writing the output to HDFS;
* ``cost_h`` — the fixed overhead of starting an MR job.

Two aggregations of the map-side cost are provided:

* :func:`map_cost_per_partition` (Equation (2)) — the paper's *improved*
  model, summing ``cost_map`` over the individual input parts, which captures
  inputs whose map input/output ratios differ;
* :func:`map_cost_aggregated` (Equation (3)) — the original model of
  Wang & Chan / Nykiel et al., applying ``cost_map`` once to the summed sizes.

All sizes are in MB and all returned costs are in (simulated) seconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from .constants import CostConstants, MAP_OUTPUT_METADATA_BYTES


@dataclass(frozen=True)
class MapPartition:
    """One uniform part ``I_i`` of a job's input.

    Attributes
    ----------
    input_mb:
        ``N_i`` — size of the input part read from HDFS.
    intermediate_mb:
        ``M_i`` — size of the map output produced from this part.
    records:
        Number of map-output records produced from this part; used to charge
        the 16-byte-per-record metadata ``M̂_i``.
    mappers:
        ``m_i`` — number of map tasks processing this part (at least 1).
    label:
        Optional name of the originating relation, for reporting.
    """

    input_mb: float
    intermediate_mb: float
    records: int = 0
    mappers: int = 1
    label: str = ""

    @property
    def metadata_mb(self) -> float:
        """``M̂_i``: 16 bytes of map-output metadata per record, in MB."""
        return self.records * MAP_OUTPUT_METADATA_BYTES / (1024.0 * 1024.0)


def merge_passes(data_mb: float, buffer_mb: float, merge_factor: int) -> float:
    """Number of external-merge passes: ``log_D(ceil(data / buffer))``.

    Returns 0 when the data fits into the buffer (no on-disk merge needed).
    This is the ``log_D ceil(...)`` factor appearing in both merge-cost
    formulas of Section 3.3.
    """
    if data_mb <= 0 or buffer_mb <= 0:
        return 0.0
    spill_groups = math.ceil(data_mb / buffer_mb)
    if spill_groups <= 1:
        return 0.0
    if merge_factor <= 1:
        return float(spill_groups)
    return math.log(spill_groups, merge_factor)


def merge_map_cost(
    intermediate_mb: float,
    metadata_mb: float,
    mappers: int,
    constants: CostConstants,
) -> float:
    """``merge_map(M_i)``: cost of sort & merge during the map phase.

    ``(l_r + l_w) * M_i * log_D ceil(((M_i + M̂_i) / m_i) / buf_map)``
    """
    mappers = max(1, mappers)
    per_mapper_mb = (intermediate_mb + metadata_mb) / mappers
    passes = merge_passes(
        per_mapper_mb, constants.map_buffer_mb, constants.merge_factor
    )
    return (constants.local_read + constants.local_write) * intermediate_mb * passes


def merge_reduce_cost(
    intermediate_mb: float, reducers: int, constants: CostConstants
) -> float:
    """``merge_red(M)``: cost of merging on the reduce side.

    ``(l_r + l_w) * M * log_D ceil((M / r) / buf_red)``
    """
    reducers = max(1, reducers)
    per_reducer_mb = intermediate_mb / reducers
    passes = merge_passes(
        per_reducer_mb, constants.reduce_buffer_mb, constants.merge_factor
    )
    return (constants.local_read + constants.local_write) * intermediate_mb * passes


def map_cost(partition: MapPartition, constants: CostConstants) -> float:
    """``cost_map(N_i, M_i)`` for one uniform input part.

    ``h_r * N_i + merge_map(M_i) + l_w * M_i``
    """
    return (
        constants.hdfs_read * partition.input_mb
        + merge_map_cost(
            partition.intermediate_mb,
            partition.metadata_mb,
            partition.mappers,
            constants,
        )
        + constants.local_write * partition.intermediate_mb
    )


def map_cost_per_partition(
    partitions: Sequence[MapPartition], constants: CostConstants
) -> float:
    """Equation (2): the paper's per-partition map cost, summed over all parts."""
    return sum(map_cost(p, constants) for p in partitions)


def map_cost_aggregated(
    partitions: Sequence[MapPartition], constants: CostConstants
) -> float:
    """Equation (3): the Wang & Chan aggregate map cost.

    All input parts are lumped together before applying ``cost_map``, which
    averages the merge behaviour over the whole input — precisely the
    inaccuracy the paper's adjustment removes.
    """
    if not partitions:
        return 0.0
    total = MapPartition(
        input_mb=sum(p.input_mb for p in partitions),
        intermediate_mb=sum(p.intermediate_mb for p in partitions),
        records=sum(p.records for p in partitions),
        mappers=sum(max(1, p.mappers) for p in partitions),
        label="aggregate",
    )
    return map_cost(total, constants)


def reduce_cost(
    intermediate_mb: float,
    output_mb: float,
    reducers: int,
    constants: CostConstants,
) -> float:
    """``cost_red(M, K) = t*M + merge_red(M) + h_w*K``."""
    return (
        constants.transfer * intermediate_mb
        + merge_reduce_cost(intermediate_mb, reducers, constants)
        + constants.hdfs_write * output_mb
    )


def job_cost(
    partitions: Sequence[MapPartition],
    output_mb: float,
    reducers: int,
    constants: CostConstants,
    per_partition: bool = True,
) -> float:
    """Total cost of one MR job: ``cost_h + map cost + cost_red``.

    *per_partition* selects between Equation (2) (True, the Gumbo model) and
    Equation (3) (False, the Wang & Chan model).
    """
    intermediate_mb = sum(p.intermediate_mb for p in partitions)
    map_part = (
        map_cost_per_partition(partitions, constants)
        if per_partition
        else map_cost_aggregated(partitions, constants)
    )
    return (
        constants.job_overhead
        + map_part
        + reduce_cost(intermediate_mb, output_mb, reducers, constants)
    )
