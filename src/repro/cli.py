"""Command-line interface: run queries, inspect plans, reproduce experiments.

The subcommands (``python -m repro <command> --help``):

``query``
    Evaluate an SGF query (from a string or a file) over CSV data (a directory
    with one file per relation) under a chosen strategy and execution backend
    (``--backend serial|parallel|sql|sharded --workers N --shards N
    --sql-db PATH``), print the metrics and optionally write the output
    relations back to CSV.  ``--strategy auto`` picks the cheapest applicable
    strategy by estimated cost.

``plan``
    Show the MapReduce plan (jobs, rounds, partition of the semi-joins) that a
    strategy would produce for a query, without executing it.

``auto``
    Cost-based strategy selection, made visible: for one of the paper's
    workload queries, plan every applicable strategy, print the estimated
    cost of each candidate and the winner AUTO would run.

``serve``
    Run the plan-caching :class:`~repro.service.QueryService` over a stream
    of repeated workload queries with concurrent clients, and print serving
    metrics (throughput, plan-cache hit rate, strategies chosen).
    ``--sharded --shards N`` serves the stream through the persistent
    sharded tier instead: an asyncio front-end with admission control
    (bounded queue, shed + timeout errors) over long-lived worker-shard
    processes, printing latency percentiles and shed/respawn counts.

``generate``
    Generate the synthetic workload of one of the paper's experiment queries
    (A1–A5, B1–B2, C1–C4) as CSV files, for use with ``query``.

``experiment``
    Run one of the paper's experiments (figure3, figure4, figure5, figure7a,
    figure7b, figure7c, figure8, table3, costmodel, ablation, or ``all``) and
    print the same tables the benchmark harness prints.

``bench``
    Run a generated workload on both execution backends (serial simulation vs
    the multiprocessing runtime) and print a comparison table: simulated total
    and net times, measured wall-clock times, and the parallel speedup.
    ``--kernels`` instead races the interpreted vs the batch-kernel path;
    ``--sql`` races the serial interpreter vs the sqlite3 SQL backend — both
    verify identical outputs and simulated metrics across paths.

``fuzz``
    Run a seeded differential-fuzzing campaign: random (B)SGF programs and
    databases, each evaluated with the reference evaluator and with every
    applicable strategy on every selected backend (serial, parallel and the
    sqlite3 SQL compiler by default, plus the dynamic executor).
    Divergences are shrunk to minimal counterexamples and
    printed as standalone repro scripts; the exit code is non-zero when any
    divergence was found.  ``--incremental`` switches to the incremental
    oracle: every case additionally gets a random insert batch, and the
    incremental refresh of every strategy × backend must equal a full
    recompute.

``delta``
    Incremental delta evaluation, head to head: materialize a paper workload
    query, apply a small insert batch incrementally, and compare the refresh
    time against a full re-execution (statistics + planning + run) — while
    verifying the refreshed output matches the recomputed one exactly.

``trace``
    End-to-end tracing demo (see :mod:`repro.obs`): run one paper workload
    through the query service twice (a planning miss, then a plan-cache hit),
    print both span trees — request → plan/cache-hit → program → job → wave →
    worker-side tasks — and write a validated Chrome trace-event file.

``query``/``bench``/``serve``/``delta`` additionally accept ``--trace``,
``--trace-out PATH``, ``--trace-format chrome|jsonl`` and
``--metrics-out PATH`` to record spans and export them (Chrome trace-event
JSON loads in Perfetto / ``chrome://tracing``; ``--metrics-out`` writes the
Prometheus text exposition of the metrics registries).
"""

from __future__ import annotations

import argparse
import json
import sys
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence

from . import obs
from .core.config import ExecutionConfig
from .core.gumbo import Gumbo
from .core.options import GumboOptions
from .obs.options import TRACE_FORMATS, ObsOptions
from .exec import BACKEND_NAMES, DATA_PLANES, make_backend
from .mapreduce.kernels import KERNEL_MODES
from .fuzz import FuzzConfig, FuzzOptions, run_fuzz
from .fuzz.profiles import PROFILE_NAMES
from .experiments import (
    format_table3,
    run_ablation,
    run_cost_model_experiment,
    run_figure3,
    run_figure4,
    run_figure5,
    run_figure7a,
    run_figure7b,
    run_figure7c,
    run_figure8,
    run_table3,
)
from .io import load_database, save_database
from .query.parser import parse_sgf
from .service import QueryService
from .workloads.queries import (
    bsgf_query_set,
    database_for,
    section5_workloads,
    sgf_query,
    workload_query,
)
from .workloads.scaling import ScaledEnvironment

#: Experiment name → driver returning an object with a ``format()`` method.
_EXPERIMENTS: Dict[str, Callable] = {
    "figure3": run_figure3,
    "figure4": run_figure4,
    "figure5": run_figure5,
    "figure7a": run_figure7a,
    "figure7b": run_figure7b,
    "figure7c": run_figure7c,
    "figure8": run_figure8,
    "costmodel": run_cost_model_experiment,
    "ablation": run_ablation,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Gumbo: parallel evaluation of multi-semi-joins (paper reproduction).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    query = subparsers.add_parser("query", help="evaluate an SGF query over CSV data")
    _add_query_arguments(query)
    _add_obs_arguments(query)
    query.add_argument(
        "--output-dir", help="write the query's output relations to this directory"
    )
    query.add_argument(
        "--show-plan", action="store_true", help="also print the chosen MR plan"
    )

    plan = subparsers.add_parser("plan", help="show the MR plan without executing it")
    _add_query_arguments(plan)

    generate = subparsers.add_parser(
        "generate", help="generate a paper workload as CSV files"
    )
    generate.add_argument("query_id", help="A1-A5, B1-B2 or C1-C4")
    generate.add_argument("output_dir", help="directory to write the CSV files to")
    generate.add_argument("--guard-tuples", type=int, default=10_000)
    generate.add_argument("--selectivity", type=float, default=0.5)
    generate.add_argument("--seed", type=int, default=0)

    experiment = subparsers.add_parser(
        "experiment", help="reproduce one of the paper's experiments"
    )
    experiment.add_argument(
        "name",
        choices=sorted(_EXPERIMENTS) + ["table3", "all"],
        help="which experiment to run",
    )
    experiment.add_argument(
        "--scale",
        type=float,
        default=5e-6,
        help="workload scale relative to the paper's 100M tuples (default 5e-6)",
    )
    experiment.add_argument("--nodes", type=int, default=10, help="cluster size")

    bench = subparsers.add_parser(
        "bench", help="compare the serial and parallel backends on a workload"
    )
    bench.add_argument(
        "--query-id", default="A1", help="paper workload to run (A1-A5, B1-B2, C1-C4)"
    )
    bench.add_argument("--guard-tuples", type=int, default=5_000)
    bench.add_argument("--selectivity", type=float, default=0.5)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--strategy", default="greedy", help="plan strategy to benchmark"
    )
    bench.add_argument(
        "--workers",
        type=int,
        default=None,
        help="parallel worker processes (default: CPU count)",
    )
    bench.add_argument("--nodes", type=int, default=10, help="simulated cluster size")
    bench.add_argument(
        "--kernels",
        action="store_true",
        help="instead of comparing backends, compare the interpreted vs the "
        "batch-kernel execution path (wall-clock, serial backend) on every "
        "Section 5 workload, verifying identical outputs and metrics",
    )
    bench.add_argument(
        "--sql",
        action="store_true",
        help="instead of comparing backends, compare the serial interpreter "
        "vs the sqlite3 SQL backend (wall-clock) on every Section 5 "
        "workload, verifying identical outputs and metrics",
    )
    bench.add_argument(
        "--sql-db",
        default=None,
        metavar="PATH",
        help="sqlite database file for --sql "
        "(default: a private in-memory database)",
    )
    _add_obs_arguments(bench)

    auto = subparsers.add_parser(
        "auto", help="show the cost-based strategy choice for a paper workload"
    )
    auto.add_argument("query_id", help="A1-A5, B1-B2 or C1-C4")
    auto.add_argument("--guard-tuples", type=int, default=5_000)
    auto.add_argument("--selectivity", type=float, default=0.5)
    auto.add_argument("--seed", type=int, default=0)
    auto.add_argument("--nodes", type=int, default=10, help="simulated cluster size")
    auto.add_argument(
        "--cost-model",
        default="gumbo",
        choices=["gumbo", "wang"],
        help="cost model driving the comparison (default gumbo)",
    )
    auto.add_argument(
        "--no-optimal",
        action="store_true",
        help="exclude the brute-force OPTIMAL strategies from the candidates",
    )
    auto.add_argument(
        "--show-plan", action="store_true", help="also print the winning MR plan"
    )

    serve = subparsers.add_parser(
        "serve", help="serve repeated workload queries through the query service"
    )
    serve.add_argument(
        "--query-ids",
        default="A1,A2,A3,B1",
        help="comma-separated workload ids served round-robin (default A1,A2,A3,B1)",
    )
    serve.add_argument(
        "--requests", type=int, default=40, help="number of queries to serve"
    )
    serve.add_argument(
        "--clients", type=int, default=4, help="concurrent client threads"
    )
    serve.add_argument(
        "--plan-cache",
        type=int,
        default=64,
        help="plan-cache capacity (0 disables plan caching)",
    )
    serve.add_argument(
        "--strategy",
        default="auto",
        help="strategy served when a request does not name one (default auto)",
    )
    serve.add_argument(
        "--sharded",
        action="store_true",
        help="serve through the sharded persistent tier: an asyncio "
        "front-end with admission control over long-lived worker shards "
        "(see docs/service.md)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=None,
        help="persistent worker shards for --sharded (default 2)",
    )
    serve.add_argument(
        "--data-plane",
        default=None,
        choices=list(DATA_PLANES),
        help="chunk shipping to the shard workers: shm, pickle or auto "
        "(default auto)",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=64,
        help="admitted --sharded requests allowed to queue beyond the "
        "executing ones; arrivals past clients+queue are shed (default 64)",
    )
    serve.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request timeout for --sharded (default: none)",
    )
    serve.add_argument("--guard-tuples", type=int, default=2_000)
    serve.add_argument("--selectivity", type=float, default=0.5)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--nodes", type=int, default=10, help="simulated cluster size")
    serve.add_argument(
        "--verify",
        action="store_true",
        help="also check every served answer against a direct Gumbo execution",
    )
    serve.add_argument(
        "--incremental",
        action="store_true",
        help="materialize the served queries, apply an insert batch with "
        "incremental delta refresh (instead of invalidating), and serve the "
        "stream again from the refreshed materializations",
    )
    serve.add_argument(
        "--insert-tuples",
        type=int,
        default=16,
        help="tuples inserted by the --incremental mutation batch (default 16)",
    )
    serve.add_argument(
        "--stats-json",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help="emit the full service stats (ServiceStats + per-fingerprint "
        "history + per-service metrics) as JSON to PATH, or to stdout "
        "when no PATH is given",
    )
    _add_obs_arguments(serve)

    delta = subparsers.add_parser(
        "delta", help="incremental delta refresh vs full re-execution"
    )
    delta.add_argument(
        "--query-id", default="A3", help="paper workload (A1-A5, B1-B2, C1-C4)"
    )
    delta.add_argument("--guard-tuples", type=int, default=4_000)
    delta.add_argument("--selectivity", type=float, default=0.5)
    delta.add_argument("--seed", type=int, default=0)
    delta.add_argument("--nodes", type=int, default=10, help="simulated cluster size")
    delta.add_argument(
        "--strategy",
        default="auto",
        help="strategy for the materialized run and the recompute (default auto)",
    )
    delta.add_argument(
        "--backend",
        default="serial",
        choices=list(BACKEND_NAMES),
        help="execution backend for both paths (default serial)",
    )
    delta.add_argument(
        "--workers",
        type=int,
        default=None,
        help="parallel-backend worker processes (default: CPU count)",
    )
    delta.add_argument(
        "--shards",
        type=int,
        default=None,
        help="sharded-backend persistent worker shards (default 2)",
    )
    delta.add_argument(
        "--sql-db",
        default=None,
        metavar="PATH",
        help="sqlite database file for --backend sql "
        "(default: a private in-memory database)",
    )
    delta.add_argument(
        "--data-plane",
        default=None,
        choices=list(DATA_PLANES),
        help="chunk shipping to parallel/sharded workers: shm, pickle or "
        "auto (default auto)",
    )
    delta.add_argument(
        "--insert-fraction",
        type=float,
        default=0.01,
        help="insert batch size as a fraction of the guard relation "
        "(default 0.01 = 1%%)",
    )
    delta.add_argument(
        "--mode",
        default="engine",
        choices=["engine", "direct"],
        help="refresh mode: restricted MR programs on the backend (engine) "
        "or the maintained indexes (direct)",
    )
    _add_obs_arguments(delta)

    trace = subparsers.add_parser(
        "trace",
        help="trace one workload end to end and export the span tree",
    )
    trace.add_argument("query_id", help="A1-A5, B1-B2 or C1-C4")
    trace.add_argument("--guard-tuples", type=int, default=500)
    trace.add_argument("--selectivity", type=float, default=0.5)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--nodes", type=int, default=10, help="simulated cluster size")
    trace.add_argument(
        "--strategy",
        default="auto",
        help="strategy served for both requests (default auto)",
    )
    trace.add_argument(
        "--backend",
        default="parallel",
        choices=list(BACKEND_NAMES),
        help="execution backend (default parallel, so worker-side spans "
        "appear in the trace)",
    )
    trace.add_argument(
        "--workers",
        type=int,
        default=2,
        help="parallel-backend worker processes (default 2)",
    )
    trace.add_argument(
        "--shards",
        type=int,
        default=None,
        help="sharded-backend persistent worker shards (default 2)",
    )
    trace.add_argument(
        "--sql-db",
        default=None,
        metavar="PATH",
        help="sqlite database file for --backend sql "
        "(default: a private in-memory database)",
    )
    trace.add_argument(
        "--data-plane",
        default=None,
        choices=list(DATA_PLANES),
        help="chunk shipping to parallel/sharded workers: shm, pickle or "
        "auto (default auto)",
    )
    trace.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="also write the spans to PATH (validated Chrome trace-event "
        "JSON, or JSONL with --trace-format jsonl)",
    )
    trace.add_argument(
        "--trace-format",
        default="chrome",
        choices=list(TRACE_FORMATS),
        help="span export format for --trace-out (default chrome)",
    )
    trace.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the Prometheus text exposition of the metrics "
        "registries to PATH",
    )

    fuzz = subparsers.add_parser(
        "fuzz", help="differential-fuzz the strategies and backends"
    )
    fuzz.add_argument("--seed", type=int, default=0, help="campaign seed")
    fuzz.add_argument(
        "--iterations", type=int, default=100, help="number of random cases"
    )
    fuzz.add_argument(
        "--max-statements",
        type=int,
        default=4,
        help="maximum statements per generated program",
    )
    fuzz.add_argument(
        "--max-tuples",
        type=int,
        default=12,
        help="maximum tuples per generated relation",
    )
    fuzz.add_argument(
        "--profile",
        default="mixed",
        choices=list(PROFILE_NAMES),
        help="data-value profile for generated databases (default mixed)",
    )
    fuzz.add_argument(
        "--backend",
        default="all",
        choices=list(BACKEND_NAMES) + ["both", "all"],
        help="backend(s) to differential-test: one backend, 'both' "
        "(serial+parallel), or 'all' (every backend: "
        "serial+parallel+sql+sharded, the default)",
    )
    fuzz.add_argument(
        "--workers",
        type=int,
        default=None,
        help="parallel-backend worker processes (default: CPU count)",
    )
    fuzz.add_argument(
        "--shards",
        type=int,
        default=None,
        help="sharded-backend persistent worker shards (default 2)",
    )
    fuzz.add_argument(
        "--sql-db",
        default=None,
        metavar="PATH",
        help="sqlite database file for the sql backend axis "
        "(default: a private in-memory database)",
    )
    fuzz.add_argument(
        "--data-plane",
        default=None,
        choices=list(DATA_PLANES),
        help="chunk shipping on the parallel/sharded axes: shm, pickle or "
        "auto (default auto); a dedicated fuzz axis for the shm data plane",
    )
    fuzz.add_argument(
        "--no-shrink",
        action="store_true",
        help="report raw counterexamples without greedy shrinking",
    )
    fuzz.add_argument(
        "--no-dynamic",
        action="store_true",
        help="skip the dynamic re-planning executor",
    )
    fuzz.add_argument(
        "--no-auto",
        action="store_true",
        help="skip the cost-based AUTO meta-strategy",
    )
    fuzz.add_argument(
        "--no-kernel-axis",
        action="store_true",
        help="skip the batch-kernel execution axes (<backend>+kernel)",
    )
    fuzz.add_argument(
        "--keep-going",
        action="store_true",
        help="continue the campaign after the first divergence",
    )
    fuzz.add_argument(
        "--incremental",
        action="store_true",
        help="incremental oracle mode: apply a random insert batch per case "
        "and require incremental refresh == full recompute for every "
        "strategy x backend (plus the direct index mode)",
    )
    fuzz.add_argument(
        "--artifact",
        help="write the first counterexample's repro script to this file",
    )
    return parser


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared observability flags (``repro.obs`` exports)."""
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record spans: one trace per request/run (see repro.obs)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write the collected spans to PATH after the run (implies --trace)",
    )
    parser.add_argument(
        "--trace-format",
        default="chrome",
        choices=list(TRACE_FORMATS),
        help="span export format: chrome (trace-event JSON, loads in "
        "Perfetto / chrome://tracing) or jsonl (default chrome)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the Prometheus text exposition of the metrics "
        "registries to PATH",
    )


def _obs_options(args: argparse.Namespace) -> ObsOptions:
    return ObsOptions(
        trace=getattr(args, "trace", False),
        trace_out=getattr(args, "trace_out", None),
        trace_format=getattr(args, "trace_format", "chrome"),
        metrics_out=getattr(args, "metrics_out", None),
    )


def _export_obs(obs_options: ObsOptions, registries: Sequence[object] = ()) -> None:
    """Drain completed traces and write the requested export files."""
    if not (obs_options.tracing or obs_options.metrics_out):
        return
    traces = obs.drain_traces()
    if obs_options.trace_out:
        if obs_options.trace_format == "jsonl":
            count = obs.write_spans_jsonl(
                obs.spans_of(traces), obs_options.trace_out
            )
        else:
            count = obs.write_chrome_trace(traces, obs_options.trace_out)
        print(
            f"wrote {count} spans ({obs_options.trace_format}) "
            f"to {obs_options.trace_out}"
        )
    if obs_options.metrics_out:
        obs.write_prometheus(
            obs.registries_for_export(registries), obs_options.metrics_out
        )
        print(f"wrote metrics to {obs_options.metrics_out}")


def _add_query_arguments(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--query", help="the SGF query text")
    source.add_argument("--query-file", help="file containing the SGF query")
    parser.add_argument(
        "--data",
        required=True,
        help="directory with one CSV/TSV file per relation",
    )
    parser.add_argument(
        "--strategy",
        default="greedy",
        help="seq, par, greedy, 1-round, sequnit, parunit, greedy-sgf, or "
        "auto for cost-based selection (default greedy)",
    )
    parser.add_argument(
        "--cost-model",
        default="gumbo",
        choices=["gumbo", "wang"],
        help="cost model driving plan choice (default gumbo)",
    )
    parser.add_argument("--nodes", type=int, default=10, help="simulated cluster size")
    parser.add_argument(
        "--backend",
        default="serial",
        choices=list(BACKEND_NAMES),
        help="execution backend: serial simulation, the multiprocessing "
        "runtime, or the sqlite3 SQL compiler (default serial)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for --backend parallel (default: CPU count)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="persistent worker shards for --backend sharded (default 2)",
    )
    parser.add_argument(
        "--sql-db",
        default=None,
        metavar="PATH",
        help="sqlite database file for --backend sql "
        "(default: a private in-memory database)",
    )
    parser.add_argument(
        "--data-plane",
        default=None,
        choices=list(DATA_PLANES),
        help="how chunk payloads reach parallel/sharded workers: shm "
        "(shared-memory segments, zero-copy), pickle (the classic pipes), "
        "or auto (shm for large typed chunks; the default); outputs and "
        "simulated metrics are identical on every plane",
    )
    parser.add_argument(
        "--no-packing", action="store_true", help="disable message packing"
    )
    parser.add_argument(
        "--no-tuple-reference", action="store_true", help="disable tuple references"
    )
    parser.add_argument(
        "--kernel-mode",
        default="auto",
        choices=list(KERNEL_MODES),
        help="batch-kernel execution path: auto (kernel on the serial "
        "engine), on (kernel everywhere), off (always interpret); outputs "
        "and simulated metrics are identical in every mode (default auto)",
    )


def _read_query_text(args: argparse.Namespace) -> str:
    if args.query:
        return args.query
    with open(args.query_file) as handle:
        return handle.read()


def _gumbo_for(args: argparse.Namespace) -> Gumbo:
    config = ExecutionConfig.from_cli_args(args)
    environment = ScaledEnvironment(scale=1.0, nodes=config.nodes)
    return Gumbo(
        engine=environment.engine(),
        cost_model=args.cost_model,
        options=config.to_options(),
    )


def _describe_program(program) -> str:
    lines = [
        f"MR program {program.name!r}: {len(program)} jobs, "
        f"{program.rounds()} rounds"
    ]
    for level_index, level in enumerate(program.levels()):
        for job in level:
            inputs = ", ".join(job.input_relations())
            outputs = ", ".join(job.output_schema())
            lines.append(
                f"  round {level_index}: {type(job).__name__}[{job.job_id}] "
                f"reads({inputs}) writes({outputs})"
            )
    return "\n".join(lines)


def _command_query(args: argparse.Namespace) -> int:
    database = load_database(args.data)
    query = parse_sgf(_read_query_text(args))
    gumbo = _gumbo_for(args)
    try:
        if args.show_plan:
            program = gumbo.plan(query, database, args.strategy)
            print(_describe_program(program))
            print()
        result = gumbo.execute(query, database, args.strategy)
    finally:
        gumbo.close()
    print(f"strategy: {result.strategy}")
    print(f"backend: {result.metrics.backend}")
    for key, value in result.summary().items():
        print(f"{key}: {value:.3f}")
    print(f"wall_clock_s: {result.metrics.wall_elapsed_s:.3f}")
    for name in sorted(result.outputs):
        relation = result.outputs[name]
        print(f"{name}: {len(relation)} tuples")
        for row in relation.sorted_tuples()[:20]:
            print("   ", row)
        if len(relation) > 20:
            print(f"    ... ({len(relation) - 20} more)")
    if args.output_dir:
        written = save_database_like(result.outputs, args.output_dir)
        print("wrote:", ", ".join(written))
    _export_obs(_obs_options(args))
    return 0


def save_database_like(relations: Dict[str, object], directory: str) -> List[str]:
    """Persist a name→relation mapping as CSV files (helper for the CLI)."""
    from .model.database import Database

    database = Database()
    for relation in relations.values():
        database.add_relation(relation)
    return save_database(database, directory)


def _command_plan(args: argparse.Namespace) -> int:
    database = load_database(args.data)
    query = parse_sgf(_read_query_text(args))
    gumbo = _gumbo_for(args)
    program = gumbo.plan(query, database, args.strategy)
    print(_describe_program(program))
    return 0


def _command_generate(args: argparse.Namespace) -> int:
    query_id = args.query_id.upper()
    if query_id.startswith("C"):
        queries = sgf_query(query_id)
    else:
        queries = bsgf_query_set(query_id)
    database = database_for(
        queries,
        guard_tuples=args.guard_tuples,
        selectivity=args.selectivity,
        seed=args.seed,
    )
    paths = save_database(database, args.output_dir)
    print(f"generated {len(paths)} relations for {query_id} in {args.output_dir}:")
    for path in paths:
        print("   ", path)
    return 0


def _command_bench_kernels(args: argparse.Namespace) -> int:
    """Interpreted vs batch-kernel wall-clock, per Section 5 workload."""
    environment = ScaledEnvironment(scale=1.0, nodes=args.nodes)
    print(
        f"kernel benchmark ({args.guard_tuples} guard tuples, "
        f"strategy {args.strategy}, serial backend)"
    )
    header = (
        f"{'workload':<10} {'interpreted_s':>14} {'kernel_s':>12} {'speedup':>8}"
    )
    print(header)
    print("-" * len(header))
    identical = True
    for query_id, query in section5_workloads():
        database = database_for(
            query,
            guard_tuples=args.guard_tuples,
            selectivity=args.selectivity,
            seed=args.seed,
        )
        results = {}
        timings = {}
        for mode in ("off", "on"):
            gumbo = Gumbo(
                engine=environment.engine(),
                options=GumboOptions(
                    kernel_mode=mode, trace=_obs_options(args).tracing
                ),
            )
            start = perf_counter()
            results[mode] = gumbo.execute(query, database, args.strategy)
            timings[mode] = perf_counter() - start
        same = results["off"].summary() == results["on"].summary() and {
            name: rel.tuples() for name, rel in results["off"].all_outputs.items()
        } == {name: rel.tuples() for name, rel in results["on"].all_outputs.items()}
        identical = identical and same
        speedup = timings["off"] / timings["on"] if timings["on"] > 0 else float("inf")
        flag = "" if same else "  DIVERGED"
        print(
            f"{query_id:<10} {timings['off']:>14.3f} {timings['on']:>12.3f} "
            f"{speedup:>7.2f}x{flag}"
        )
    print(
        f"outputs and simulated metrics identical across paths: "
        f"{'yes' if identical else 'NO'}"
    )
    _export_obs(_obs_options(args))
    return 0 if identical else 1


def _command_bench_sql(args: argparse.Namespace) -> int:
    """Serial interpreter vs sqlite3 SQL backend, per Section 5 workload."""
    environment = ScaledEnvironment(scale=1.0, nodes=args.nodes)
    where = args.sql_db or "in-memory"
    print(
        f"sql-backend benchmark ({args.guard_tuples} guard tuples, "
        f"strategy {args.strategy}, sqlite {where})"
    )
    header = f"{'workload':<10} {'serial_s':>12} {'sql_s':>10} {'speedup':>8}"
    print(header)
    print("-" * len(header))
    identical = True
    for query_id, query in section5_workloads():
        database = database_for(
            query,
            guard_tuples=args.guard_tuples,
            selectivity=args.selectivity,
            seed=args.seed,
        )
        results = {}
        timings = {}
        for backend_name in ("serial", "sql"):
            backend = make_backend(
                backend_name,
                engine=environment.engine(),
                sql_db=args.sql_db if backend_name == "sql" else None,
            )
            gumbo = Gumbo(
                backend=backend,
                options=GumboOptions(trace=_obs_options(args).tracing),
            )
            try:
                start = perf_counter()
                results[backend_name] = gumbo.execute(
                    query, database, args.strategy
                )
                timings[backend_name] = perf_counter() - start
            finally:
                backend.close()
        same = results["serial"].summary() == results["sql"].summary() and {
            name: rel.tuples()
            for name, rel in results["serial"].all_outputs.items()
        } == {
            name: rel.tuples()
            for name, rel in results["sql"].all_outputs.items()
        }
        identical = identical and same
        speedup = (
            timings["serial"] / timings["sql"]
            if timings["sql"] > 0
            else float("inf")
        )
        flag = "" if same else "  DIVERGED"
        print(
            f"{query_id:<10} {timings['serial']:>12.3f} {timings['sql']:>10.3f} "
            f"{speedup:>7.2f}x{flag}"
        )
    print(
        f"outputs and simulated metrics identical across backends: "
        f"{'yes' if identical else 'NO'}"
    )
    _export_obs(_obs_options(args))
    return 0 if identical else 1


def _command_bench(args: argparse.Namespace) -> int:
    """Run one workload on both backends and print a comparison table."""
    if args.kernels:
        return _command_bench_kernels(args)
    if args.sql:
        return _command_bench_sql(args)
    query_id = args.query_id.upper()
    if query_id.startswith("C"):
        queries = sgf_query(query_id)
    else:
        queries = bsgf_query_set(query_id)
    database = database_for(
        queries,
        guard_tuples=args.guard_tuples,
        selectivity=args.selectivity,
        seed=args.seed,
    )
    environment = ScaledEnvironment(scale=1.0, nodes=args.nodes)

    runs = []
    for backend_name in ("serial", "parallel"):
        backend = make_backend(
            backend_name, engine=environment.engine(), workers=args.workers
        )
        try:
            result = Gumbo(
                backend=backend,
                options=GumboOptions(trace=_obs_options(args).tracing),
            ).execute(queries, database, args.strategy)
        finally:
            backend.close()
        workers = getattr(backend, "workers", 1)
        label = backend_name if backend_name == "serial" else f"parallel[{workers}]"
        runs.append((label, result))

    serial_wall = runs[0][1].metrics.wall_elapsed_s
    print(
        f"workload {query_id} ({args.guard_tuples} guard tuples), "
        f"strategy {runs[0][1].strategy}, {args.nodes} nodes"
    )
    header = f"{'backend':<14} {'total_s':>10} {'net_s':>10} {'wall_s':>10} {'speedup':>8}"
    print(header)
    print("-" * len(header))
    for label, result in runs:
        metrics = result.metrics
        wall = metrics.wall_elapsed_s
        speedup = serial_wall / wall if wall > 0 else float("inf")
        print(
            f"{label:<14} {metrics.total_time:>10.1f} {metrics.net_time:>10.1f} "
            f"{wall:>10.3f} {speedup:>7.2f}x"
        )
    reference = runs[0][1]
    identical = all(
        {n: r.tuples() for n, r in result.all_outputs.items()}
        == {n: r.tuples() for n, r in reference.all_outputs.items()}
        and result.summary() == reference.summary()
        for _, result in runs[1:]
    )
    print(
        f"outputs and simulated metrics identical across backends: "
        f"{'yes' if identical else 'NO'}"
    )
    _export_obs(_obs_options(args))
    return 0 if identical else 1


def _command_auto(args: argparse.Namespace) -> int:
    """Print the per-strategy estimated costs and the AUTO winner."""
    query = workload_query(args.query_id)
    database = database_for(
        query,
        guard_tuples=args.guard_tuples,
        selectivity=args.selectivity,
        seed=args.seed,
    )
    environment = ScaledEnvironment(scale=1.0, nodes=args.nodes)
    gumbo = Gumbo(engine=environment.engine(), cost_model=args.cost_model)
    choice = gumbo.choose(query, database, include_optimal=not args.no_optimal)
    print(
        f"workload {args.query_id.upper()} ({args.guard_tuples} guard tuples), "
        f"cost model {args.cost_model}, {args.nodes} nodes"
    )
    print(choice.describe())
    if args.show_plan:
        print()
        print(_describe_program(choice.program))
    return 0


def _serve_workload(ids: Sequence[str], args: argparse.Namespace):
    """The queries and merged database for a ``repro serve`` session."""
    queries = [workload_query(query_id) for query_id in ids]
    arities: Dict[str, int] = {}
    for query in queries:
        for subquery in query:
            for atom in (subquery.guard, *subquery.conditional_atoms):
                known = arities.setdefault(atom.relation, atom.arity)
                if known != atom.arity:
                    raise SystemExit(
                        f"workloads {', '.join(ids)} disagree on the arity of "
                        f"relation {atom.relation!r} ({known} vs {atom.arity}); "
                        f"serve them separately"
                    )
    all_subqueries = [subquery for query in queries for subquery in query]
    database = database_for(
        all_subqueries,
        guard_tuples=args.guard_tuples,
        selectivity=args.selectivity,
        seed=args.seed,
    )
    return queries, database


def _command_serve_sharded(args: argparse.Namespace) -> int:
    """Serve an open-loop query stream through the sharded persistent tier."""
    import asyncio

    from .service.sharded import (
        RequestTimeoutError,
        ServiceOverloadedError,
        ShardedService,
    )

    ids = [part.strip().upper() for part in args.query_ids.split(",") if part.strip()]
    if not ids:
        raise SystemExit("no workload ids given")
    queries, database = _serve_workload(ids, args)
    requests = [queries[i % len(queries)] for i in range(args.requests)]
    config = ExecutionConfig.from_cli_args(args).with_backend("sharded")
    environment = ScaledEnvironment(scale=1.0, nodes=config.nodes)
    obs_options = _obs_options(args)
    shards = config.shards or 2
    latencies: List[float] = []
    shed = timeouts = 0

    async def _client(frontend, query) -> Optional[str]:
        nonlocal shed, timeouts
        start = perf_counter()
        try:
            result = await frontend.execute(query)
        except ServiceOverloadedError:
            shed += 1
            return None
        except RequestTimeoutError:
            timeouts += 1
            return None
        latencies.append(perf_counter() - start)
        return result.strategy

    async def _drive(frontend) -> List[Optional[str]]:
        return list(
            await asyncio.gather(*[_client(frontend, q) for q in requests])
        )

    start = perf_counter()
    with ShardedService.create(
        database,
        shards=shards,
        engine=environment.engine(),
        strategy=args.strategy,
        plan_cache_size=args.plan_cache,
        options=config.to_options(),
        max_concurrency=args.clients,
        max_queue=args.max_queue,
        request_timeout_s=args.request_timeout,
    ) as frontend:
        strategies = asyncio.run(_drive(frontend))
        elapsed = perf_counter() - start
        front_stats = frontend.stats()
        service_stats = frontend.service.stats()
        cluster = frontend.service.gumbo.backend.cluster
        respawns, retries = cluster.respawns, cluster.retries
        service_registry = frontend.service.metrics
    _export_obs(obs_options, registries=[service_registry])

    served = [s for s in strategies if s is not None]
    print(
        f"served {len(served)}/{len(requests)} requests over {', '.join(ids)} "
        f"(sharded tier: {shards} shards, {args.clients} concurrent, "
        f"queue {args.max_queue})"
    )
    print(f"  elapsed:             {elapsed:.3f}s "
          f"({len(served) / elapsed if elapsed > 0 else 0.0:.1f} queries/s)")
    if latencies:
        ordered = sorted(latencies)

        def pct(p: float) -> float:
            return ordered[min(len(ordered) - 1, int(p * len(ordered)))]

        print(f"  latency p50/p95/p99: {pct(0.50) * 1e3:.1f} / "
              f"{pct(0.95) * 1e3:.1f} / {pct(0.99) * 1e3:.1f} ms")
    print(f"  shed / timed out:    {shed} / {timeouts}")
    print(f"  plan-cache hit rate: {service_stats.plan_cache.hit_rate:.0%} "
          f"({service_stats.plan_cache.hits} hits / "
          f"{service_stats.plan_cache.misses} misses)")
    print(f"  worker respawns:     {respawns} ({retries} request retries)")
    print(f"  front-end stats:     {front_stats}")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    """Serve repeated workload queries through the plan-caching service."""
    if args.sharded:
        return _command_serve_sharded(args)
    ids = [part.strip().upper() for part in args.query_ids.split(",") if part.strip()]
    if not ids:
        raise SystemExit("no workload ids given")
    queries, database = _serve_workload(ids, args)
    requests = [queries[i % len(queries)] for i in range(args.requests)]
    environment = ScaledEnvironment(scale=1.0, nodes=args.nodes)
    obs_options = _obs_options(args)
    gumbo = Gumbo(
        engine=environment.engine(),
        options=GumboOptions(trace=obs_options.tracing),
    )
    incremental_report: List[str] = []
    with QueryService(
        database,
        gumbo,
        strategy=args.strategy,
        plan_cache_size=args.plan_cache,
        max_workers=args.clients,
    ) as service:
        if args.incremental:
            for query in queries:
                service.materialize(query)
        batch = service.execute_many(requests)
        if args.incremental:
            guard_name = queries[0].subqueries[0].guard.relation
            guard_relation = database[guard_name]
            ceiling = 1 + max(
                (
                    v
                    for row in guard_relation.sorted_tuples()
                    for v in row
                    if isinstance(v, int)
                ),
                default=0,
            )
            arity = guard_relation.arity
            rows = [
                tuple(ceiling + i * arity + j for j in range(arity))
                for i in range(max(1, args.insert_tuples))
            ]
            refresh_start = perf_counter()
            deltas = service.add_tuples(guard_name, rows, incremental=True)
            refresh_s = perf_counter() - refresh_start
            rerun = service.execute_many(requests)
            verified = all(
                frozenset(result.result.output().tuples())
                == frozenset(
                    gumbo.execute(query, service.database, result.strategy)
                    .output()
                    .tuples()
                )
                for query, result in zip(requests[: len(queries)], rerun.results)
            )
            verdict = (
                "refreshed results match direct execution"
                if verified
                else "MISMATCH"
            )
            incremental_report = [
                f"  insert batch:        {len(rows)} tuples into {guard_name} "
                f"(incremental, no invalidation)",
                f"  delta refresh:       {refresh_s * 1e3:.3f} ms over "
                f"{len(deltas)} materialization(s), "
                f"+{sum(d.added_count() for d in deltas)}"
                f"/-{sum(d.removed_count() for d in deltas)} output tuples",
                f"  re-serve:            {rerun.throughput_qps:.1f} queries/s "
                f"(all from refreshed materializations)",
                f"  verification:        {verdict}",
            ]
            if not verified:
                for line in incremental_report:
                    print(line)
                return 1
        stats = service.stats()
        snapshot = service.stats_snapshot()
        service_registry = service.metrics

    if args.stats_json is not None:
        payload = json.dumps(snapshot, indent=2, sort_keys=True)
        if args.stats_json == "-":
            print(payload)
        else:
            with open(args.stats_json, "w") as handle:
                handle.write(payload + "\n")
            print(f"wrote service stats to {args.stats_json}")
    _export_obs(obs_options, registries=[service_registry])

    strategies_run: Dict[str, int] = {}
    for result in batch.results:
        strategies_run[result.strategy] = strategies_run.get(result.strategy, 0) + 1
    print(
        f"served {len(batch.results)} requests over {', '.join(ids)} "
        f"({args.clients} clients, plan cache {args.plan_cache})"
    )
    print(f"  elapsed:             {batch.elapsed_s:.3f}s "
          f"({batch.throughput_qps:.1f} queries/s)")
    print(f"  plan-cache hit rate: {stats.plan_cache.hit_rate:.0%} "
          f"({stats.plan_cache.hits} hits / {stats.plan_cache.misses} misses)")
    print(f"  planning time:       {sum(r.plan_s for r in batch.results):.3f}s total")
    print(f"  execution time:      {sum(r.exec_s for r in batch.results):.3f}s total")
    strategies = ", ".join(
        f"{name}×{count}" for name, count in sorted(strategies_run.items())
    )
    print(f"  strategies run:      {strategies}")
    if incremental_report:
        print(
            f"  materialized:        {stats.materialized_results} result(s), "
            f"{stats.materialized_hits} served from materialization, "
            f"{stats.incremental_refreshes} incremental refresh(es)"
        )
        for line in incremental_report:
            print(line)

    if args.verify:
        mismatches = 0
        for query, result in zip(requests, batch.results):
            reference = gumbo.execute(query, database, result.strategy)
            expected = {
                name: rel.tuples() for name, rel in reference.all_outputs.items()
            }
            got = {
                name: rel.tuples()
                for name, rel in result.result.all_outputs.items()
            }
            if expected != got:
                mismatches += 1
        status = "all match" if mismatches == 0 else f"{mismatches} MISMATCH(ES)"
        print(f"  verification:        {status}")
        return 0 if mismatches == 0 else 1
    return 0


def _insert_batch_for(
    database, query, fraction: float, seed: int
) -> Dict[str, List[tuple]]:
    """A mixed insert batch: new guard tuples + conditional-key flips.

    Half the batch is fresh guard rows (values beyond the stored domain, so
    they are genuinely new); the other half inserts into the first
    conditional relation join-key values drawn from stored guard rows, so
    existing guard tuples flip.  Total size ≈ ``fraction`` of the guard.
    """
    import random as _random

    rng = _random.Random(f"repro-delta-cli:{seed}")
    first = query.subqueries[0]
    guard_name = first.guard.relation
    guard_relation = database[guard_name]
    count = max(2, int(len(guard_relation) * fraction))
    stored = guard_relation.sorted_tuples()
    ceiling = 1 + max(
        (v for row in stored for v in row if isinstance(v, int)), default=0
    )
    batch: Dict[str, List[tuple]] = {
        guard_name: [
            tuple(
                ceiling + rng.randrange(10 * count)
                for _ in range(guard_relation.arity)
            )
            for _ in range(count - count // 2)
        ]
    }
    conditionals = [
        atom
        for atom in first.conditional_atoms
        if atom.relation != guard_name and atom.relation in database
    ]
    if conditionals and count // 2:
        atom = conditionals[0]
        relation = database[atom.relation]
        keys = [rng.choice(stored)[0] for _ in range(count // 2)]
        batch[atom.relation] = [
            (key,) * relation.arity if relation.arity > 1 else (key,)
            for key in keys
        ]
    return batch


def _command_delta(args: argparse.Namespace) -> int:
    """Materialize a workload, refresh it incrementally, race a recompute."""
    query = workload_query(args.query_id)
    database = database_for(
        query,
        guard_tuples=args.guard_tuples,
        selectivity=args.selectivity,
        seed=args.seed,
    )
    batch = _insert_batch_for(database, query, args.insert_fraction, args.seed)
    inserted = sum(len(rows) for rows in batch.values())
    config = ExecutionConfig.from_cli_args(args)
    environment = ScaledEnvironment(scale=1.0, nodes=config.nodes)
    backend = config.make_backend(engine=environment.engine())
    gumbo = Gumbo(
        backend=backend, options=GumboOptions(trace=config.trace)
    )
    try:
        # Full re-execution path: statistics + planning + run on the
        # post-batch database (what an invalidating service would do).
        from .incremental import apply_inserts, dedupe_inserts

        recompute_db = database.copy()
        apply_inserts(recompute_db, dedupe_inserts(recompute_db, batch))
        full_start = perf_counter()
        full = gumbo.execute(query, recompute_db, args.strategy)
        full_s = perf_counter() - full_start

        # Incremental path: materialize once, refresh with the delta.
        materialization = gumbo.materialize(query, database, args.strategy)
        delta = gumbo.execute_delta(materialization, batch, mode=args.mode)
    finally:
        gumbo.close()

    expected = {
        name: frozenset(rel.tuples()) for name, rel in full.all_outputs.items()
    }
    matches = materialization.answers() == expected
    speedup = full_s / delta.wall_s if delta.wall_s > 0 else float("inf")
    print(
        f"workload {args.query_id.upper()} "
        f"({args.guard_tuples} guard tuples, strategy {full.strategy}, "
        f"backend {args.backend}, mode {args.mode})"
    )
    print(f"  insert batch:          {inserted} tuples over "
          f"{', '.join(sorted(batch))}")
    print(f"  affected guard tuples: {delta.affected_guard_tuples}")
    print(f"  output delta:          +{delta.added_count()} / "
          f"-{delta.removed_count()} tuples")
    print(f"  full re-execution:     {full_s * 1e3:9.3f} ms")
    print(f"  incremental refresh:   {delta.wall_s * 1e3:9.3f} ms "
          f"({delta.engine_runs} restricted MR runs)")
    print(f"  speedup:               {speedup:9.1f}x")
    print(f"  outputs identical:     {'yes' if matches else 'NO'}")
    _export_obs(_obs_options(args))
    return 0 if matches else 1


def _command_trace(args: argparse.Namespace) -> int:
    """Trace one workload twice through the service and export the spans."""
    query = workload_query(args.query_id)
    database = database_for(
        query,
        guard_tuples=args.guard_tuples,
        selectivity=args.selectivity,
        seed=args.seed,
    )
    config = ExecutionConfig.from_cli_args(args)
    environment = ScaledEnvironment(scale=1.0, nodes=config.nodes)
    backend = config.make_backend(engine=environment.engine())
    gumbo = Gumbo(backend=backend, options=GumboOptions(trace=True))
    obs.drain_traces()  # start from a clean collector
    with QueryService(database, gumbo, strategy=args.strategy) as service:
        miss = service.execute(query)
        hit = service.execute(query)
        service_registry = service.metrics
    traces = obs.drain_traces()

    print(
        f"workload {args.query_id.upper()} "
        f"({args.guard_tuples} guard tuples, strategy {miss.strategy}, "
        f"backend {args.backend})"
    )
    labels = ["request 1 (planning miss):", "request 2 (plan-cache hit):"]
    for label, tracer in zip(labels, traces):
        print()
        print(label)
        print(obs.format_trace(tracer))
    assert hit.plan_cached, "second request should hit the plan cache"

    if args.trace_out:
        if args.trace_format == "jsonl":
            count = obs.write_spans_jsonl(obs.spans_of(traces), args.trace_out)
            print(f"\nwrote {count} spans (jsonl) to {args.trace_out}")
        else:
            count = obs.write_chrome_trace(traces, args.trace_out)
            validated = obs.validate_chrome_trace(args.trace_out)
            print(
                f"\nwrote {count} spans (chrome trace-event JSON, "
                f"{validated} validated) to {args.trace_out}"
            )
    if args.metrics_out:
        obs.write_prometheus(
            obs.registries_for_export([service_registry]), args.metrics_out
        )
        print(f"wrote metrics to {args.metrics_out}")
    return 0


def _command_fuzz(args: argparse.Namespace) -> int:
    """Run a differential-fuzzing campaign and report any counterexample."""
    if args.backend == "all":
        backends = tuple(BACKEND_NAMES)
    elif args.backend == "both":
        backends = ("serial", "parallel")
    else:
        backends = (args.backend,)
    config = FuzzConfig(
        max_statements=args.max_statements,
        max_tuples=args.max_tuples,
        profile=args.profile,
    )
    options = FuzzOptions(
        seed=args.seed,
        iterations=args.iterations,
        config=config,
        backends=backends,
        workers=args.workers,
        shards=args.shards,
        sql_db=args.sql_db,
        data_plane=args.data_plane,
        shrink=not args.no_shrink,
        stop_on_failure=not args.keep_going,
        include_dynamic=not args.no_dynamic,
        include_auto=not args.no_auto,
        kernel_axis=not args.no_kernel_axis,
        incremental=args.incremental,
    )
    report = run_fuzz(options)
    print(report.format())
    for counterexample in report.counterexamples:
        print()
        print(counterexample.describe())
        print()
        print("repro script:")
        print(counterexample.script())
    if report.counterexamples and args.artifact:
        with open(args.artifact, "w") as handle:
            handle.write(report.counterexamples[0].script())
        print(f"wrote repro script to {args.artifact}")
    if report.ok:
        oracle_kind = (
            "incremental refreshes agree with full recomputes"
            if args.incremental
            else "combinations agree with the reference evaluator"
        )
        print(f"all {report.combinations_checked} strategy x backend {oracle_kind}")
    return 0 if report.ok else 1


def _command_experiment(args: argparse.Namespace) -> int:
    environment = ScaledEnvironment(scale=args.scale, nodes=args.nodes)
    names: Sequence[str]
    if args.name == "all":
        names = sorted(_EXPERIMENTS) + ["table3"]
    else:
        names = [args.name]
    for name in names:
        if name == "table3":
            result = run_table3(environment)
            print(result.format())
            print(format_table3(result))
            continue
        driver = _EXPERIMENTS[name]
        result = driver(environment)
        print(result.format())
        print()
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    commands = {
        "query": _command_query,
        "plan": _command_plan,
        "auto": _command_auto,
        "serve": _command_serve,
        "generate": _command_generate,
        "experiment": _command_experiment,
        "bench": _command_bench,
        "fuzz": _command_fuzz,
        "delta": _command_delta,
        "trace": _command_trace,
    }
    return commands[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
