"""The metrics registry: counters, gauges and bucketed histograms.

A :class:`MetricsRegistry` maps ``(name, labels)`` to metric instruments.
The process-global :func:`default_registry` is where the execution layers
(engine, backends, the incremental engine) record their instrumentation —
kernel-vs-interpreted dispatch counts, shuffle bytes, rows in/out, refresh
latencies; the query service additionally keeps a *per-service* registry so
two services in one process never mix their serving counters.

Instruments are cheap (one small lock per instrument, no allocation per
observation) and handles are meant to be looked up once and kept — the
engine creates its counters at import time, the service at construction.
Histograms are fixed-bucket: percentiles (p50/p95/p99) are interpolated from
the bucket counts, the exact ``sum``/``count``/``min``/``max`` are tracked
alongside, and the Prometheus exporter renders the classic cumulative
``_bucket``/``_sum``/``_count`` family.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "default_registry",
]

#: Label set of one instrument, canonicalised to a sorted tuple of pairs.
LabelSet = Tuple[Tuple[str, str], ...]

#: Default histogram buckets for latencies in seconds: ~1/4-decade steps
#: from 100 µs to 100 s, which brackets everything from a plan-cache hit to
#: a cold parallel-backend program run.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
    float("inf"),
)


def _labelset(labels: Dict[str, object]) -> LabelSet:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


class Counter:
    """A monotonically increasing count."""

    kind = "counter"

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelSet = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for deltas")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (pool sizes, cache occupancy)."""

    kind = "gauge"

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelSet = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """A fixed-bucket distribution with interpolated percentiles."""

    kind = "histogram"

    __slots__ = (
        "name",
        "labels",
        "buckets",
        "bucket_counts",
        "count",
        "sum",
        "min",
        "max",
        "_lock",
    )

    def __init__(
        self,
        name: str,
        labels: LabelSet = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        bounds = tuple(buckets) if buckets is not None else LATENCY_BUCKETS
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds):
            raise ValueError(f"bucket bounds must be ascending: {bounds}")
        if bounds[-1] != float("inf"):
            bounds = bounds + (float("inf"),)
        self.name = name
        self.labels = labels
        self.buckets = bounds
        self.bucket_counts = [0] * len(bounds)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            # Linear scan: bucket lists are short and observations are per
            # job/request, not per row.
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    self.bucket_counts[index] += 1
                    break
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    def percentile(self, q: float) -> float:
        """The *q*-quantile (``0 < q <= 1``), interpolated within its bucket.

        The finite-bucket estimate interpolates linearly between the bucket's
        bounds; a rank landing in the ``+Inf`` bucket returns the exact
        observed maximum.  0.0 when nothing was observed.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        with self._lock:
            if self.count == 0:
                return 0.0
            rank = q * self.count
            cumulative = 0
            for index, bucket_count in enumerate(self.bucket_counts):
                if bucket_count == 0:
                    continue
                if cumulative + bucket_count >= rank:
                    if self.buckets[index] == float("inf"):
                        return self.max
                    lower = self.buckets[index - 1] if index > 0 else 0.0
                    upper = self.buckets[index]
                    fraction = (rank - cumulative) / bucket_count
                    estimate = lower + (upper - lower) * fraction
                    # Never estimate outside the observed range.
                    return min(max(estimate, self.min), self.max)
                cumulative += bucket_count
            return self.max

    def summary(self) -> Dict[str, float]:
        with self._lock:
            count, total = self.count, self.sum
            observed_min = self.min if count else 0.0
            observed_max = self.max if count else 0.0
        return {
            "count": count,
            "sum": total,
            "min": observed_min,
            "max": observed_max,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }

    def snapshot(self) -> "Histogram":
        """An independent copy (for :meth:`QueryService.metrics_history`)."""
        with self._lock:
            copy = Histogram(self.name, self.labels, self.buckets)
            copy.bucket_counts = list(self.bucket_counts)
            copy.count = self.count
            copy.sum = self.sum
            copy.min = self.min
            copy.max = self.max
        return copy


class MetricsRegistry:
    """A named collection of instruments, keyed by ``(name, labels)``.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice for
    the same name and labels returns the same instrument; asking for the same
    name with a different *kind* raises, so exporters never meet a family of
    mixed types.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, LabelSet], object] = {}
        self._kinds: Dict[str, str] = {}

    def _get_or_create(self, cls, name: str, labels: LabelSet, **kwargs):
        with self._lock:
            known_kind = self._kinds.get(name)
            if known_kind is not None and known_kind != cls.kind:
                raise ValueError(
                    f"metric {name!r} is already registered as a "
                    f"{known_kind}, not a {cls.kind}"
                )
            key = (name, labels)
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, labels, **kwargs)
                self._metrics[key] = metric
                self._kinds[name] = cls.kind
            return metric

    def counter(self, name: str, **labels: object) -> Counter:
        return self._get_or_create(Counter, name, _labelset(labels))

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get_or_create(Gauge, name, _labelset(labels))

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        **labels: object,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, _labelset(labels), buckets=buckets
        )

    def collect(self) -> List[Tuple[str, str, List[object]]]:
        """``(name, kind, [instruments])`` families, sorted by name."""
        with self._lock:
            families: Dict[str, List[object]] = {}
            for (name, _), metric in sorted(self._metrics.items()):
                families.setdefault(name, []).append(metric)
            return [
                (name, self._kinds[name], instruments)
                for name, instruments in sorted(families.items())
            ]

    def as_dict(self) -> Dict[str, object]:
        """A JSON-ready dump: every instrument's current value/summary."""
        dump: Dict[str, object] = {}
        for name, kind, instruments in self.collect():
            rows = []
            for metric in instruments:
                labels = dict(metric.labels)
                if kind == "histogram":
                    rows.append({"labels": labels, **metric.summary()})
                else:
                    rows.append({"labels": labels, "value": metric.value})
            dump[name] = {"kind": kind, "series": rows}
        return dump

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)


_default_registry = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-global registry the execution layers record into."""
    return _default_registry


def registries_for_export(
    extra: Optional[Iterable[MetricsRegistry]] = None,
) -> List[MetricsRegistry]:
    """The default registry plus any extras, deduplicated, export order."""
    registries: List[MetricsRegistry] = [_default_registry]
    for registry in extra or ():
        if registry is not None and registry not in registries:
            registries.append(registry)
    return registries
