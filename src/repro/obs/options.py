"""Observability options: what to record and where to export it.

:class:`ObsOptions` is the CLI/service-facing bundle.  The single *runtime*
switch that threads through the execution stack is
:attr:`~repro.core.options.GumboOptions.trace` (entry points start a trace
when it is set); everything else here is export plumbing — which files to
write, in which span format.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: Accepted span-export formats.
TRACE_FORMAT_CHROME = "chrome"
TRACE_FORMAT_JSONL = "jsonl"
TRACE_FORMATS = (TRACE_FORMAT_CHROME, TRACE_FORMAT_JSONL)


@dataclass(frozen=True)
class ObsOptions:
    """Export selection for one CLI run or service instance.

    Attributes
    ----------
    trace:
        Record spans (entry points start one trace per request/run).
    trace_out:
        Write the collected spans to this path after the run (implies
        ``trace``; see :attr:`trace_format` for the encoding).
    trace_format:
        ``"chrome"`` (trace-event JSON for Perfetto/``chrome://tracing``) or
        ``"jsonl"`` (one span object per line).
    metrics_out:
        Write the Prometheus text exposition of the default registry (plus
        any per-service registries the command created) to this path.
    """

    trace: bool = False
    trace_out: Optional[str] = None
    trace_format: str = TRACE_FORMAT_CHROME
    metrics_out: Optional[str] = None

    def __post_init__(self) -> None:
        if self.trace_format not in TRACE_FORMATS:
            raise ValueError(
                f"unknown trace format {self.trace_format!r}; "
                f"expected one of {TRACE_FORMATS}"
            )

    @property
    def tracing(self) -> bool:
        """Tracing is on when requested explicitly or implied by an export."""
        return self.trace or self.trace_out is not None
