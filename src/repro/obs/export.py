"""Exporters: JSONL span logs, Chrome trace-event JSON, Prometheus text.

Three formats, three audiences:

* **JSONL** — one :meth:`Span.as_dict <repro.obs.trace.Span.as_dict>` per
  line; lossless (``spans_from_jsonl`` round-trips every field) and easy to
  post-process with ``jq``/pandas.
* **Chrome trace-event JSON** — complete (``"ph": "X"``) events loadable in
  Perfetto or ``chrome://tracing``; span ids, parent links and attributes
  ride along in ``args`` so nothing is lost, and spans are grouped by
  process (worker-side spans show up under their worker pid's track).
* **Prometheus text exposition** — counters, gauges and cumulative
  histogram families from one or more
  :class:`~repro.obs.metrics.MetricsRegistry` instances, scrape-ready.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Union

from .metrics import MetricsRegistry
from .trace import Span, Tracer

__all__ = [
    "chrome_trace_events",
    "render_prometheus",
    "spans_from_jsonl",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_prometheus",
    "write_spans_jsonl",
]

#: The category stamped on exported trace events.
_CATEGORY = "repro"


def _flatten(spans_or_tracers: Iterable[Union[Span, Tracer]]) -> List[Span]:
    spans: List[Span] = []
    for item in spans_or_tracers:
        if isinstance(item, Tracer):
            spans.extend(item.spans)
        else:
            spans.append(item)
    return spans


# -- JSONL -------------------------------------------------------------------------


def write_spans_jsonl(
    spans: Iterable[Union[Span, Tracer]], path: str
) -> int:
    """Write spans (or whole tracers) as one JSON object per line."""
    flat = _flatten(spans)
    with open(path, "w") as handle:
        for span in flat:
            handle.write(json.dumps(span.as_dict(), sort_keys=True))
            handle.write("\n")
    return len(flat)


def spans_from_jsonl(path: str) -> List[Span]:
    """Read a JSONL span log back into :class:`Span` objects (lossless)."""
    spans: List[Span] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(Span.from_dict(json.loads(line)))
    return spans


# -- Chrome trace events -----------------------------------------------------------


def chrome_trace_events(
    spans: Iterable[Union[Span, Tracer]]
) -> Dict[str, Any]:
    """Spans as a Chrome trace-event document (Perfetto/``chrome://tracing``).

    Timestamps are microseconds on the shared ``perf_counter`` timeline,
    rebased so the earliest span starts at 0.  ``args`` carries the span and
    parent ids plus every attribute, so the export is lossless modulo float
    formatting.
    """
    flat = _flatten(spans)
    origin = min((span.start_s for span in flat), default=0.0)
    events: List[Dict[str, Any]] = []
    pids = set()
    for span in flat:
        pids.add(span.pid)
        events.append(
            {
                "name": span.name,
                "cat": _CATEGORY,
                "ph": "X",
                "ts": (span.start_s - origin) * 1e6,
                "dur": span.duration_s * 1e6,
                "pid": span.pid,
                "tid": span.pid,
                "args": {
                    "trace_id": span.trace_id,
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    **span.attributes,
                },
            }
        )
    for pid in sorted(pids):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": pid,
                "args": {"name": f"repro pid {pid}"},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    spans: Iterable[Union[Span, Tracer]], path: str
) -> int:
    """Write the Chrome trace-event document; returns the span-event count."""
    document = chrome_trace_events(spans)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
    return sum(1 for event in document["traceEvents"] if event.get("ph") == "X")


def validate_chrome_trace(document_or_path: Union[str, Dict[str, Any]]) -> int:
    """Check a trace-event document's structure; returns the span-event count.

    Raises :class:`ValueError` describing the first problem found.  Used by
    the ``repro trace`` subcommand (self-check after writing) and the CI
    trace-smoke job.
    """
    if isinstance(document_or_path, str):
        with open(document_or_path) as handle:
            document = json.load(handle)
    else:
        document = document_or_path
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ValueError("not a trace-event document: no 'traceEvents' key")
    events = document["traceEvents"]
    if not isinstance(events, list) or not events:
        raise ValueError("'traceEvents' must be a non-empty list")
    complete = 0
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event {index} is not an object")
        for key in ("name", "ph", "pid"):
            if key not in event:
                raise ValueError(f"event {index} lacks required key {key!r}")
        if event["ph"] == "X":
            complete += 1
            for key in ("ts", "dur"):
                if not isinstance(event.get(key), (int, float)):
                    raise ValueError(
                        f"complete event {index} lacks numeric {key!r}"
                    )
            if not isinstance(event.get("args"), dict) or "span_id" not in event["args"]:
                raise ValueError(f"complete event {index} lacks args.span_id")
    if complete == 0:
        raise ValueError("document contains no complete ('X') span events")
    return complete


# -- Prometheus text exposition ----------------------------------------------------


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels_text(labels, extra: Optional[Dict[str, str]] = None) -> str:
    pairs = [(key, str(value)) for key, value in labels]
    if extra:
        pairs.extend(sorted(extra.items()))
    if not pairs:
        return ""
    rendered = ",".join(
        f'{key}="{_escape_label(value)}"' for key, value in pairs
    )
    return "{" + rendered + "}"


def _format_bound(bound: float) -> str:
    if bound == float("inf"):
        return "+Inf"
    text = repr(bound)
    return text


def render_prometheus(
    registries: Union[MetricsRegistry, Iterable[MetricsRegistry]],
) -> str:
    """The Prometheus text exposition of one or several registries."""
    if isinstance(registries, MetricsRegistry):
        registries = [registries]
    lines: List[str] = []
    seen: set = set()
    for registry in registries:
        for name, kind, instruments in registry.collect():
            if name in seen:
                # Two registries exporting the same family (e.g. two query
                # services): merge under one TYPE header by skipping it.
                pass
            else:
                lines.append(f"# TYPE {name} {kind}")
                seen.add(name)
            for metric in instruments:
                if kind == "histogram":
                    cumulative = 0
                    for bound, count in zip(
                        metric.buckets, metric.bucket_counts
                    ):
                        cumulative += count
                        labels = _labels_text(
                            metric.labels, {"le": _format_bound(bound)}
                        )
                        lines.append(f"{name}_bucket{labels} {cumulative}")
                    labels = _labels_text(metric.labels)
                    lines.append(f"{name}_sum{labels} {metric.sum}")
                    lines.append(f"{name}_count{labels} {metric.count}")
                else:
                    labels = _labels_text(metric.labels)
                    lines.append(f"{name}{labels} {metric.value}")
    return "\n".join(lines) + "\n"


def write_prometheus(
    registries: Union[MetricsRegistry, Iterable[MetricsRegistry]], path: str
) -> None:
    with open(path, "w") as handle:
        handle.write(render_prometheus(registries))
