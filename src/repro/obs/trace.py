"""The tracing core: spans, tracers and ``contextvars`` propagation.

One *trace* is the tree of everything that happened on behalf of one
top-level operation — a :meth:`QueryService.execute <repro.service.service.
QueryService.execute>` request, a bare :meth:`Gumbo.execute
<repro.core.gumbo.Gumbo.execute>`, an incremental refresh.  A trace is a
:class:`Tracer` collecting :class:`Span` records; the *current* tracer and
the *current* span travel through the call stack (and across the query
service's worker threads) via :mod:`contextvars`, so instrumented layers
never pass trace state explicitly.

Instrumentation sites call :func:`span` (child span of whatever is current)
or :func:`trace` (start a new trace when none is active).  When tracing is
disabled — no active tracer and ``enabled=False`` — both return a shared
no-op handle, so the disabled-mode cost of an instrumented site is one
``ContextVar.get`` plus a function call; the ``BENCH_obs.json`` benchmark
gates that this stays negligible.

Timestamps come from :func:`time.perf_counter`, which on the platforms we
run on is ``CLOCK_MONOTONIC``: values are comparable across processes of the
same machine/boot, which is what lets the parallel backend's *worker-side*
spans (shipped back as plain dicts, see :func:`worker_payload` /
:meth:`Tracer.adopt_payload`) land on the same timeline as the parent's.
"""

from __future__ import annotations

import os
import threading
from collections import deque
from contextvars import ContextVar
from time import perf_counter
from typing import Any, Dict, Iterable, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "TraceCollector",
    "current_span",
    "current_tracer",
    "default_collector",
    "drain_traces",
    "format_trace",
    "span",
    "trace",
    "tracing_enabled",
    "worker_payload",
]

_id_lock = threading.Lock()
_id_counter = 0


def _new_id() -> str:
    """A process-unique id; the pid prefix keeps worker ids collision-free."""
    global _id_counter
    with _id_lock:
        _id_counter += 1
        serial = _id_counter
    return f"{os.getpid():x}.{serial:x}"


class Span:
    """One timed operation in a trace: a name, a parent link, attributes."""

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start_s",
        "end_s",
        "pid",
        "attributes",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        start_s: float,
        end_s: float = 0.0,
        pid: Optional[int] = None,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_s = start_s
        self.end_s = end_s
        self.pid = pid if pid is not None else os.getpid()
        self.attributes = attributes if attributes is not None else {}

    @property
    def duration_s(self) -> float:
        return max(0.0, self.end_s - self.start_s)

    def set(self, **attrs: Any) -> "Span":
        """Attach key/value attributes; returns the span for chaining."""
        self.attributes.update(attrs)
        return self

    def as_dict(self) -> Dict[str, Any]:
        """Every field of the span, JSON-ready (the JSONL exporter's record)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "pid": self.pid,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "Span":
        """Inverse of :meth:`as_dict` (the JSONL importer)."""
        return cls(
            name=record["name"],
            trace_id=record["trace_id"],
            span_id=record["span_id"],
            parent_id=record.get("parent_id"),
            start_s=record["start_s"],
            end_s=record["end_s"],
            pid=record.get("pid"),
            attributes=dict(record.get("attributes", {})),
        )

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id}, "
            f"dur={self.duration_s * 1e3:.3f}ms)"
        )


class Tracer:
    """Collects the spans of one trace; thread-safe (service worker threads)."""

    def __init__(self, trace_id: Optional[str] = None) -> None:
        self.trace_id = trace_id or _new_id()
        self.spans: List[Span] = []
        self._lock = threading.Lock()

    def add(self, span: Span) -> None:
        with self._lock:
            self.spans.append(span)

    def adopt_payload(
        self, payload: Dict[str, Any], parent_id: Optional[str]
    ) -> Span:
        """Re-parent one worker-side span payload into this trace.

        Worker processes cannot see the parent's tracer, so they return plain
        dicts (see :func:`worker_payload`); the parent turns each into a
        first-class span under the wave that shipped the task.
        """
        span = Span(
            name=payload["name"],
            trace_id=self.trace_id,
            span_id=_new_id(),
            parent_id=parent_id,
            start_s=payload["start_s"],
            end_s=payload["end_s"],
            pid=payload.get("pid"),
            attributes=dict(payload.get("attributes", {})),
        )
        self.add(span)
        return span

    def root(self) -> Optional[Span]:
        for span in self.spans:
            if span.parent_id is None:
                return span
        return None

    def children_of(self, span: Span) -> List[Span]:
        return sorted(
            (s for s in self.spans if s.parent_id == span.span_id),
            key=lambda s: s.start_s,
        )

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:
        return f"Tracer(trace_id={self.trace_id}, spans={len(self.spans)})"


# -- context propagation ----------------------------------------------------------

_current_tracer: ContextVar[Optional[Tracer]] = ContextVar(
    "repro_obs_tracer", default=None
)
_current_span: ContextVar[Optional[Span]] = ContextVar(
    "repro_obs_span", default=None
)


class _NoopHandle:
    """The shared do-nothing span handle returned when tracing is off."""

    __slots__ = ()

    span_id: Optional[str] = None

    def set(self, **attrs: Any) -> "_NoopHandle":
        return self

    def __enter__(self) -> "_NoopHandle":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


NOOP = _NoopHandle()


class _SpanHandle:
    """Context manager around one live span: times it and restores context."""

    __slots__ = ("span", "_tracer", "_token")

    def __init__(self, span: Span, tracer: Tracer) -> None:
        self.span = span
        self._tracer = tracer
        self._token = None

    @property
    def span_id(self) -> str:
        return self.span.span_id

    def set(self, **attrs: Any) -> "_SpanHandle":
        self.span.set(**attrs)
        return self

    def __enter__(self) -> "_SpanHandle":
        self._token = _current_span.set(self.span)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.span.end_s = perf_counter()
        if exc_type is not None:
            self.span.set(error=f"{exc_type.__name__}: {exc}")
        if self._token is not None:
            _current_span.reset(self._token)
            self._token = None
        self._tracer.add(self.span)
        return False


class _TraceHandle:
    """Context manager for a trace root: installs the tracer, publishes it."""

    __slots__ = ("span", "tracer", "_collector", "_span_token", "_tracer_token")

    def __init__(self, span: Span, tracer: Tracer, collector: "TraceCollector"):
        self.span = span
        self.tracer = tracer
        self._collector = collector
        self._span_token = None
        self._tracer_token = None

    @property
    def span_id(self) -> str:
        return self.span.span_id

    def set(self, **attrs: Any) -> "_TraceHandle":
        self.span.set(**attrs)
        return self

    def __enter__(self) -> "_TraceHandle":
        self._tracer_token = _current_tracer.set(self.tracer)
        self._span_token = _current_span.set(self.span)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.span.end_s = perf_counter()
        if exc_type is not None:
            self.span.set(error=f"{exc_type.__name__}: {exc}")
        if self._span_token is not None:
            _current_span.reset(self._span_token)
            self._span_token = None
        if self._tracer_token is not None:
            _current_tracer.reset(self._tracer_token)
            self._tracer_token = None
        self.tracer.add(self.span)
        self._collector.publish(self.tracer)
        return False


def tracing_enabled() -> bool:
    """Is a tracer active in the current context?"""
    return _current_tracer.get() is not None


def current_tracer() -> Optional[Tracer]:
    return _current_tracer.get()


def current_span() -> Optional[Span]:
    return _current_span.get()


def span(name: str, **attrs: Any):
    """A child span of whatever is current; a shared no-op when tracing is off.

    This is the instrumentation primitive for *interior* layers (engine,
    backends, planners): they never decide whether tracing is on, they just
    open spans that materialise only when an entry point started a trace.
    """
    tracer = _current_tracer.get()
    if tracer is None:
        return NOOP
    parent = _current_span.get()
    return _SpanHandle(
        Span(
            name=name,
            trace_id=tracer.trace_id,
            span_id=_new_id(),
            parent_id=parent.span_id if parent is not None else None,
            start_s=perf_counter(),
            attributes=dict(attrs) if attrs else {},
        ),
        tracer,
    )


def trace(
    name: str,
    enabled: bool = True,
    collector: Optional["TraceCollector"] = None,
    **attrs: Any,
):
    """A trace entry point: join the active trace, or start a new one.

    When a tracer is already active the call degrades to an ordinary child
    :func:`span` (so a traced service request wraps Gumbo's own entry span
    without starting a second trace).  Otherwise a new trace begins if
    *enabled*, and its tracer is published to *collector* (the process
    default when omitted) once the root span closes.
    """
    if _current_tracer.get() is not None:
        return span(name, **attrs)
    if not enabled:
        return NOOP
    tracer = Tracer()
    root = Span(
        name=name,
        trace_id=tracer.trace_id,
        span_id=_new_id(),
        parent_id=None,
        start_s=perf_counter(),
        attributes=dict(attrs) if attrs else {},
    )
    return _TraceHandle(root, tracer, collector or default_collector())


# -- worker-side payloads ----------------------------------------------------------


def worker_payload(
    name: str, start_s: float, end_s: float, **attrs: Any
) -> Dict[str, Any]:
    """A span measured inside a worker process, as a picklable plain dict.

    Workers have no tracer (the parent's lives in another process); they time
    their task with ``perf_counter`` and return this payload alongside the
    task result.  The parent re-parents it via :meth:`Tracer.adopt_payload`.
    """
    return {
        "name": name,
        "start_s": start_s,
        "end_s": end_s,
        "pid": os.getpid(),
        "attributes": dict(attrs),
    }


# -- completed-trace collection ----------------------------------------------------


class TraceCollector:
    """Holds completed traces (bounded), for exporters and the CLI to drain."""

    def __init__(self, max_traces: int = 256) -> None:
        self._traces: deque = deque(maxlen=max_traces)
        self._lock = threading.Lock()

    def publish(self, tracer: Tracer) -> None:
        with self._lock:
            self._traces.append(tracer)

    def drain(self) -> List[Tracer]:
        """Remove and return every completed trace (oldest first)."""
        with self._lock:
            traces = list(self._traces)
            self._traces.clear()
        return traces

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)


_default_collector = TraceCollector()


def default_collector() -> TraceCollector:
    """The process-global collector completed traces are published to."""
    return _default_collector


def drain_traces() -> List[Tracer]:
    """Drain the process-global collector."""
    return _default_collector.drain()


# -- pretty printing ---------------------------------------------------------------


def format_trace(tracer: Tracer) -> str:
    """An indented rendering of the span tree, for terminals and tests."""
    lines: List[str] = [f"trace {tracer.trace_id} ({len(tracer.spans)} spans)"]
    root = tracer.root()
    if root is None:
        return "\n".join(lines + ["  (no root span)"])

    def walk(span: Span, depth: int) -> None:
        attrs = ", ".join(
            f"{key}={value}" for key, value in sorted(span.attributes.items())
        )
        suffix = f"  [{attrs}]" if attrs else ""
        lines.append(
            f"{'  ' * depth}- {span.name} "
            f"({span.duration_s * 1e3:.3f} ms, pid {span.pid}){suffix}"
        )
        for child in tracer.children_of(span):
            walk(child, depth + 1)

    walk(root, 1)
    return "\n".join(lines)


def spans_of(tracers: Iterable[Tracer]) -> List[Span]:
    """All spans of several traces, flattened in publish order."""
    return [span for tracer in tracers for span in tracer.spans]
