"""``repro.obs`` — end-to-end tracing and metrics for the whole stack.

The subsystem has three parts (see the module docstrings for detail):

* :mod:`repro.obs.trace` — spans and tracers with ``contextvars``
  propagation.  Entry points (``Gumbo.execute``, ``QueryService.execute``,
  incremental refreshes) open one trace per request when
  ``GumboOptions.trace`` is set; interior layers (the MapReduce engine, the
  execution backends, the planners) open child spans unconditionally through
  a no-op fast path that costs next to nothing while tracing is off.
* :mod:`repro.obs.metrics` — counters, gauges and bucketed histograms in a
  process-global default registry plus per-service instances.
* :mod:`repro.obs.export` — JSONL span logs, Chrome trace-event JSON
  (Perfetto-loadable) and Prometheus text exposition.

Quick tour::

    from repro import Gumbo, GumboOptions, obs

    result = Gumbo(options=GumboOptions(trace=True)).execute(query, db)
    (trace,) = obs.drain_traces()
    print(obs.format_trace(trace))
    obs.write_chrome_trace([trace], "trace.json")
    print(obs.render_prometheus(obs.default_registry()))
"""

from .export import (
    chrome_trace_events,
    render_prometheus,
    spans_from_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_prometheus,
    write_spans_jsonl,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
    default_registry,
    registries_for_export,
)
from .options import TRACE_FORMATS, ObsOptions
from .trace import (
    Span,
    TraceCollector,
    Tracer,
    current_span,
    current_tracer,
    default_collector,
    drain_traces,
    format_trace,
    span,
    spans_of,
    trace,
    tracing_enabled,
    worker_payload,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "ObsOptions",
    "Span",
    "TraceCollector",
    "TRACE_FORMATS",
    "Tracer",
    "chrome_trace_events",
    "current_span",
    "current_tracer",
    "default_collector",
    "default_registry",
    "drain_traces",
    "format_trace",
    "registries_for_export",
    "render_prometheus",
    "span",
    "spans_from_jsonl",
    "spans_of",
    "trace",
    "tracing_enabled",
    "validate_chrome_trace",
    "worker_payload",
    "write_chrome_trace",
    "write_prometheus",
    "write_spans_jsonl",
]
