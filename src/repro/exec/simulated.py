"""The serial backend: the seed engine behind the backend seam, unchanged.

:class:`SimulatedBackend` delegates straight to the serial in-process
:class:`~repro.mapreduce.engine.MapReduceEngine` — identical semantics and
identical simulated metrics to calling the engine directly — and additionally
stamps measured wall-clock times on the results so it can serve as the
baseline of simulated-vs-real speedup comparisons.
"""

from __future__ import annotations

from time import perf_counter
from typing import Optional

from ..mapreduce.counters import WallClockMetrics
from ..mapreduce.engine import JobResult, MapReduceEngine, ProgramResult
from ..mapreduce.job import MapReduceJob
from ..mapreduce.program import MRProgram
from ..model.database import Database
from .base import SERIAL, ExecutionBackend


class SimulatedBackend(ExecutionBackend):
    """Runs every map and reduce task serially, in-process."""

    name = SERIAL

    def __init__(self, engine: Optional[MapReduceEngine] = None) -> None:
        self.engine = engine or MapReduceEngine()

    def run_job(self, job: MapReduceJob, database: Database) -> JobResult:
        """Run one job in-process and stamp the measured wall clock."""
        start = perf_counter()
        result = self.engine.run_job(job, database)
        result.metrics.wall = WallClockMetrics(
            backend=self.name, workers=1, elapsed_s=perf_counter() - start
        )
        return result

    def run_program(self, program: MRProgram, database: Database) -> ProgramResult:
        """Run a whole program in-process and stamp the measured wall clock."""
        start = perf_counter()
        result = self.engine.run_program(program, database)
        result.metrics.backend = self.name
        result.metrics.wall_elapsed_s = perf_counter() - start
        return result
