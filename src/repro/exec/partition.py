"""Deterministic partitioning shared by every execution backend.

Hadoop's default partitioner assigns a key to reducer ``hash(key) % r``.  The
simulator cannot use Python's builtin ``hash`` for this because it is salted
per process (``PYTHONHASHSEED``), which would make reducer loads — and with
them the skew-sensitive net times — unstable across runs and across the
worker processes of the parallel backend.  :func:`stable_hash` therefore uses
CRC-32 over the key's ``repr``, which is deterministic, cheap, and identical
in every process.

Both the serial engine and the multiprocessing backend route *all* key
placement (reducer load accounting and the parallel shuffle) through this one
module, which is what makes their outputs and metrics bit-identical.
"""

from __future__ import annotations

import zlib
from functools import lru_cache
from typing import List, Sequence, Tuple

__all__ = ["stable_hash", "partition_index", "map_task_chunks"]


@lru_cache(maxsize=65536)
def stable_hash(key: object) -> int:
    """A deterministic, process-independent hash used to partition keys.

    Keys are always hashable tuples, so the memo is safe; the cached value is
    a pure function of the key's ``repr``, so caching cannot change any
    placement decision.
    """
    return zlib.crc32(repr(key).encode("utf-8"))


def partition_index(key: object, partitions: int) -> int:
    """The shuffle partition (reducer) the given key is routed to."""
    if partitions < 1:
        raise ValueError("partitions must be >= 1")
    return stable_hash(key) % partitions


def map_task_chunks(
    rows: Sequence[Tuple[object, ...]], mappers: int
) -> List[Sequence[Tuple[object, ...]]]:
    """Split an input part's rows into per-map-task chunks.

    Uses the same strided split for every backend (chunk *i* takes rows
    ``i, i+n, i+2n, ...``), so the serial engine and the parallel backend see
    identical map tasks.  At least one (possibly empty) chunk is returned.
    """
    if mappers < 1:
        raise ValueError("mappers must be >= 1")
    count = min(mappers, len(rows)) or 1
    return [rows[index::count] for index in range(count)]
