"""The shared-memory data plane: typed columns cross processes without copies.

The hot path of the fan-out backends is no longer compute — it is *data
movement*: every wave of the parallel backend ships its map chunks as pickled
:meth:`~repro.model.relation.ColumnBlock.packed` payloads through
``multiprocessing`` pipes, and the sharded tier re-serialises resident chunks
over its RPC whenever a worker (re)loads them.  This module gives both
transports a second plane: the typed ``array('q')``/``array('d')`` columns of
a packed block are placed **once** into a ``multiprocessing.shared_memory``
segment, and what crosses the process boundary is a tiny
:class:`ShmPayload` descriptor.  Workers attach the segment and build
memoryview-backed blocks — zero copies, identical values.

Three data planes are selectable (``--data-plane`` on the CLI,
``data_plane=`` on :func:`repro.connect` / the backends):

``"pickle"``
    The historical behaviour: packed tuples travel by pickle.
``"shm"``
    Force shared memory for every chunk with typed columns (object-dtype
    columns still ride inline by pickle — see below — and the plane falls
    back to pickle wholesale when shared memory is unavailable).
``"auto"`` (default)
    Shared memory when available **and** the chunk's typed payload is at
    least :data:`SHM_MIN_BYTES`; pickle otherwise (tiny chunks are cheaper
    to pickle than to mmap).

Correctness contract — the plane may never change results:

* ``'q'``/``'d'`` values read through a cast memoryview are bit-identical to
  the ``array.tolist()`` round trip of the pickle plane (IEEE-754 NaN
  payloads and ``-0.0`` included), and both planes materialise fresh Python
  objects per row, so object-identity-sensitive accounting cannot diverge;
* ``'o'`` (object/mixed) columns always travel inside the (pickled)
  descriptor itself, preserving pickle's memoisation semantics exactly;
* empty or all-object blocks have no typed bytes and use the pickle plane.

Ownership and crash-cleanup guarantees (see ``docs/dataplane.md``):

* the **creating** process owns a segment: :class:`SegmentPool` names it
  ``repro_dp_*`` (so ``/dev/shm/repro_*`` is auditable), keeps it registered
  with the ``multiprocessing`` resource tracker as a crash backstop, and
  unlinks it deterministically when its refcount drops (wave finished,
  resident version replaced, backend closed) or at interpreter exit;
* **attaching** processes (workers) map the segment through a tracker-free
  ``shm_open``/``mmap`` path (:class:`_AttachedSegment`) instead of
  ``SharedMemory(name)``, which on Python < 3.13 would *register* the
  segment with the attaching process's resource tracker too (bpo-39959) —
  either unlinking live memory when a worker exits (spawn) or corrupting
  the shared tracker's ledger (fork).  A crashed worker therefore leaks
  nothing — the OS unmaps its view and the owner still unlinks the name.
"""

from __future__ import annotations

import atexit
import itertools
import mmap
import os
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

try:  # POSIX shared memory; absent on Windows (where the tracker is a no-op)
    import _posixshmem
except ImportError:  # pragma: no cover - non-POSIX fallback
    _posixshmem = None

from ..model.relation import ColumnBlock
from ..obs import metrics as obs_metrics

#: Canonical data-plane names accepted by the CLI and every constructor.
DATA_PLANE_AUTO = "auto"
DATA_PLANE_SHM = "shm"
DATA_PLANE_PICKLE = "pickle"
DATA_PLANES = (DATA_PLANE_AUTO, DATA_PLANE_SHM, DATA_PLANE_PICKLE)

#: Prefix of every segment this module creates; the CI leak check (and any
#: operator) can audit ``/dev/shm/repro_*`` for orphans.
SEGMENT_PREFIX = "repro_dp_"

#: ``"auto"`` ships a chunk via shared memory only when its typed columns
#: hold at least this many bytes (below it, pickling is cheaper than mmap).
SHM_MIN_BYTES = int(os.environ.get("REPRO_SHM_MIN_BYTES", 32 * 1024))

#: Bytes of typed column data shipped to workers, by plane.  The shm counter
#: counts bytes placed in segments (crossing as mappings, not copies); the
#: pickle counter counts typed bytes serialised into task payloads.
_SHIPPED_SHM = obs_metrics.default_registry().counter(
    "repro_bytes_shipped", plane="shm"
)
_SHIPPED_PICKLE = obs_metrics.default_registry().counter(
    "repro_bytes_shipped", plane="pickle"
)

#: Bytes currently resident in shared-memory segments owned by this process.
_SHM_RESIDENT = obs_metrics.default_registry().gauge("repro_shm_bytes_resident")

_COUNTER = itertools.count()

#: Every pool created in this process, for the atexit backstop.
_POOLS: "weakref.WeakSet[SegmentPool]" = weakref.WeakSet()


def normalise_data_plane(name: Optional[str]) -> str:
    """Canonical data-plane name (``None`` means the ``"auto"`` default).

    Raises:
        ValueError: If *name* is not one of :data:`DATA_PLANES`.
    """
    if name is None:
        return DATA_PLANE_AUTO
    canonical = name.strip().lower()
    if canonical not in DATA_PLANES:
        raise ValueError(
            f"unknown data plane {name!r}; expected one of {DATA_PLANES}"
        )
    return canonical


_AVAILABLE: Optional[bool] = None


def shm_available() -> bool:
    """Whether POSIX shared memory works here (probed once per process)."""
    global _AVAILABLE
    if _AVAILABLE is None:
        try:
            probe = shared_memory.SharedMemory(
                name=f"{SEGMENT_PREFIX}probe_{os.getpid():x}", create=True, size=8
            )
            probe.close()
            probe.unlink()
            _AVAILABLE = True
        except Exception:
            _AVAILABLE = False
    return _AVAILABLE


class _AttachedSegment:
    """A tracker-free attach to an existing POSIX shared-memory segment.

    Mirrors the slice of the ``SharedMemory`` surface the pool needs
    (``name``/``size``/``buf``/``close``) but maps the segment with a raw
    ``shm_open`` + ``mmap``, never touching the ``multiprocessing`` resource
    tracker: attaching must not affect the owner's cleanup ledger in any
    start method (see the module docstring).
    """

    __slots__ = ("name", "size", "buf", "_mmap", "_fd")

    def __init__(self, name: str) -> None:
        self.name = name
        self._fd = _posixshmem.shm_open("/" + name, os.O_RDWR, mode=0o600)
        try:
            self.size = os.fstat(self._fd).st_size
            self._mmap = mmap.mmap(self._fd, self.size)
        except OSError:
            os.close(self._fd)
            raise
        self.buf = memoryview(self._mmap)

    def close(self) -> None:
        """Unmap the segment (raises ``BufferError`` while views are alive)."""
        if self.buf is not None:
            self.buf.release()
            self.buf = None
        self._mmap.close()
        if self._fd >= 0:
            os.close(self._fd)
            self._fd = -1


def _attach_untracked(name: str):
    """Attach to segment *name* without resource-tracker side effects."""
    if _posixshmem is not None:
        return _AttachedSegment(name)
    # Windows: SharedMemory's attach branch never registers with the tracker.
    return shared_memory.SharedMemory(name=name)  # pragma: no cover


class SegmentPool:
    """Ref-counted create/attach/release bookkeeping for shm segments.

    One pool per owning component (a backend's shipping pool, a cluster's
    resident pool, a worker's attach-side pool).  ``create`` entries are
    *owned*: the pool unlinks them when their refcount drops to zero (and,
    as a backstop, at interpreter exit — crashed owners are covered by the
    resource tracker instead).  ``attach`` entries are only ever closed.
    Refcounts are process-local; cross-process lifetime is the owner's.
    """

    def __init__(self) -> None:
        #: name -> [segment, refcount, owned?]
        self._segments: Dict[str, List[object]] = {}
        self._pid = os.getpid()
        _POOLS.add(self)

    def __len__(self) -> int:
        return len(self._segments)

    def names(self) -> Tuple[str, ...]:
        """The names currently held (tests and leak checks)."""
        return tuple(sorted(self._segments))

    def create(self, nbytes: int) -> shared_memory.SharedMemory:
        """Create and own a new ``repro_dp_*`` segment of *nbytes* bytes."""
        name = f"{SEGMENT_PREFIX}{os.getpid():x}_{next(_COUNTER):x}"
        segment = shared_memory.SharedMemory(name=name, create=True, size=nbytes)
        self._segments[segment.name] = [segment, 1, True]
        _SHM_RESIDENT.inc(segment.size)
        return segment

    def attach(self, name: str) -> shared_memory.SharedMemory:
        """Attach to segment *name* (refcounted; untracked, see above)."""
        entry = self._segments.get(name)
        if entry is not None:
            entry[1] += 1
            return entry[0]
        segment = _attach_untracked(name)
        self._segments[name] = [segment, 1, False]
        return segment

    def release(self, name: str) -> None:
        """Drop one reference to *name*; close (and unlink, if owned) at zero.

        Idempotent for unknown names, so transient and resident callers can
        share release paths without double-free bookkeeping.
        """
        entry = self._segments.get(name)
        if entry is None:
            return
        entry[1] -= 1
        if entry[1] > 0:
            return
        del self._segments[name]
        self._dispose(entry[0], owned=bool(entry[2]))

    def close_all(self) -> None:
        """Release everything (backend ``close()`` / atexit backstop)."""
        segments, self._segments = self._segments, {}
        for segment, _, owned in segments.values():
            self._dispose(segment, owned=bool(owned))

    @staticmethod
    def _dispose(segment: shared_memory.SharedMemory, owned: bool) -> None:
        try:
            segment.close()
        except BufferError:
            # A memoryview into the buffer is still alive; the mapping is
            # reclaimed at process exit.  Unlinking below still removes the
            # name, which is what leak checks observe.
            pass
        if owned:
            try:
                segment.unlink()
            except FileNotFoundError:
                pass
            _SHM_RESIDENT.dec(segment.size)


@atexit.register
def _cleanup_at_exit() -> None:
    """Unlink every still-owned segment of this process at interpreter exit.

    Guarded by pid so a forked child inheriting the module state can never
    unlink its parent's live segments (children also skip ``atexit`` via
    ``os._exit``, but the guard makes the invariant local and testable).
    """
    pid = os.getpid()
    for pool in list(_POOLS):
        if pool._pid == pid:
            pool.close_all()


#: The attach-side pool of the current process, created lazily and keyed by
#: pid so forked workers never reuse (or dispose) their parent's entries.
_WORKER_POOL: Optional[Tuple[int, SegmentPool]] = None


def worker_segment_pool() -> SegmentPool:
    """The per-process attach-side pool used by worker decode paths."""
    global _WORKER_POOL
    pid = os.getpid()
    if _WORKER_POOL is None or _WORKER_POOL[0] != pid:
        _WORKER_POOL = (pid, SegmentPool())
    return _WORKER_POOL[1]


@dataclass(frozen=True)
class ShmPayload:
    """A shipped chunk whose typed columns live in a shared-memory segment.

    ``columns`` entries are either ``(kind, offset, count)`` for a typed
    column (``kind`` ∈ ``'q'``/``'d'``; *offset* in bytes into the segment)
    or ``("o", column)`` for an object column riding inline — the pickle
    fallback for mixed/object dtypes keeps its exact historical semantics.
    """

    segment: str
    length: int
    arity: Optional[int]
    columns: Tuple[tuple, ...]


def typed_nbytes(packed: tuple) -> int:
    """Bytes held by the typed (``'q'``/``'d'``) columns of a packed block."""
    _, _, columns = packed
    return sum(
        column.itemsize * len(column) for kind, column in columns if kind != "o"
    )


def _use_shm(plane: str, nbytes: int) -> bool:
    if plane == DATA_PLANE_PICKLE or nbytes == 0 or not shm_available():
        return False
    return plane == DATA_PLANE_SHM or nbytes >= SHM_MIN_BYTES


def encode_block(block: ColumnBlock, pool: SegmentPool, plane: str) -> object:
    """Encode *block* for shipping under *plane*.

    Returns an :class:`ShmPayload` (typed columns placed into a fresh
    segment owned by *pool*; the caller must ``pool.release`` its name when
    the consumers are done) or the plain :meth:`ColumnBlock.packed` tuple
    when the pickle plane applies — by selection, by the ``auto`` size
    threshold, because the block has no typed columns, or because segment
    creation failed (``/dev/shm`` full or unavailable).
    """
    packed = block.packed()
    nbytes = typed_nbytes(packed)
    if _use_shm(normalise_data_plane(plane), nbytes):
        payload = _place(packed, pool)
        if payload is not None:
            _SHIPPED_SHM.inc(nbytes)
            return payload
    _SHIPPED_PICKLE.inc(nbytes)
    return packed


def _place(packed: tuple, pool: SegmentPool) -> Optional[ShmPayload]:
    """Copy the typed columns of *packed* into one new segment."""
    length, arity, columns = packed
    total = typed_nbytes(packed)
    try:
        segment = pool.create(total)
    except OSError:
        return None  # no room / no shm filesystem: fall back to pickle
    out: List[tuple] = []
    offset = 0
    for kind, column in columns:
        if kind == "o":
            out.append(("o", column))
            continue
        nbytes = column.itemsize * len(column)
        if nbytes:
            segment.buf[offset : offset + nbytes] = memoryview(column).cast("B")
        out.append((kind, offset, len(column)))
        offset += nbytes
    return ShmPayload(
        segment=segment.name, length=length, arity=arity, columns=tuple(out)
    )


def payload_segment(payload: object) -> Optional[str]:
    """The segment name a payload references (``None`` on the pickle plane)."""
    return payload.segment if isinstance(payload, ShmPayload) else None


def decode_payload(
    payload: object, pool: Optional[SegmentPool] = None
) -> ColumnBlock:
    """Rebuild a :class:`ColumnBlock` from either plane's payload.

    Shm payloads attach their segment through *pool* (the per-process
    :func:`worker_segment_pool` by default) and expose typed columns as cast
    memoryviews — zero copies; row/key materialisation yields values
    bit-identical to :meth:`ColumnBlock.unpack`.  The returned block carries
    a release hook: call :meth:`ColumnBlock.release` once its rows are
    materialised (transient chunks) or when it is evicted (residents).
    Pickle payloads decode exactly as before and release as a no-op.
    """
    if not isinstance(payload, ShmPayload):
        return ColumnBlock.unpack(payload)
    if pool is None:
        pool = worker_segment_pool()
    segment = pool.attach(payload.segment)
    buf = segment.buf
    columns: List[object] = []
    for entry in payload.columns:
        if entry[0] == "o":
            columns.append(entry[1])
        else:
            kind, offset, count = entry
            columns.append(buf[offset : offset + count * 8].cast(kind))
    name = payload.segment
    return ColumnBlock.attached(
        tuple(columns),
        payload.length,
        payload.arity,
        release=lambda: pool.release(name),
    )


def payload_probe(payload: object) -> int:
    """Decode a data-plane payload and return its row count.

    The benchmark helper (module-level so pool workers can import it):
    measures the *shipping phase* — everything up to a usable
    :class:`ColumnBlock` in the worker — under either plane.  For pickle
    payloads that includes the pipe bytes, the unpickle and the
    ``array.tolist()`` materialisation; for shm payloads it is the
    descriptor plus an attach.
    """
    block = decode_payload(payload)
    count = block.length
    block.release()
    return count
