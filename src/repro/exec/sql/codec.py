"""Value encoding for the sqlite3 backend: Python scalars → canonical TEXT.

sqlite3 cannot store the simulator's data values directly with the semantics
the reference engine needs: SQLite has no NaN storage (binding a NaN yields
SQL ``NULL``), its ``INTEGER``/``REAL`` comparisons collapse ``1``/``1.0``
(which Python *also* does — but ``=`` on SQL ``NULL`` never holds, breaking
``None`` keys), and mixed-type columns would fall into SQLite's cross-type
ordering rather than Python's equality.  The SQL backend therefore stores
every value as one canonical TEXT token chosen so that

    token equality  ≡  Python container equality (``hash`` + ``==``)

for the value universe the fuzzer generates.  Concretely:

* ``None``                    → ``"N"``
* bools, ints, and *integral* floats (``-0.0`` included) → ``"i<int>"`` —
  one shared token per equality class, because ``1 == 1.0 == True`` and
  ``-0.0 == 0.0`` as set/dict keys;
* ``±inf``                    → ``"f+inf"`` / ``"f-inf"``
* non-integral floats         → ``"f<repr>"`` (repr is canonical per value)
* strings                     → ``"s<text>"``
* NaN                         → ``"n<index>"``, a *per-object* identity token
  (registry keyed by ``id``): ``NaN != NaN``, but a set/dict probe finds the
  *same* NaN object via the hash + identity shortcut, and since CPython 3.10
  ``hash(nan)`` is id-based so distinct NaN objects do not collide.  Token
  equality therefore reproduces join/membership semantics exactly; atom-level
  conformance (which uses ``==`` and thus rejects every NaN) is handled by
  the compiler's ``substr(c, 1, 1) != 'n'`` guards, not by the codec.

Tokens are encode-only: results never round-trip through decoding — the
compiler's queries return *row positions* and the backend re-reads the
original Python objects, so outputs are bit-identical by construction.

Anything outside this universe (exotic types, subclasses, strings that are
not valid UTF-8) raises :class:`SQLUnsupportedValueError`; the backend then
falls back to the interpreted engine for the whole job, which is always
semantically correct (and metric-identical, since every path funnels through
``finalise_job_metrics``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["SQLUnsupportedValueError", "ValueCodec", "encode_scalar"]


class SQLUnsupportedValueError(ValueError):
    """A value (or job shape) the SQL backend cannot represent faithfully.

    Raised by the codec and the job compilers; the backend catches it and
    runs the affected job on the interpreted engine instead.
    """


def encode_scalar(value: object) -> Optional[str]:
    """The canonical token of a non-NaN scalar (``None`` when *value* is NaN).

    Raises :class:`SQLUnsupportedValueError` for values outside the
    supported universe (exact ``bool``/``int``/``float``/``str``/``None``
    only — subclasses would need their own equality semantics).
    """
    if value is None:
        return "N"
    kind = type(value)
    if kind is bool:
        return "i1" if value else "i0"
    if kind is int:
        return "i%d" % value
    if kind is float:
        if value != value:  # NaN: identity semantics, caller's business
            return None
        if value == float("inf"):
            return "f+inf"
        if value == float("-inf"):
            return "f-inf"
        if value.is_integer():  # 1.0 == 1 == True; -0.0 == 0 as container keys
            return "i%d" % int(value)
        return "f" + repr(value)
    if kind is str:
        try:
            value.encode("utf-8", "strict")
        except UnicodeEncodeError as exc:  # lone surrogates: sqlite3 rejects
            raise SQLUnsupportedValueError(
                f"string is not UTF-8 encodable: {value!r}"
            ) from exc
        return "s" + value
    raise SQLUnsupportedValueError(
        f"value of type {kind.__name__} has no SQL encoding: {value!r}"
    )


class ValueCodec:
    """Stateful encoder shared by every table of one SQL execution context.

    The only state is the NaN registry: each distinct NaN *object* receives
    its own token, so the same object appearing in several relations (guard
    and conditional, say) joins with itself — and only itself — exactly as
    it does in the engine's hash-set probes.  Encoded objects are kept alive
    for the codec's lifetime so ``id`` values cannot be recycled.
    """

    __slots__ = ("_nan_tokens", "_keepalive")

    def __init__(self) -> None:
        self._nan_tokens: Dict[int, str] = {}
        self._keepalive: List[object] = []

    def encode_value(self, value: object) -> str:
        """The token of *value* (raises :class:`SQLUnsupportedValueError`)."""
        token = encode_scalar(value)
        if token is not None:
            return token
        key = id(value)
        token = self._nan_tokens.get(key)
        if token is None:
            token = "n%d" % len(self._nan_tokens)
            self._nan_tokens[key] = token
            self._keepalive.append(value)
        return token

    def encode_row(self, row: Tuple[object, ...]) -> Tuple[str, ...]:
        """Token tuple of one stored row."""
        return tuple(self.encode_value(value) for value in row)
