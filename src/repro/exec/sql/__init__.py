"""SQL execution backend: GUMBO jobs compiled to sqlite3.

See ``docs/backends.md`` for the backend contract and
``docs/operators.md`` for the GUMBO → SQL translation rules.
"""

from .backend import SQLBackend, SQLContext
from .codec import SQLUnsupportedValueError, ValueCodec

__all__ = [
    "SQLBackend",
    "SQLContext",
    "SQLUnsupportedValueError",
    "ValueCodec",
]
