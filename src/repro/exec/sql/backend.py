"""The sqlite3 execution backend behind the :class:`ExecutionBackend` seam.

:class:`SQLBackend` runs every SQL-expressible job (MSJ, EVAL, fused,
semi-join chain, union — i.e. everything the batch kernels cover) as SQL
queries over an in-memory or on-disk sqlite3 database, and transparently
falls back to the interpreted engine for anything the compiler cannot
translate faithfully.  The contract is the same as the kernel path's:

* **outputs** are bit-identical to the interpreted oracle — queries return
  row *positions* and the original Python tuples are re-read and projected
  with the jobs' own compiled extractors (see :mod:`repro.exec.sql.codec`
  for why values themselves never round-trip through SQLite);
* **simulated metrics** are derived analytically from SQL-side ``GROUP BY``
  counts fed through the very same accumulator classes the kernels use, then
  funnelled through the engine's unchanged
  :meth:`~repro.mapreduce.engine.MapReduceEngine.finalise_job_metrics` —
  so every :class:`~repro.mapreduce.counters.JobMetrics` field matches the
  serial backend exactly.

Program runs compile level-at-once: all jobs of one MRProgram level share a
single :class:`SQLContext` (one database, each input relation loaded once),
which is what makes on-disk databases (``sql_db=PATH``) useful for guard
relations larger than memory.
"""

from __future__ import annotations

import sqlite3
from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ...mapreduce.counters import (
    PartitionMetrics,
    ProgramMetrics,
    WallClockMetrics,
)
from ...mapreduce.engine import (
    JobResult,
    MapReduceEngine,
    ProgramResult,
    prepare_output_relations,
)
from ...mapreduce.job import MapReduceJob
from ...mapreduce.program import MRProgram
from ...model.database import Database
from ...model.relation import Relation
from ...obs import metrics as obs_metrics
from ... import obs
from ..base import SQL, ExecutionBackend
from .codec import SQLUnsupportedValueError, ValueCodec

_MB = 1024.0 * 1024.0

#: Third dispatch counter besides ``interpreted`` and ``kernel`` (see
#: :mod:`repro.mapreduce.engine`): jobs that actually ran as SQL.  Fallback
#: jobs are counted by the engine's own dispatch site instead.
_JOBS_SQL = obs_metrics.default_registry().counter(
    "repro_jobs_total", path="sql"
)


class _Table:
    """One loaded relation: its SQLite table plus the engine-side numbers.

    ``row_len`` is the relation's arity when it has rows and ``None``
    otherwise — the exact quantity the kernels' arity filter computes from
    their first non-empty block, so empty and missing relations disable
    specs identically.  ``sql_name`` is ``None`` when no SQLite table was
    created (no rows → nothing to query).
    """

    __slots__ = (
        "name",
        "sql_name",
        "arity",
        "row_len",
        "rows",
        "input_records",
        "input_mb",
        "mappers",
        "chunk_count",
    )

    def __init__(
        self,
        name: str,
        sql_name: Optional[str],
        arity: int,
        rows: List[Tuple[object, ...]],
        input_mb: float,
        mappers: int,
    ) -> None:
        self.name = name
        self.sql_name = sql_name
        self.arity = arity
        self.row_len = arity if rows else None
        self.rows = rows
        self.input_records = len(rows)
        self.input_mb = input_mb
        self.mappers = mappers
        self.chunk_count = min(mappers, len(rows)) or 1


class SQLContext:
    """One SQL execution context: a connection plus the loaded tables.

    Relations load once per context (a level shares one context, so a guard
    used by several jobs is inserted once) into tables
    ``rel_<k>(pos INTEGER PRIMARY KEY, c0 TEXT, ...)`` holding the canonical
    value tokens of :class:`~repro.exec.sql.codec.ValueCodec`; ``pos`` is the
    row's index in the relation's deterministic sorted order, which is what
    queries return and what re-reads the original Python tuples.  The codec
    is shared across every table of the context so NaN identity joins work
    across relations.
    """

    def __init__(
        self,
        connection: sqlite3.Connection,
        engine: MapReduceEngine,
        file_backed: bool = False,
    ) -> None:
        self.connection = connection
        self.engine = engine
        self.codec = ValueCodec()
        self._file_backed = file_backed
        self._tables: Dict[str, Optional[_Table]] = {}
        self._indexes: set = set()
        self._created: List[str] = []
        # Scratch-database settings: the contents are rebuilt per context, so
        # crash durability buys nothing (harmless no-ops for ":memory:").
        connection.execute("PRAGMA journal_mode=MEMORY")
        connection.execute("PRAGMA synchronous=OFF")

    def load(self, name: str, relation: Optional[Relation]) -> _Table:
        """Load *relation* as a table (cached per name).

        Missing or empty relations produce a stub with no SQLite table.
        Raises :class:`~repro.exec.sql.codec.SQLUnsupportedValueError` when a
        value has no faithful encoding; the failure is cached so sibling jobs
        fall back without re-encoding.
        """
        if name in self._tables:
            table = self._tables[name]
            if table is None:
                raise SQLUnsupportedValueError(
                    f"relation {name!r} holds values the SQL backend "
                    "cannot encode"
                )
            return table
        if relation is None:
            table = _Table(name, None, 0, [], 0.0, self.engine.mappers_for(0.0))
            self._tables[name] = table
            return table
        rows = relation.sorted_tuples()
        input_mb = relation.size_mb()
        mappers = self.engine.mappers_for(input_mb)
        if not rows:
            table = _Table(name, None, relation.arity, [], input_mb, mappers)
            self._tables[name] = table
            return table
        try:
            encoded = [self.codec.encode_row(row) for row in rows]
        except SQLUnsupportedValueError:
            self._tables[name] = None
            raise
        sql_name = f"rel_{len(self._created)}"
        columns = ", ".join(f"c{i} TEXT" for i in range(relation.arity))
        self.connection.execute(f"DROP TABLE IF EXISTS {sql_name}")
        self.connection.execute(
            f"CREATE TABLE {sql_name} (pos INTEGER PRIMARY KEY, {columns})"
        )
        placeholders = ", ".join(["?"] * (relation.arity + 1))
        self.connection.executemany(
            f"INSERT INTO {sql_name} VALUES ({placeholders})",
            [(pos,) + tokens for pos, tokens in enumerate(encoded)],
        )
        self._created.append(sql_name)
        table = _Table(name, sql_name, relation.arity, rows, input_mb, mappers)
        self._tables[name] = table
        return table

    def table(self, name: str) -> _Table:
        """The previously loaded table for *name* (plans call this)."""
        table = self._tables[name]
        if table is None:
            raise SQLUnsupportedValueError(
                f"relation {name!r} holds values the SQL backend cannot encode"
            )
        return table

    def execute(self, sql: str, params: Sequence[object] = ()) -> sqlite3.Cursor:
        """Run one query and return its cursor."""
        return self.connection.execute(sql, params)

    def ensure_index(self, table: _Table, positions: Tuple[int, ...]) -> None:
        """Create an index over *positions* of *table* once per context."""
        if table.sql_name is None or not positions:
            return
        key = (table.sql_name, positions)
        if key in self._indexes:
            return
        name = f"idx_{table.sql_name}_" + "_".join(str(p) for p in positions)
        columns = ", ".join(f"c{p}" for p in positions)
        self.connection.execute(
            f"CREATE INDEX IF NOT EXISTS {name} ON {table.sql_name} ({columns})"
        )
        self._indexes.add(key)

    def close(self) -> None:
        """Drop this context's tables from a file-backed scratch database."""
        if not self._file_backed:
            return
        for sql_name in self._created:
            self.connection.execute(f"DROP TABLE IF EXISTS {sql_name}")
        self.connection.commit()


class SQLBackend(ExecutionBackend):
    """Runs SQL-expressible jobs on sqlite3; interpreted fallback otherwise.

    Parameters
    ----------
    engine:
        The simulation engine used for metric finalisation and as the
        fallback executor (defaults to a fresh
        :class:`~repro.mapreduce.engine.MapReduceEngine`).
    sql_db:
        Path of an on-disk scratch database for out-of-core runs; ``None``
        (the default) keeps every context in ``:memory:``.  The file's
        scratch tables are dropped when each context closes.

    Raises
    ------
    Nothing job-specific: jobs the compiler cannot express —
    :meth:`~repro.mapreduce.job.MapReduceJob.supports_sql` is ``False``, a
    value has no faithful SQL encoding, a condition shape is untranslatable —
    silently fall back to the interpreted engine, which is always
    output- and metric-identical.  sqlite3 errors are compiler bugs and
    propagate.
    """

    name = SQL

    def __init__(
        self,
        engine: Optional[MapReduceEngine] = None,
        sql_db: Optional[str] = None,
    ) -> None:
        self.engine = engine or MapReduceEngine()
        self.sql_db = sql_db

    @contextmanager
    def _context(self) -> Iterator[SQLContext]:
        connection = sqlite3.connect(self.sql_db or ":memory:")
        ctx = SQLContext(
            connection, self.engine, file_backed=self.sql_db is not None
        )
        try:
            yield ctx
        finally:
            ctx.close()
            connection.close()

    @staticmethod
    def _plan_for(job: MapReduceJob):
        """The job's SQL plan, or ``None`` when it must run interpreted."""
        if not job.supports_sql():
            return None
        try:
            return job.to_sql()
        except SQLUnsupportedValueError:
            return None

    def _run_job_sql(
        self,
        job: MapReduceJob,
        plan,
        database: Database,
        ctx: SQLContext,
    ) -> JobResult:
        """Execute one job as SQL within *ctx*.

        Mirrors :meth:`~repro.mapreduce.engine.MapReduceEngine.run_job_kernel`
        step for step: per input partition the plan replays the map-phase
        accounting from grouped counts, then one query per semi-join/query
        materialises the outputs, and everything funnels through
        ``finalise_job_metrics``.  All inputs load *before* any accounting so
        an unsupported value falls back with no partial work.
        """
        for relation_name in job.input_relations():
            ctx.load(relation_name, database.get(relation_name))
        _JOBS_SQL.inc()
        with obs.span("job", job_id=job.job_id, kind=type(job).__name__, path="sql"):
            key_bytes_parts: List[Dict[object, int]] = []
            partition_metrics: List[PartitionMetrics] = []
            for relation_name in job.input_relations():
                with obs.span("map_batch", relation=relation_name) as map_span:
                    table = ctx.table(relation_name)
                    acc = plan.partition(ctx, relation_name)
                    map_span.set(mappers=table.mappers, rows=table.input_records)
                key_bytes_parts.append(acc.key_bytes)
                partition_metrics.append(
                    PartitionMetrics(
                        relation=relation_name,
                        input_mb=table.input_mb,
                        input_records=table.input_records,
                        intermediate_mb=acc.intermediate_bytes / _MB,
                        output_records=acc.records,
                        mappers=table.mappers,
                    )
                )
            outputs = prepare_output_relations(job)
            with obs.span("reduce_batch"):
                for relation_name, rows in plan.outputs(ctx).items():
                    if relation_name not in outputs:
                        raise KeyError(
                            f"job {job.job_id!r} emitted to undeclared relation "
                            f"{relation_name!r}"
                        )
                    outputs[relation_name].update(rows)
            metrics = self.engine.finalise_job_metrics(
                job, partition_metrics, key_bytes_parts, outputs
            )
        return JobResult(job_id=job.job_id, outputs=outputs, metrics=metrics)

    def _run_with_fallback(
        self, job: MapReduceJob, database: Database, ctx: SQLContext
    ) -> JobResult:
        """SQL execution when possible, interpreted engine otherwise."""
        plan = self._plan_for(job)
        if plan is not None:
            try:
                return self._run_job_sql(job, plan, database, ctx)
            except SQLUnsupportedValueError:
                pass
        return self.engine.run_job(job, database)

    def run_job(self, job: MapReduceJob, database: Database) -> JobResult:
        """Execute one job in its own SQL context and stamp wall-clock time.

        Args:
            job: The job to run.
            database: Input database; never mutated.

        Returns:
            A :class:`~repro.mapreduce.engine.JobResult` whose outputs and
            simulated metrics are bit-identical to the serial backend's.
        """
        start = perf_counter()
        with self._context() as ctx:
            result = self._run_with_fallback(job, database, ctx)
        result.metrics.wall = WallClockMetrics(
            backend=self.name, workers=1, elapsed_s=perf_counter() - start
        )
        return result

    def run_program(self, program: MRProgram, database: Database) -> ProgramResult:
        """Execute an MR program level by level, one SQL context per level.

        Args:
            program: The program to run (validated first, as the engine does).
            database: Input database; a working copy receives the outputs.

        Returns:
            A :class:`~repro.mapreduce.engine.ProgramResult` matching the
            serial backend's outputs and simulated metrics, with this
            backend's name and measured wall time stamped on the metrics.
        """
        start = perf_counter()
        program.validate()
        working = database.copy()
        all_outputs: Dict[str, Relation] = {}
        metrics = ProgramMetrics()
        levels = program.levels()
        metrics.rounds = len(levels)

        with obs.span(
            "program",
            program=program.name,
            jobs=len(program),
            rounds=len(levels),
            backend=self.name,
        ):
            for level_index, level_jobs in enumerate(levels):
                level_map_tasks: List[float] = []
                level_reduce_tasks: List[float] = []
                level_results: List[JobResult] = []
                with obs.span("level", index=level_index, jobs=len(level_jobs)):
                    with self._context() as ctx:
                        for job in level_jobs:
                            job_start = perf_counter()
                            result = self._run_with_fallback(job, working, ctx)
                            result.metrics.wall = WallClockMetrics(
                                backend=self.name,
                                workers=1,
                                elapsed_s=perf_counter() - job_start,
                            )
                            level_results.append(result)
                            metrics.add_job(result.metrics)
                            level_map_tasks.extend(
                                result.metrics.map_task_durations
                            )
                            level_reduce_tasks.extend(
                                result.metrics.reduce_task_durations
                            )
                for result in level_results:
                    for name, relation in result.outputs.items():
                        working.add_relation(relation)
                        all_outputs[name] = relation
                metrics.level_net_times.append(
                    self.engine.level_net_time(level_map_tasks, level_reduce_tasks)
                )

        metrics.net_time = sum(metrics.level_net_times)
        metrics.backend = self.name
        metrics.wall_elapsed_s = perf_counter() - start
        return ProgramResult(
            program=program,
            outputs=all_outputs,
            metrics=metrics,
            database=working,
        )
