"""GUMBO job → SQL compilation for the sqlite3 execution backend.

Each kernel-capable job class exposes a ``to_sql()`` hook returning a *plan*
from this module (:class:`MSJPlan`, :class:`ChainPlan`, :class:`UnionPlan`,
:class:`EvalPlan`, :class:`FusedPlan`).  A plan answers two questions for the
backend:

* :meth:`partition` — the simulated map-phase accounting of one input
  partition (intermediate bytes, records, per-key byte loads), derived
  analytically from SQL-side ``GROUP BY`` counts and fed through the *same*
  :class:`~repro.mapreduce.kernels.PackedChunkAccumulator` /
  :class:`~repro.mapreduce.kernels.PlainPairAccumulator` the batch kernels
  use, so every number is bit-identical to the interpreted engine;
* :meth:`outputs` — the output relations, computed by one SQL query per
  semi-join/query: guard conformance compiles to a ``WHERE`` clause over the
  canonical value tokens (see :mod:`repro.exec.sql.codec`), semi-joins to
  correlated ``EXISTS``, guarded negation to ``NOT EXISTS``, and Boolean
  guard conditions to ``CASE`` expressions.  Queries return *row positions*;
  the original Python rows are re-read and projected with the jobs' own
  compiled extractors, so outputs are bit-identical by construction.

Translation rules (the full table lives in ``docs/operators.md``):

==========================  ====================================================
GUMBO construct             SQL form
==========================  ====================================================
constant term ``c`` at i    ``t.c<i> = ?`` (canonical token parameter)
repeated variable (i, j)    ``t.c<i> = t.c<j> AND substr(t.c<i>,1,1) != 'n'``
NaN constant                predicate is unsatisfiable (``conforms`` uses ==)
positive semi-join          ``EXISTS (SELECT 1 FROM cond WHERE pred AND keys)``
negated literal             ``NOT EXISTS (...)``
Boolean condition           ``(CASE WHEN <φ over EXISTS> THEN 1 ELSE 0 END) = 1``
membership test (EVAL)      ``EXISTS`` correlated on *all* columns
==========================  ====================================================

The ``substr(...) != 'n'`` conjunct excludes NaN from repeated-variable
checks: the matcher compares with ``!=``, under which a NaN never equals
anything (itself included), while its identity token *would* equal itself.

Map-phase accounting uses one grouped query per guard/tag occurrence::

    SELECT t.pos % <chunks> AS chunk, MIN(t.pos), COUNT(*)
    FROM <table> t WHERE <pred> GROUP BY chunk, t.c<k0>, t.c<k1>, ...

Map-task chunks are strided (chunk *i* holds rows ``i, i+c, i+2c, ...``, see
:func:`repro.exec.partition.map_task_chunks`), so ``pos % chunks`` recovers
the chunk index, and ``MIN(pos)`` is the group's first occurrence within the
chunk — exactly the representative object a kernel ``Counter`` would keep.
Token groups coincide with Python key-equality classes (the codec's whole
point), so feeding the reconstructed per-chunk count dicts through the shared
accumulators — guards before tags, one flush per chunk, same as the kernels —
yields identical ``intermediate_mb`` / ``output_records`` / key-load numbers.

Anything this compiler cannot translate faithfully raises
:class:`~repro.exec.sql.codec.SQLUnsupportedValueError` at plan-build or
table-load time; the backend then falls back to the interpreted engine.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ...core.messages import FIELD_BYTES, TAG_BYTES, TUPLE_REFERENCE_BYTES
from ...mapreduce.kernels import PackedChunkAccumulator, PlainPairAccumulator
from ...model.atoms import tuple_extractor
from ...model.terms import Constant
from ...query.conditions import And, AtomCondition, Condition, Not, Or, TrueCondition
from .codec import SQLUnsupportedValueError, encode_scalar

__all__ = [
    "AtomSQL",
    "ChainPlan",
    "EvalPlan",
    "FusedPlan",
    "MSJPlan",
    "UnionPlan",
    "condition_sql",
]


class AtomSQL:
    """SQL compilation of one atom's conformance check.

    Mirrors :class:`~repro.model.atoms.CompiledAtom`: constants become
    token-equality comparisons, repeated variables become column-equality
    comparisons (with the NaN-identity exclusion), and the first-occurrence
    position map drives join-key/projection extraction.  A NaN constant makes
    the whole predicate unsatisfiable (``where`` returns ``None``), matching
    ``Atom.conforms``'s ``!=`` semantics.
    """

    __slots__ = ("atom", "arity", "impossible", "_consts", "_eqs", "_positions")

    def __init__(self, atom) -> None:
        self.atom = atom
        self.arity = atom.arity
        consts: List[Tuple[int, str]] = []
        eqs: List[Tuple[int, int]] = []
        positions: Dict[object, int] = {}
        impossible = False
        for index, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                value = term.value
                if isinstance(value, float) and value != value:
                    impossible = True
                else:
                    consts.append((index, encode_scalar(value)))
            elif term in positions:
                eqs.append((positions[term], index))
            else:
                positions[term] = index
        self.impossible = impossible
        self._consts = consts
        self._eqs = eqs
        self._positions = positions

    def key_positions(self, variables: Sequence[object]) -> Tuple[int, ...]:
        """First-occurrence column positions of *variables*, in order."""
        return tuple(self._positions[v] for v in variables)

    def where(self, alias: str) -> Optional[Tuple[str, List[str]]]:
        """``(clause, params)`` testing conformance, or ``None`` if unsatisfiable.

        The clause references columns as ``<alias>.c<i>``; ``"1"`` when the
        atom is unrestricted.
        """
        if self.impossible:
            return None
        clauses: List[str] = []
        params: List[str] = []
        for index, token in self._consts:
            clauses.append(f"{alias}.c{index} = ?")
            params.append(token)
        for first, other in self._eqs:
            clauses.append(f"{alias}.c{first} = {alias}.c{other}")
            clauses.append(f"substr({alias}.c{first}, 1, 1) != 'n'")
        return (" AND ".join(clauses) if clauses else "1", params)


class _MapSpec:
    """One guard or conditional-tag occurrence in a partition's accounting."""

    __slots__ = ("atomsql", "positions", "prefix", "request_size", "tag")

    def __init__(self, atomsql, positions, prefix, request_size, tag) -> None:
        self.atomsql = atomsql
        self.positions = positions
        self.prefix = prefix
        self.request_size = request_size
        self.tag = tag


def _chunk_counts(ctx, table, atomsql, positions, prefix):
    """``chunk index -> {key: count}`` over the conforming rows of *table*.

    One grouped query per spec; keys are reconstructed from the group's
    ``MIN(pos)`` row via the same first-occurrence positions the kernels use,
    prefixed with *prefix* (the fused job's query index).  Token groups equal
    Python key-equality classes, so counts and representative objects match a
    per-chunk ``Counter`` exactly.
    """
    where = atomsql.where("t")
    if where is None:
        return {}
    clause, params = where
    group_cols = "".join(f", t.c{p}" for p in positions)
    sql = (
        f"SELECT t.pos % {table.chunk_count} AS chunk, MIN(t.pos), COUNT(*) "
        f"FROM {table.sql_name} t WHERE {clause} GROUP BY chunk{group_cols}"
    )
    extract = tuple_extractor(positions)
    rows_py = table.rows
    per_chunk: Dict[int, Dict[tuple, int]] = {}
    for chunk, first_pos, count in ctx.execute(sql, params):
        per_chunk.setdefault(chunk, {})[prefix + extract(rows_py[first_pos])] = count
    return per_chunk


def _accounted_partition(ctx, job, table, guard_specs, tag_specs, packed):
    """Replay one partition's map-phase accounting from SQL-side counts.

    Feeds the per-chunk count dicts through the same accumulator classes the
    batch kernels use — guards before tags, one flush per chunk — so the
    resulting ``intermediate_bytes`` / ``records`` / ``key_bytes`` are
    bit-identical to the kernel (and hence the interpreted) path.
    """
    acc = PackedChunkAccumulator(job, TAG_BYTES) if packed else PlainPairAccumulator(job)
    row_len = table.row_len
    guard_data = [
        (spec, _chunk_counts(ctx, table, spec.atomsql, spec.positions, spec.prefix))
        for spec in guard_specs
        if spec.atomsql.arity == row_len
    ]
    tag_data = [
        (spec, _chunk_counts(ctx, table, spec.atomsql, spec.positions, spec.prefix))
        for spec in tag_specs
        if spec.atomsql.arity == row_len
    ]
    if not guard_data and not tag_data:
        return acc
    for chunk in range(table.chunk_count):
        for spec, data in guard_data:
            counts = data.get(chunk)
            if counts:
                if packed:
                    acc.add_request_counts(counts, spec.request_size)
                else:
                    acc.add_key_counts(counts, spec.request_size)
        for spec, data in tag_data:
            counts = data.get(chunk)
            if counts:
                if packed:
                    acc.add_assert_keys(list(counts), spec.tag)
                else:
                    acc.add_key_counts(counts, TAG_BYTES)
        acc.flush()
    return acc


def _exists_clause(ctx, cond_table, cond_where, cond_positions, guard_positions):
    """A correlated ``EXISTS`` probing *cond_table* on equal join-key tokens.

    Token equality reproduces the kernels' hash-set probe exactly, NaN
    identity semantics included, so no NaN exclusion is needed here.  An
    empty join key yields an uncorrelated ``EXISTS`` (the kernels' ``()``
    key).
    """
    ctx.ensure_index(cond_table, cond_positions)
    clause, params = cond_where
    correlation = " AND ".join(
        f"c.c{cp} = g.c{gp}" for gp, cp in zip(guard_positions, cond_positions)
    )
    inner = f"{clause} AND {correlation}" if correlation else clause
    return f"EXISTS (SELECT 1 FROM {cond_table.sql_name} c WHERE {inner})", list(params)


def condition_sql(condition: Condition, leaf) -> Tuple[str, List[str]]:
    """Compile a Boolean condition tree to an SQL expression.

    *leaf* maps an atom to its ``(clause, params)`` (an ``EXISTS`` probe or a
    ``"0"``/``"1"`` literal).  Raises
    :class:`~repro.exec.sql.codec.SQLUnsupportedValueError` on unknown node
    types, sending the job down the interpreted fallback.
    """
    if isinstance(condition, TrueCondition):
        return "1", []
    if isinstance(condition, AtomCondition):
        return leaf(condition.atom)
    if isinstance(condition, Not):
        inner, params = condition_sql(condition.operand, leaf)
        return f"NOT ({inner})", params
    if isinstance(condition, And):
        left, lparams = condition_sql(condition.left, leaf)
        right, rparams = condition_sql(condition.right, leaf)
        return f"({left} AND {right})", lparams + rparams
    if isinstance(condition, Or):
        left, lparams = condition_sql(condition.left, leaf)
        right, rparams = condition_sql(condition.right, leaf)
        return f"({left} OR {right})", lparams + rparams
    raise SQLUnsupportedValueError(
        f"condition node {type(condition).__name__} has no SQL translation"
    )


def _case(clause: str) -> str:
    """Wrap a Boolean expression as the paper-prescribed CASE guard test."""
    return f"(CASE WHEN {clause} THEN 1 ELSE 0 END) = 1"


def _guard_positions(ctx, table, where):
    """Row positions satisfying *where*, in the kernels' chunk-major order.

    Ordering by ``(pos % chunks, pos)`` visits rows exactly as the kernels'
    per-chunk loops do, so set-insertion representatives of equal-but-distinct
    output tuples match the kernel path.
    """
    clause, params = where
    sql = (
        f"SELECT g.pos FROM {table.sql_name} g WHERE {clause} "
        f"ORDER BY g.pos % {table.chunk_count}, g.pos"
    )
    return [pos for (pos,) in ctx.execute(sql, params)]


def _validate_condition(condition: Condition, known_atoms) -> None:
    """Reject conditions the SQL path cannot compile (fallback, not failure)."""
    known = set(known_atoms)
    for node in condition.walk():
        if isinstance(node, AtomCondition):
            if node.atom not in known:
                raise SQLUnsupportedValueError(
                    f"condition references unknown conditional atom {node.atom}"
                )
        elif not isinstance(node, (TrueCondition, Not, And, Or)):
            raise SQLUnsupportedValueError(
                f"condition node {type(node).__name__} has no SQL translation"
            )


class MSJPlan:
    """SQL plan for :class:`~repro.core.msj.MSJJob`.

    Each semi-join equation becomes one query: conforming guard rows filtered
    by a correlated ``EXISTS`` against the conditional's table on the
    join-key columns.
    """

    def __init__(self, job) -> None:
        self.job = job
        self._atom_sqls: Dict[object, AtomSQL] = {}
        self.guard_specs: Dict[str, List[_MapSpec]] = {}
        self.tag_specs: Dict[str, List[_MapSpec]] = {}
        by_reference = job.options.tuple_reference
        for spec in job.specs:
            atomsql = self._atom_sql(spec.guard)
            payload_len = (
                len(spec.projection) if job.emit_projection else spec.guard.arity
            )
            request_size = TAG_BYTES + (
                TUPLE_REFERENCE_BYTES
                if by_reference
                else max(1, payload_len) * FIELD_BYTES
            )
            self.guard_specs.setdefault(spec.guard.relation, []).append(
                _MapSpec(
                    atomsql,
                    atomsql.key_positions(spec.join_key),
                    (),
                    request_size,
                    None,
                )
            )
        for tag_index, (conditional, join_key) in enumerate(job._tags):
            atomsql = self._atom_sql(conditional)
            self.tag_specs.setdefault(conditional.relation, []).append(
                _MapSpec(atomsql, atomsql.key_positions(join_key), (), None, tag_index)
            )

    def _atom_sql(self, atom) -> AtomSQL:
        compiled = self._atom_sqls.get(atom)
        if compiled is None:
            compiled = self._atom_sqls[atom] = AtomSQL(atom)
        return compiled

    def partition(self, ctx, relation: str):
        """Accounting accumulator for one input partition."""
        return _accounted_partition(
            ctx,
            self.job,
            ctx.table(relation),
            self.guard_specs.get(relation, ()),
            self.tag_specs.get(relation, ()),
            self.job.uses_combiner(),
        )

    def outputs(self, ctx) -> Dict[str, set]:
        """Output rows per relation, bit-identical to the kernel reduce."""
        job = self.job
        out: Dict[str, set] = {spec.output: set() for spec in job.specs}
        for spec in job.specs:
            guard_sql = self._atom_sql(spec.guard)
            guard_table = ctx.table(spec.guard.relation)
            if guard_sql.arity != guard_table.row_len:
                continue
            guard_where = guard_sql.where("g")
            if guard_where is None:
                continue
            cond_sql = self._atom_sql(spec.conditional)
            cond_table = ctx.table(spec.conditional.relation)
            if cond_sql.arity != cond_table.row_len:
                continue
            cond_where = cond_sql.where("c")
            if cond_where is None:
                continue
            exists, exists_params = _exists_clause(
                ctx,
                cond_table,
                cond_where,
                cond_sql.key_positions(spec.join_key),
                guard_sql.key_positions(spec.join_key),
            )
            clause, params = guard_where
            positions = _guard_positions(
                ctx, guard_table, (f"{clause} AND {exists}", params + exists_params)
            )
            rows_py = guard_table.rows
            if job.emit_projection:
                payload_of = spec.guard.compile().extractor(spec.projection)
                picked = [payload_of(rows_py[pos]) for pos in positions]
            else:
                picked = [rows_py[pos] for pos in positions]
            out[spec.output].update(picked)
        return out


class ChainPlan:
    """SQL plan for :class:`~repro.core.chain.SemiJoinChainJob`.

    The positive literal is a correlated ``EXISTS``; the negated literal a
    ``NOT EXISTS`` (the anti-join).  A literal that can never conform —
    NaN constant, arity mismatch, missing relation — makes the ``EXISTS``
    constantly false: no output for a positive step, the full conforming
    guard set for a negative one.
    """

    def __init__(self, job) -> None:
        self.job = job
        self.guard_sql = AtomSQL(job.guard_atom)
        self.literal_sql = AtomSQL(job.literal.atom)
        request_size = TAG_BYTES + (
            TUPLE_REFERENCE_BYTES
            if job.options.tuple_reference
            else max(1, job.guard_atom.arity) * FIELD_BYTES
        )
        self._guard_spec = _MapSpec(
            self.guard_sql,
            self.guard_sql.key_positions(job.join_key),
            (),
            request_size,
            None,
        )
        self._literal_spec = _MapSpec(
            self.literal_sql,
            self.literal_sql.key_positions(job.join_key),
            (),
            None,
            0,
        )

    def partition(self, ctx, relation: str):
        """Accounting accumulator for one input partition."""
        job = self.job
        guards = [self._guard_spec] if relation == job.input_name else []
        tags = [self._literal_spec] if relation == job.literal.atom.relation else []
        return _accounted_partition(
            ctx, job, ctx.table(relation), guards, tags, job.uses_combiner()
        )

    def outputs(self, ctx) -> Dict[str, set]:
        """Output rows, bit-identical to the kernel reduce."""
        job = self.job
        out: set = set()
        guard_table = ctx.table(job.input_name)
        if self.guard_sql.arity == guard_table.row_len:
            guard_where = self.guard_sql.where("g")
        else:
            guard_where = None
        if guard_where is not None:
            literal_table = ctx.table(job.literal.atom.relation)
            literal_where = (
                self.literal_sql.where("c")
                if self.literal_sql.arity == literal_table.row_len
                else None
            )
            clause, params = guard_where
            if literal_where is not None:
                exists, exists_params = _exists_clause(
                    ctx,
                    literal_table,
                    literal_where,
                    self.literal_sql.key_positions(job.join_key),
                    self.guard_sql.key_positions(job.join_key),
                )
                verb = "" if job.literal.positive else "NOT "
                where = (f"{clause} AND {verb}{exists}", params + exists_params)
                positions = _guard_positions(ctx, guard_table, where)
            elif job.literal.positive:
                positions = []  # semi-join against nothing keeps nothing
            else:
                positions = _guard_positions(ctx, guard_table, guard_where)
            rows_py = guard_table.rows
            kept = [rows_py[pos] for pos in positions]
            if job.projection is None:
                out.update(kept)
            elif job.projection:
                project = job.guard_atom.compile().extractor(job.projection)
                out.update(map(project, kept))
            else:
                out.update([(row[0],) for row in kept])
        return {job.output_name: out}


class UnionPlan:
    """SQL plan for :class:`~repro.core.chain.UnionProjectJob`.

    One projection query per input relation; the deduplicating union is the
    output set itself.
    """

    def __init__(self, job) -> None:
        self.job = job
        self.guard_sql = AtomSQL(job.guard_atom)
        self.positions = (
            self.guard_sql.key_positions(job.projection) if job.projection else (0,)
        )

    def partition(self, ctx, relation: str):
        """Accounting accumulator for one input partition (1-byte values)."""
        job = self.job
        table = ctx.table(relation)
        acc = PlainPairAccumulator(job)
        if self.guard_sql.arity != table.row_len:
            return acc
        data = _chunk_counts(ctx, table, self.guard_sql, self.positions, ())
        for chunk in range(table.chunk_count):
            counts = data.get(chunk)
            if counts:
                acc.add_key_counts(counts, 1)
        return acc

    def outputs(self, ctx) -> Dict[str, set]:
        """The union of the projected conforming rows of every input."""
        job = self.job
        out: set = set()
        project = job.guard_atom.compile().extractor(job.projection)
        projects = bool(job.projection)
        for relation in job.input_relations():
            table = ctx.table(relation)
            if self.guard_sql.arity != table.row_len:
                continue
            where = self.guard_sql.where("g")
            if where is None:
                continue
            rows_py = table.rows
            for pos in _guard_positions(ctx, table, where):
                row = rows_py[pos]
                out.add(project(row) if projects else (row[0],))
        return {job.output_name: out}


class EvalPlan:
    """SQL plan for :class:`~repro.core.eval_job.EvalJob`.

    Per target, the Boolean condition over semi-join memberships compiles to
    a ``CASE`` expression whose leaves are ``EXISTS`` probes of the
    intermediate relations, correlated on *all* guard columns (membership is
    whole-row containment).  A guard relation that doubles as an intermediate
    is consumed by the membership branch only, exactly like the kernel's
    early return.
    """

    def __init__(self, job) -> None:
        self.job = job
        self.guard_sqls = [AtomSQL(t.guard) for t in job.targets]
        self.guard_targets: Dict[str, List[Tuple[int, AtomSQL]]] = {}
        for t_index, target in enumerate(job.targets):
            self.guard_targets.setdefault(target.guard.relation, []).append(
                (t_index, self.guard_sqls[t_index])
            )
            _validate_condition(
                target.query.condition, target.query.conditional_atoms
            )

    def partition(self, ctx, relation: str):
        """Accounting accumulator for one input partition.

        Membership partitions charge one uniform pair per row (no SQL
        needed); guard partitions one pair per (target, conforming row).
        """
        job = self.job
        table = ctx.table(relation)
        acc = PlainPairAccumulator(job)
        membership = job._membership.get(relation)
        rows_py = table.rows
        if membership is not None:
            t_index = membership[0]
            if rows_py:
                keys = [(t_index,) + row for row in rows_py]
                acc.add_uniform_pairs(keys, job.key_bytes(keys[0]) + TAG_BYTES)
            return acc
        row_len = table.row_len
        for t_index, atomsql in self.guard_targets.get(relation, ()):
            if atomsql.arity != row_len:
                continue
            where = atomsql.where("t")
            if where is None:
                continue
            clause, params = where
            sql = (
                f"SELECT t.pos FROM {table.sql_name} t WHERE {clause} "
                f"ORDER BY t.pos % {table.chunk_count}, t.pos"
            )
            keys = [
                (t_index,) + rows_py[pos] for (pos,) in ctx.execute(sql, params)
            ]
            if keys:
                acc.add_uniform_pairs(keys, job.key_bytes(keys[0]) + TAG_BYTES)
        return acc

    def outputs(self, ctx) -> Dict[str, set]:
        """Output rows per target, bit-identical to the kernel reduce."""
        job = self.job
        out: Dict[str, set] = {t.output: set() for t in job.targets}
        for t_index, target in enumerate(job.targets):
            if target.guard.relation in job._membership:
                continue  # guard rows were consumed by the membership branch
            guard_sql = self.guard_sqls[t_index]
            guard_table = ctx.table(target.guard.relation)
            if guard_sql.arity != guard_table.row_len:
                continue
            guard_where = guard_sql.where("g")
            if guard_where is None:
                continue
            atoms = target.query.conditional_atoms
            index_of = {atom: i for i, atom in enumerate(atoms)}
            guard_arity = guard_sql.arity

            def leaf(atom):
                member_table = ctx.table(
                    target.intermediates[index_of[atom]]  # noqa: B023
                )
                if member_table.row_len != guard_arity:  # noqa: B023
                    return "0", []
                ctx.ensure_index(member_table, tuple(range(guard_arity)))  # noqa: B023
                correlation = " AND ".join(
                    f"m.c{i} = g.c{i}" for i in range(guard_arity)  # noqa: B023
                )
                return (
                    f"EXISTS (SELECT 1 FROM {member_table.sql_name} m "
                    f"WHERE {correlation})",
                    [],
                )

            case_clause, case_params = condition_sql(target.query.condition, leaf)
            clause, params = guard_where
            positions = _guard_positions(
                ctx,
                guard_table,
                (f"{clause} AND {_case(case_clause)}", params + case_params),
            )
            project = target.guard.compile().extractor(target.query.projection)
            projects = bool(target.query.projection)
            rows_py = guard_table.rows
            sink = out[target.output]
            for pos in positions:
                row = rows_py[pos]
                sink.add(project(row) if projects else ((row[0],)))
        return out


class FusedPlan:
    """SQL plan for :class:`~repro.core.fused.FusedOneRoundJob`.

    Per fused query, the shared-key condition compiles to one ``CASE``
    expression whose leaves are ``EXISTS`` probes on the query's join key —
    per-row ``EXISTS`` on the key is equivalent to the kernel's per-key
    membership mask, since guard rows sharing a join key share memberships.
    """

    def __init__(self, job) -> None:
        self.job = job
        self._atom_sqls: Dict[object, AtomSQL] = {}
        self.guard_specs: Dict[str, List[_MapSpec]] = {}
        self.tag_specs: Dict[str, List[_MapSpec]] = {}
        by_reference = job.options.tuple_reference
        for q_index, query in enumerate(job.queries):
            atomsql = self._atom_sql(query.guard)
            request_size = TAG_BYTES + (
                TUPLE_REFERENCE_BYTES
                if by_reference
                else max(1, query.guard.arity) * FIELD_BYTES
            )
            self.guard_specs.setdefault(query.guard.relation, []).append(
                _MapSpec(
                    atomsql,
                    atomsql.key_positions(job._join_keys[q_index]),
                    (q_index,),
                    request_size,
                    None,
                )
            )
            _validate_condition(query.condition, query.conditional_atoms)
        for tag, (q_index, atom, join_key) in enumerate(job._tags):
            atomsql = self._atom_sql(atom)
            self.tag_specs.setdefault(atom.relation, []).append(
                _MapSpec(
                    atomsql, atomsql.key_positions(join_key), (q_index,), None, tag
                )
            )

    def _atom_sql(self, atom) -> AtomSQL:
        compiled = self._atom_sqls.get(atom)
        if compiled is None:
            compiled = self._atom_sqls[atom] = AtomSQL(atom)
        return compiled

    def partition(self, ctx, relation: str):
        """Accounting accumulator for one input partition."""
        return _accounted_partition(
            ctx,
            self.job,
            ctx.table(relation),
            self.guard_specs.get(relation, ()),
            self.tag_specs.get(relation, ()),
            self.job.uses_combiner(),
        )

    def outputs(self, ctx) -> Dict[str, set]:
        """Output rows per query, bit-identical to the kernel reduce."""
        job = self.job
        out: Dict[str, set] = {q.output: set() for q in job.queries}
        for q_index, query in enumerate(job.queries):
            guard_sql = self._atom_sql(query.guard)
            guard_table = ctx.table(query.guard.relation)
            if guard_sql.arity != guard_table.row_len:
                continue
            guard_where = guard_sql.where("g")
            if guard_where is None:
                continue
            guard_positions = guard_sql.key_positions(job._join_keys[q_index])
            join_key = job._join_keys[q_index]

            def leaf(atom):
                atomsql = self._atom_sql(atom)
                cond_table = ctx.table(atom.relation)
                if atomsql.arity != cond_table.row_len:
                    return "0", []
                cond_where = atomsql.where("c")
                if cond_where is None:
                    return "0", []
                return _exists_clause(
                    ctx,
                    cond_table,
                    cond_where,
                    atomsql.key_positions(join_key),  # noqa: B023
                    guard_positions,  # noqa: B023
                )

            case_clause, case_params = condition_sql(query.condition, leaf)
            clause, params = guard_where
            positions = _guard_positions(
                ctx,
                guard_table,
                (f"{clause} AND {_case(case_clause)}", params + case_params),
            )
            project = query.guard.compile().extractor(query.projection)
            projects = bool(query.projection)
            rows_py = guard_table.rows
            sink = out[query.output]
            for pos in positions:
                row = rows_py[pos]
                sink.add(project(row) if projects else ((row[0],)))
        return out
