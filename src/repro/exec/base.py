"""The execution-backend seam: one planner, interchangeable runtimes.

The planning layers (strategies, Gumbo, the dynamic executor) produce
:class:`~repro.mapreduce.program.MRProgram` DAGs; *how* those programs are
executed is an independent choice captured by :class:`ExecutionBackend`:

* :class:`~repro.exec.simulated.SimulatedBackend` (``"serial"``) runs every
  task in-process on the serial :class:`~repro.mapreduce.engine.MapReduceEngine`
  — the seed behaviour, and the reference semantics;
* :class:`~repro.exec.parallel.ParallelBackend` (``"parallel"``) fans map
  tasks and reduce partitions out across a ``multiprocessing`` worker pool;
* :class:`~repro.exec.sql.SQLBackend` (``"sql"``) compiles SQL-expressible
  jobs to queries over an in-memory or on-disk sqlite3 database, falling
  back to the interpreted engine per job where it cannot;
* :class:`~repro.service.sharded.backend.ShardedBackend` (``"sharded"``)
  fans tasks out to long-lived worker processes that each hold a
  hash-partitioned shard of the database warm across requests (the
  persistent service tier).

Every backend returns the engine's :class:`~repro.mapreduce.engine.JobResult`
/ :class:`~repro.mapreduce.engine.ProgramResult` types with identical output
relations and identical *simulated* Hadoop metrics; backends additionally
stamp real wall-clock measurements (see
:class:`~repro.mapreduce.counters.WallClockMetrics`) so simulated-vs-real
speedup curves can be drawn.  Future runtimes (async, sharded, distributed)
plug in by subclassing :class:`ExecutionBackend` and registering a name.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from ..mapreduce.engine import JobResult, MapReduceEngine, ProgramResult
    from ..mapreduce.job import MapReduceJob
    from ..mapreduce.program import MRProgram
    from ..model.database import Database

#: Canonical backend names accepted by :func:`make_backend` and the CLI.
SERIAL = "serial"
PARALLEL = "parallel"
SQL = "sql"
SHARDED = "sharded"
BACKEND_NAMES = (SERIAL, PARALLEL, SQL, SHARDED)

#: Accepted aliases for backend names.
_ALIASES = {
    "simulated": SERIAL,
    "sim": SERIAL,
    "single": SERIAL,
    "multiprocessing": PARALLEL,
    "mp": PARALLEL,
    "sqlite": SQL,
    "sqlite3": SQL,
    "shard": SHARDED,
    "shards": SHARDED,
}


def normalise_backend(name: str) -> str:
    """Canonical form of a backend name.

    Args:
        name: A canonical name (``"serial"``, ``"parallel"``, ``"sql"``) or
            an accepted alias (``"sim"``, ``"mp"``, ``"sqlite3"``, ...),
            case-insensitive.

    Returns:
        The canonical name from :data:`BACKEND_NAMES`.

    Raises:
        ValueError: If *name* is not a known backend or alias.
    """
    canonical = _ALIASES.get(name.strip().lower(), name.strip().lower())
    if canonical not in BACKEND_NAMES:
        raise ValueError(
            f"unknown execution backend {name!r}; expected one of {BACKEND_NAMES}"
        )
    return canonical


class ExecutionBackend(ABC):
    """Executes MR jobs and programs, producing results plus wall-clock metrics.

    Concrete backends hold a :class:`~repro.mapreduce.engine.MapReduceEngine`
    (exposed as :attr:`engine`) that supplies the cluster configuration, cost
    constants and the simulated-metric accounting; the backend decides only
    *where and when the map/reduce functions actually run*.
    """

    #: Canonical name of the backend (``"serial"``, ``"parallel"``, ...).
    name: str = "abstract"

    #: The engine providing cluster config, constants and metric accounting.
    engine: "MapReduceEngine"

    @abstractmethod
    def run_job(self, job: "MapReduceJob", database: "Database") -> "JobResult":
        """Execute one MapReduce job against *database*."""

    @abstractmethod
    def run_program(
        self, program: "MRProgram", database: "Database"
    ) -> "ProgramResult":
        """Execute an MR program level by level against *database*."""

    def close(self) -> None:
        """Release any resources (worker pools); safe to call repeatedly."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def make_backend(
    backend: Union[str, ExecutionBackend, None] = None,
    engine: Optional["MapReduceEngine"] = None,
    workers: Optional[int] = None,
    sql_db: Optional[str] = None,
    shards: Optional[int] = None,
    data_plane: Optional[str] = None,
) -> ExecutionBackend:
    """Build an execution backend from a name (or pass an instance through).

    Args:
        backend: ``"serial"``/``"parallel"``/``"sql"``/``"sharded"`` (or an
            alias), an existing :class:`ExecutionBackend` instance (returned
            unchanged), or ``None`` for the serial default.
        engine: The engine the backend should account against (a
            paper-cluster default is created when omitted).
        workers: Worker-pool size for the parallel backend (ignored by the
            others; defaults to the machine's CPU count).
        sql_db: On-disk scratch-database path for the SQL backend (ignored by
            the others; ``None`` keeps it in ``:memory:``).
        shards: Persistent worker count for the sharded backend (ignored by
            the others; ``None`` uses its default of 2).
        data_plane: How chunk payloads cross process boundaries on the
            parallel and sharded backends (``"shm"``/``"pickle"``/``"auto"``,
            see :mod:`repro.exec.shm`; ignored by serial and SQL; ``None``
            keeps the ``"auto"`` default).

    Returns:
        A ready-to-use :class:`ExecutionBackend`.

    Raises:
        ValueError: If *backend* is an unknown name, or an instance was
            passed together with a conflicting ``engine``, ``workers``,
            ``sql_db``, ``shards`` or ``data_plane``.
    """
    if isinstance(backend, ExecutionBackend):
        if engine is not None and engine is not backend.engine:
            raise ValueError(
                "an ExecutionBackend instance carries its own engine; "
                "pass engine= only when selecting a backend by name"
            )
        if workers is not None and workers != getattr(backend, "workers", workers):
            raise ValueError(
                "an ExecutionBackend instance carries its own worker count; "
                "pass workers= only when selecting a backend by name"
            )
        if sql_db is not None and sql_db != getattr(backend, "sql_db", sql_db):
            raise ValueError(
                "an ExecutionBackend instance carries its own database path; "
                "pass sql_db= only when selecting a backend by name"
            )
        if shards is not None and shards != getattr(backend, "shards", shards):
            raise ValueError(
                "an ExecutionBackend instance carries its own shard count; "
                "pass shards= only when selecting a backend by name"
            )
        if data_plane is not None:
            from .shm import normalise_data_plane

            plane = normalise_data_plane(data_plane)
            if plane != getattr(backend, "data_plane", plane):
                raise ValueError(
                    "an ExecutionBackend instance carries its own data plane; "
                    "pass data_plane= only when selecting a backend by name"
                )
        return backend
    name = normalise_backend(backend or SERIAL)
    if name == SERIAL:
        from .simulated import SimulatedBackend

        return SimulatedBackend(engine)
    if name == SQL:
        from .sql import SQLBackend

        return SQLBackend(engine, sql_db=sql_db)
    if name == SHARDED:
        from ..service.sharded.backend import ShardedBackend

        return ShardedBackend(engine, shards=shards, data_plane=data_plane)
    from .parallel import ParallelBackend

    return ParallelBackend(engine, workers=workers, data_plane=data_plane)
