"""Pluggable execution backends for MR programs.

This package is the seam between *planning* (strategies, Gumbo, the dynamic
executor — all of which produce :class:`~repro.mapreduce.program.MRProgram`
DAGs) and *running*:

* ``"serial"`` — :class:`SimulatedBackend`, the seed's serial in-process
  engine behind the backend interface;
* ``"parallel"`` — :class:`ParallelBackend`, a true ``multiprocessing``
  runtime that fans map tasks and reduce partitions out across a worker
  pool with a hash-partitioned shuffle, wave-scheduled on the simulated
  cluster's task slots;
* ``"sql"`` — :class:`SQLBackend`, which compiles SQL-expressible jobs to
  queries over an in-memory or on-disk sqlite3 database and falls back to
  the interpreted engine per job where it cannot;
* ``"sharded"`` — :class:`ShardedBackend` (from
  :mod:`repro.service.sharded`), the persistent service tier: long-lived
  worker processes each holding a hash-partitioned shard of the database
  warm across requests, spoken to over length-prefixed RPC.

All backends produce bit-identical output relations and simulated Hadoop
metrics; the parallel backend additionally uses real hardware parallelism
and records measured wall-clock times per wave and per job.  Select a
backend by name through :func:`make_backend`,
:class:`~repro.core.gumbo.Gumbo`, or the CLI's ``--backend`` flag.  See
``docs/backends.md`` for the full contract.

The backend classes are loaded lazily (PEP 562) so that
:mod:`repro.mapreduce.engine` can import the shared partitioning helpers
from this package without an import cycle.
"""

from __future__ import annotations

from .base import (
    BACKEND_NAMES,
    PARALLEL,
    SERIAL,
    SHARDED,
    SQL,
    ExecutionBackend,
    make_backend,
    normalise_backend,
)
from .partition import map_task_chunks, partition_index, stable_hash
from .shm import DATA_PLANES, SegmentPool, normalise_data_plane

__all__ = [
    "BACKEND_NAMES",
    "DATA_PLANES",
    "PARALLEL",
    "SERIAL",
    "SHARDED",
    "SQL",
    "ExecutionBackend",
    "ParallelBackend",
    "SegmentPool",
    "ShardedBackend",
    "SimulatedBackend",
    "SQLBackend",
    "make_backend",
    "map_task_chunks",
    "normalise_backend",
    "normalise_data_plane",
    "partition_index",
    "stable_hash",
]


def __getattr__(name: str):
    if name == "SimulatedBackend":
        from .simulated import SimulatedBackend

        return SimulatedBackend
    if name == "ParallelBackend":
        from .parallel import ParallelBackend

        return ParallelBackend
    if name == "SQLBackend":
        from .sql import SQLBackend

        return SQLBackend
    if name == "ShardedBackend":
        from ..service.sharded.backend import ShardedBackend

        return ShardedBackend
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
