"""A true multiprocessing runtime behind the execution-backend seam.

:class:`ParallelBackend` actually fans work out across OS processes, the way
the paper's Gumbo system fans tasks out across its 10-node Hadoop cluster:

* the *map phase* of a job becomes one task per map chunk (the same strided
  chunks the serial engine iterates), executed on a ``multiprocessing`` pool;
* the shuffle hash-partitions the grouped keys over the chosen number of
  reducers with the shared :func:`~repro.exec.partition.partition_index`
  (Hadoop's default-partitioner behaviour), and the *reduce phase* becomes
  one task per non-empty reduce partition;
* tasks are wave-scheduled: at most
  :attr:`~repro.mapreduce.cluster.ClusterConfig.total_slots` tasks are in
  flight per wave, mirroring how the simulated cluster's containers execute
  in waves, and each wave's wall-clock time is recorded.

Because the chunking, partitioning and byte accounting are shared with the
serial engine — and all simulated metrics funnel through
:meth:`~repro.mapreduce.engine.MapReduceEngine.finalise_job_metrics` — the
outputs and simulated Hadoop metrics are bit-identical to
:class:`~repro.exec.simulated.SimulatedBackend`; only the measured
wall-clock metrics differ.

Jobs and rows are shipped to the workers by pickling, so jobs must be
picklable (all jobs in this package are: they hold only query dataclasses
and options, never closures).  The job is pickled once per job run and the
resulting blob shared by every task of both phases; workers memoise the
deserialised job per blob, so neither side pays the job's serialisation cost
per task.  Map-task inputs ship as packed
:class:`~repro.model.relation.ColumnBlock` payloads — homogeneous numeric
columns travel as typed ``array`` buffers instead of per-row pickle records
(the reduce side still ships key groups as plain pairs).

Since the shared-memory data plane (see :mod:`repro.exec.shm` and
``docs/dataplane.md``), packed chunks may cross the pool boundary as
:class:`~repro.exec.shm.ShmPayload` descriptors instead: the typed columns
are placed once into a shared-memory segment owned by the backend's
:class:`~repro.exec.shm.SegmentPool`, workers attach and build
memoryview-backed blocks without copying, and the parent releases the
segments when the wave's results are in.  ``data_plane="auto"`` (the
default) picks per chunk by size; outputs and simulated metrics are
bit-identical on every plane.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from collections import Counter, defaultdict
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from ..mapreduce.counters import PartitionMetrics, ProgramMetrics, WallClockMetrics
from ..mapreduce.engine import (
    JobResult,
    MapReduceEngine,
    ProgramResult,
    add_output_fact,
    prepare_output_relations,
)
from ..mapreduce.job import Key, MapReduceJob
from ..mapreduce.kernels import use_kernel
from ..mapreduce.program import MRProgram
from ..model.database import Database
from ..model.relation import ColumnBlock, Relation, tuple_sort_key
from ..obs import metrics as obs_metrics
from .. import obs
from .base import PARALLEL, ExecutionBackend
from .partition import partition_index
from .shm import (
    SegmentPool,
    decode_payload,
    encode_block,
    normalise_data_plane,
    payload_segment,
)

_MB = 1024.0 * 1024.0

#: Jobs run through this backend's task fan-out (the kernel path is counted
#: by the engine as ``path="kernel"``; the serial interpreter as
#: ``path="interpreted"``).
_JOBS_FANOUT = obs_metrics.default_registry().counter(
    "repro_jobs_total", path="fanout"
)

#: A map task shipped to a worker:
#: (job pickle, input relation, packed column block, trace this task?).
_MapTask = Tuple[bytes, str, object, bool]

#: A reduce task shipped to a worker:
#: (job pickle, [(key, values), ...], trace this task?).
_ReduceTask = Tuple[bytes, List[Tuple[Key, List[object]]], bool]

#: Worker-side memo of deserialised jobs, keyed by their pickle blob.  Every
#: task of a job run carries the *same* bytes object, so each worker pays the
#: job deserialisation once per job instead of once per task.
_job_cache: Dict[bytes, MapReduceJob] = {}


def _job_from_blob(blob: bytes) -> MapReduceJob:
    job = _job_cache.get(blob)
    if job is None:
        if len(_job_cache) >= 16:
            _job_cache.clear()
        job = pickle.loads(blob)
        _job_cache[blob] = job
    return job


def _run_map_task(task: _MapTask):
    """Worker-side map task: map, combine and size one chunk of rows.

    Returns the emitted ``(key, value)`` pairs in emission order (so the
    parent can rebuild the exact key-group ordering the serial engine
    produces), the chunk's intermediate bytes, and its per-key byte loads —
    plus a :func:`~repro.obs.trace.worker_payload` span dict when the parent
    asked for tracing (``None`` otherwise).
    """
    job_blob, relation_name, packed, traced = task
    start_s = perf_counter() if traced else 0.0
    job = _job_from_blob(job_blob)
    block = decode_payload(packed)
    rows = block.rows()
    block.release()  # transient chunk: unpin the shm segment (no-op on pickle)
    buffer: Dict[Key, List[object]] = {}
    for row in rows:
        for key, value in job.map(relation_name, row):
            buffer.setdefault(key, []).append(value)
    pairs: List[Tuple[Key, object]] = []
    intermediate_bytes = 0
    key_bytes: Dict[Key, int] = {}
    for key, values in buffer.items():
        if job.uses_combiner():
            values = job.combine(key, values)
        for value in values:
            pair_size = job.pair_bytes(key, value)
            intermediate_bytes += pair_size
            key_bytes[key] = key_bytes.get(key, 0) + pair_size
            pairs.append((key, value))
    payload = (
        obs.worker_payload(
            "map_task",
            start_s,
            perf_counter(),
            relation=relation_name,
            rows=len(rows),
            pairs=len(pairs),
        )
        if traced
        else None
    )
    return (pairs, intermediate_bytes, key_bytes), payload


def _run_reduce_task(task: _ReduceTask):
    """Worker-side reduce task: reduce every key group of one partition."""
    job_blob, items, traced = task
    start_s = perf_counter() if traced else 0.0
    job = _job_from_blob(job_blob)
    facts: List[Tuple[str, Tuple[object, ...]]] = []
    for key, values in items:
        facts.extend(job.reduce(key, values))
    payload = (
        obs.worker_payload(
            "reduce_task",
            start_s,
            perf_counter(),
            groups=len(items),
            facts=len(facts),
        )
        if traced
        else None
    )
    return facts, payload


class ParallelBackend(ExecutionBackend):
    """Executes map tasks and reduce partitions on a process pool.

    Parameters
    ----------
    engine:
        The engine supplying cluster config, constants and the simulated
        metric accounting (paper-cluster default when omitted).
    workers:
        Worker processes in the pool; defaults to the machine's CPU count.
        The pool is created lazily on first use and reused across jobs (so
        startup cost is amortised over a program); call :meth:`close` (or use
        the backend as a context manager) to release it.
    start_method:
        ``multiprocessing`` start method (``"fork"``/``"spawn"``/...);
        platform default when omitted.
    data_plane:
        How map chunks cross the pool boundary: ``"shm"`` (shared-memory
        segments, zero-copy attach on the workers), ``"pickle"`` (the
        historical pipe payloads) or ``"auto"`` (the default: shm for
        chunks with enough typed bytes).  Outputs and simulated metrics are
        bit-identical on every plane.
    """

    name = PARALLEL

    def __init__(
        self,
        engine: Optional[MapReduceEngine] = None,
        workers: Optional[int] = None,
        start_method: Optional[str] = None,
        data_plane: Optional[str] = None,
    ) -> None:
        self.engine = engine or MapReduceEngine()
        self.workers = max(1, int(workers or os.cpu_count() or 1))
        self.data_plane = normalise_data_plane(data_plane)
        self._context = (
            multiprocessing.get_context(start_method)
            if start_method
            else multiprocessing.get_context()
        )
        self._pool = None
        self._segments = SegmentPool()

    # -- pool lifecycle -----------------------------------------------------------

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = self._context.Pool(processes=self.workers)
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent; a later run re-creates it)."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
        self._segments.close_all()

    # -- wave scheduling ----------------------------------------------------------

    def _run_waves(self, phase: str, func, tasks: List, wall: WallClockMetrics) -> List:
        """Run *tasks* through the pool in waves of at most ``total_slots``.

        Each wave gets a span, and any worker-side span payloads the tasks
        shipped back are re-parented under it, so the trace shows exactly
        which wave ran which task in which worker process.
        """
        if not tasks:
            return []
        pool = self._ensure_pool()
        slots = max(1, self.engine.cluster.total_slots)
        tracer = obs.current_tracer()
        results: List = []
        for start in range(0, len(tasks), slots):
            wave = tasks[start : start + slots]
            begin = perf_counter()
            with obs.span("wave", phase=phase, tasks=len(wave)) as wave_span:
                for result, payload in pool.map(func, wave):
                    results.append(result)
                    if payload is not None and tracer is not None:
                        tracer.adopt_payload(payload, wave_span.span_id)
            wall.record_wave(phase, len(wave), perf_counter() - begin)
        return results

    # -- single job ---------------------------------------------------------------

    def run_job(self, job: MapReduceJob, database: Database) -> JobResult:
        """Execute one MapReduce job with parallel map and reduce phases.

        ``kernel_mode="on"`` jobs run through the engine's in-process batch
        kernel instead of fanning out (the kernel is a single-process set
        algorithm and beats the fan-out by a wide margin); ``"auto"`` keeps
        the fan-out here, so this backend's task parallelism is preserved by
        default.  Outputs and simulated metrics are identical either way.
        """
        if use_kernel(job, fanout=True):
            start = perf_counter()
            result = self.engine.run_job_kernel(job, database)
            result.metrics.wall = WallClockMetrics(
                backend=self.name,
                workers=self.workers,
                elapsed_s=perf_counter() - start,
            )
            return result
        _JOBS_FANOUT.inc()
        with obs.span(
            "job", job_id=job.job_id, kind=type(job).__name__, path="fanout"
        ) as job_span:
            start = perf_counter()
            wall = WallClockMetrics(backend=self.name, workers=self.workers)
            job_blob = pickle.dumps(job, protocol=pickle.HIGHEST_PROTOCOL)
            groups, key_bytes, partition_metrics = self._map_phase(
                job, job_blob, database, wall
            )
            input_mb = sum(p.input_mb for p in partition_metrics)
            intermediate_mb = sum(p.intermediate_mb for p in partition_metrics)
            reducers = self.engine.reducers_for(job, input_mb, intermediate_mb)
            outputs = self._reduce_phase(job, job_blob, groups, reducers, wall)
            metrics = self.engine.finalise_job_metrics(
                job, partition_metrics, key_bytes, outputs
            )
            wall.elapsed_s = perf_counter() - start
            metrics.wall = wall
            job_span.set(reducers=reducers, workers=self.workers)
            return JobResult(job_id=job.job_id, outputs=outputs, metrics=metrics)

    def _map_phase(
        self,
        job: MapReduceJob,
        job_blob: bytes,
        database: Database,
        wall: WallClockMetrics,
    ):
        """Fan the job's map chunks out to the pool and merge the shuffle."""
        traced = obs.tracing_enabled()
        tagged: List[Tuple[int, _MapTask]] = []
        parts: List[Tuple[str, float, int, int]] = []
        shipped_segments: List[str] = []
        for relation_name in job.input_relations():
            relation = database.get(relation_name)
            input_records = len(relation) if relation is not None else 0
            input_mb = relation.size_mb() if relation is not None else 0.0
            mappers = self.engine.mappers_for(input_mb)
            chunks = (
                relation.column_chunks(mappers)
                if relation is not None
                else [ColumnBlock.from_rows([])]
            )
            for chunk in chunks:
                payload = encode_block(chunk, self._segments, self.data_plane)
                segment = payload_segment(payload)
                if segment is not None:
                    shipped_segments.append(segment)
                tagged.append(
                    (len(parts), (job_blob, relation_name, payload, traced))
                )
            parts.append((relation_name, input_mb, input_records, mappers))

        try:
            results = self._run_waves(
                "map", _run_map_task, [t for _, t in tagged], wall
            )
        finally:
            # The wave is merged (or failed); the workers have materialised
            # their rows, so the parent-owned segments can be unlinked now.
            for segment in shipped_segments:
                self._segments.release(segment)

        groups: Dict[Key, List[object]] = defaultdict(list)
        key_bytes: Counter = Counter()
        part_bytes = [0] * len(parts)
        part_records = [0] * len(parts)
        # Merge in task order: chunks of the first relation first, then the
        # next relation's, exactly the order the serial engine processes them.
        for (part_index, _), (pairs, chunk_bytes, chunk_key_bytes) in zip(
            tagged, results
        ):
            part_bytes[part_index] += chunk_bytes
            part_records[part_index] += len(pairs)
            for key, value in pairs:
                groups[key].append(value)
            key_bytes.update(chunk_key_bytes)

        partition_metrics = [
            PartitionMetrics(
                relation=relation_name,
                input_mb=input_mb,
                input_records=input_records,
                intermediate_mb=part_bytes[index] / _MB,
                output_records=part_records[index],
                mappers=mappers,
            )
            for index, (relation_name, input_mb, input_records, mappers) in enumerate(
                parts
            )
        ]
        return groups, key_bytes, partition_metrics

    def _reduce_phase(
        self,
        job: MapReduceJob,
        job_blob: bytes,
        groups: Dict[Key, List[object]],
        reducers: int,
        wall: WallClockMetrics,
    ) -> Dict[str, Relation]:
        """Hash-partition the key groups over the reducers and reduce in parallel."""
        buckets: List[List[Tuple[Key, List[object]]]] = [
            [] for _ in range(max(1, reducers))
        ]
        for key in sorted(groups, key=tuple_sort_key):
            buckets[partition_index(key, len(buckets))].append((key, groups[key]))
        traced = obs.tracing_enabled()
        tasks: List[_ReduceTask] = [
            (job_blob, bucket, traced) for bucket in buckets if bucket
        ]

        outputs = prepare_output_relations(job)
        for facts in self._run_waves("reduce", _run_reduce_task, tasks, wall):
            for relation_name, row in facts:
                add_output_fact(job, outputs, relation_name, row)
        return outputs

    # -- programs -----------------------------------------------------------------

    def run_program(self, program: MRProgram, database: Database) -> ProgramResult:
        """Execute an MR program level by level, mirroring the serial engine."""
        program.validate()
        start = perf_counter()
        working = database.copy()
        all_outputs: Dict[str, Relation] = {}
        metrics = ProgramMetrics(backend=self.name)
        levels = program.levels()
        metrics.rounds = len(levels)

        with obs.span(
            "program",
            program=program.name,
            jobs=len(program),
            rounds=len(levels),
            backend=self.name,
        ):
            for level_index, level_jobs in enumerate(levels):
                with obs.span("level", index=level_index, jobs=len(level_jobs)):
                    level_map_tasks: List[float] = []
                    level_reduce_tasks: List[float] = []
                    level_results: List[JobResult] = []
                    for job in level_jobs:
                        result = self.run_job(job, working)
                        level_results.append(result)
                        metrics.add_job(result.metrics)
                        level_map_tasks.extend(result.metrics.map_task_durations)
                        level_reduce_tasks.extend(
                            result.metrics.reduce_task_durations
                        )
                    for result in level_results:
                        for name, relation in result.outputs.items():
                            working.add_relation(relation)
                            all_outputs[name] = relation
                    metrics.level_net_times.append(
                        self.engine.level_net_time(
                            level_map_tasks, level_reduce_tasks
                        )
                    )

        metrics.net_time = sum(metrics.level_net_times)
        metrics.wall_elapsed_s = perf_counter() - start
        return ProgramResult(
            program=program,
            outputs=all_outputs,
            metrics=metrics,
            database=working,
        )

    def __repr__(self) -> str:
        return f"ParallelBackend(workers={self.workers})"
