"""Deprecation plumbing for the legacy client entry points.

PR 9 redesigned the client surface around :func:`repro.connect`; the older
entry points (:class:`~repro.core.gumbo.Gumbo` and
:class:`~repro.service.service.QueryService` as *direct client APIs*) were
deprecated in their docstrings only.  This module turns that note into a
real, filterable :class:`DeprecationWarning` — emitted once per call site,
and only for *external* construction: the library builds ``Gumbo`` and
``QueryService`` internally on every ``connect()``, and those internal uses
must stay silent.
"""

from __future__ import annotations

import sys
import warnings


def _caller_module(depth: int) -> str:
    """The ``__name__`` of the frame *depth* levels above this one."""
    try:
        frame = sys._getframe(depth)
    except ValueError:  # pragma: no cover - shallower stack than expected
        return ""
    return frame.f_globals.get("__name__", "")


def warn_legacy_entry_point(
    name: str, replacement: str = "repro.connect()"
) -> None:
    """Emit a :class:`DeprecationWarning` for a legacy client entry point.

    Called from the deprecated constructor itself; the warning points at the
    *caller's* call site (``stacklevel=3``: this helper → the constructor →
    the caller).  Construction from inside the ``repro`` package — the
    client facade, the service tier, the fuzzer, the CLI — is exempt: the
    deprecation covers the *client API*, not the internal layering.
    """
    module = _caller_module(3)
    if module == "repro" or module.startswith("repro."):
        return
    warnings.warn(
        f"{name} is deprecated as a client entry point; use {replacement} "
        f"instead (it returns a unified Connection/Result API over every "
        f"backend)",
        DeprecationWarning,
        stacklevel=3,
    )
