"""Query fingerprinting: stable cache keys for the plan cache.

Two submissions should share a cached plan exactly when they would plan
identically, so the fingerprint combines

* the *canonical text* of the query — the exact ``unparse`` round-trip form,
  which normalises whitespace, parenthesisation and keyword case while
  preserving subquery order and variable names; and
* the *schema signature* of the database — relation names, arities and
  per-field byte widths, which is everything planning reads that survives a
  pure data refresh (statistics changes are handled by the service's explicit
  version-based invalidation, not by the fingerprint).
"""

from __future__ import annotations

import hashlib

from ..model.database import Database
from ..query.sgf import SGFQuery
from ..query.unparse import unparse_sgf


def canonical_text(query: SGFQuery) -> str:
    """The canonical (parse ↔ unparse stable) text of *query*."""
    return unparse_sgf(query)


def schema_signature(database: Database) -> str:
    """A stable signature of the database schema the planner sees."""
    parts = []
    for relation in database:
        parts.append(f"{relation.name}/{relation.arity}/{relation.bytes_per_field}")
    return ";".join(parts)


def query_fingerprint(query: SGFQuery, database: Database) -> str:
    """A stable hex digest identifying (canonical query, database schema)."""
    digest = hashlib.sha256()
    digest.update(canonical_text(query).encode("utf-8"))
    digest.update(b"\x00")
    digest.update(schema_signature(database).encode("utf-8"))
    return digest.hexdigest()
