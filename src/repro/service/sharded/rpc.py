"""Length-prefixed pickle RPC: the wire protocol of the sharded tier.

Every message travels as one *frame*: a 4-byte big-endian unsigned length
followed by that many bytes of pickle (``pickle.HIGHEST_PROTOCOL``).  The
framing is symmetric — the parent's ``asyncio`` side and the worker's
blocking side speak the same bytes — and deliberately minimal: the sharded
tier is a request/response protocol over a private ``socketpair`` per
worker, so no message ids, routing headers or negotiation are needed beyond
the per-task ``task_id`` the router uses to reassemble fan-out batches.

The message vocabulary (all plain picklable dataclasses):

========================  =========================================================
request                   worker behaviour
========================  =========================================================
:class:`LoadRelation`     replace the named relation's resident chunks → :class:`Ok`
:class:`MapTask`          map+combine one chunk (resident or inline) → :class:`TaskDone`
:class:`ReduceTask`       reduce one shuffle partition's key groups → :class:`TaskDone`
:class:`Ping`             liveness + shard id → :class:`Ok`
:class:`StatsRequest`     resident inventory and task counters → :class:`Ok`
:class:`Crash`            ``os._exit`` *without replying* (failure injection)
:class:`Shutdown`         reply :class:`Ok`, then exit the recv loop
========================  =========================================================

A worker that catches an exception replies :class:`Failure` (message +
formatted traceback); a worker that dies simply drops the connection, which
the cluster surfaces as :class:`WorkerDied` and handles by respawning the
shard and retrying the in-flight batch once.
"""

from __future__ import annotations

import pickle
import socket
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Frame header: payload length, 4-byte big-endian unsigned.
_HEADER = struct.Struct(">I")

#: Hard ceiling on one frame's payload (1 GiB) — a corrupted header must not
#: turn into an unbounded allocation.  The cap is *inclusive*: a payload of
#: exactly ``MAX_FRAME_BYTES`` is legal on both the encode and decode side;
#: one byte more raises :class:`FrameTooLargeError` (never a struct error).
MAX_FRAME_BYTES = 1 << 30


class RPCError(RuntimeError):
    """Base class for sharded-tier transport errors."""


class FrameTooLargeError(RPCError):
    """A frame exceeded :data:`MAX_FRAME_BYTES` (corrupt stream or huge payload)."""


class WorkerDied(RPCError):
    """The worker's connection dropped mid-conversation (process death)."""

    def __init__(self, shard: int, detail: str = "connection lost") -> None:
        super().__init__(f"shard {shard} worker died: {detail}")
        self.shard = shard


# -- messages ----------------------------------------------------------------------


@dataclass(frozen=True)
class LoadRelation:
    """Install (or replace) one relation's resident chunks on a worker.

    ``chunks`` maps *global* chunk index → data-plane payload (a packed
    :class:`~repro.model.relation.ColumnBlock` tuple on the pickle plane, a
    tiny :class:`~repro.exec.shm.ShmPayload` segment descriptor on the shm
    plane); only the chunks the receiving shard owns are included.
    ``version`` is the cluster's ship counter for the relation — map tasks
    name the version they expect, so a stale worker answers with a
    :class:`Failure` instead of stale data.
    """

    name: str
    version: int
    chunks: Dict[int, object]


@dataclass(frozen=True)
class MapTask:
    """One map chunk of one job: map, combine and size its rows.

    ``payload`` is ``None`` for resident chunks (the worker reads its warm
    block) and a data-plane payload (packed column block or shm segment
    descriptor, see :func:`repro.exec.shm.decode_payload`) for inline
    shipment (intermediate relations that only exist inside one program
    run).
    """

    task_id: int
    job_blob: bytes
    relation: str
    chunk_index: int
    version: int = 0
    payload: object = None
    traced: bool = False


@dataclass(frozen=True)
class ReduceTask:
    """One shuffle partition: reduce every key group, in order."""

    task_id: int
    job_blob: bytes
    items: List[Tuple[object, List[object]]]
    traced: bool = False


@dataclass(frozen=True)
class Ping:
    """Liveness probe."""


@dataclass(frozen=True)
class StatsRequest:
    """Ask the worker for its resident inventory and task counters."""


@dataclass(frozen=True)
class Crash:
    """Kill the worker process *without* a reply (failure-injection hook)."""


@dataclass(frozen=True)
class Shutdown:
    """Acknowledge with :class:`Ok` and leave the recv loop."""


# -- responses ---------------------------------------------------------------------


@dataclass(frozen=True)
class TaskDone:
    """A finished map/reduce task: its result plus an optional span payload."""

    task_id: int
    result: object
    span: Optional[dict] = None


@dataclass(frozen=True)
class Ok:
    """Generic acknowledgement; ``info`` carries ping/stats payloads."""

    info: object = None


@dataclass(frozen=True)
class Failure:
    """A worker-side exception, shipped back instead of a result."""

    message: str
    traceback: str = ""
    task_id: Optional[int] = None


@dataclass
class WorkerStats:
    """The payload of a ``StatsRequest`` reply."""

    shard: int
    pid: int
    #: relation name -> (version, sorted resident chunk indices).
    resident: Dict[str, Tuple[int, List[int]]] = field(default_factory=dict)
    map_tasks: int = 0
    reduce_tasks: int = 0
    requests: int = 0


# -- framing -----------------------------------------------------------------------


def encode_frame(message: object) -> bytes:
    """One wire frame: 4-byte length header + pickled message."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameTooLargeError(
            f"frame of {len(payload)} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    return _HEADER.pack(len(payload)) + payload


def decode_frame(payload: bytes) -> object:
    """The message inside one frame's payload bytes."""
    return pickle.loads(payload)


def send_frame(sock: socket.socket, message: object) -> None:
    """Blocking send of one framed message (worker side)."""
    sock.sendall(encode_frame(message))


def recv_exact(sock: socket.socket, count: int) -> bytes:
    """Read exactly *count* bytes, raising ``ConnectionError`` on EOF."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> object:
    """Blocking receive of one framed message (worker side)."""
    (length,) = _HEADER.unpack(recv_exact(sock, _HEADER.size))
    if length > MAX_FRAME_BYTES:
        raise FrameTooLargeError(
            f"incoming frame claims {length} bytes (cap {MAX_FRAME_BYTES})"
        )
    return decode_frame(recv_exact(sock, length))


async def read_frame_async(reader) -> object:
    """One framed message from an ``asyncio.StreamReader`` (parent side)."""
    header = await reader.readexactly(_HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameTooLargeError(
            f"incoming frame claims {length} bytes (cap {MAX_FRAME_BYTES})"
        )
    return decode_frame(await reader.readexactly(length))
