"""The asyncio front-end: admission control over the sharded service tier.

:class:`ShardedService` wraps a :class:`~repro.service.service.QueryService`
(running on the :class:`~repro.service.sharded.backend.ShardedBackend`) with
the serving discipline a persistent tier needs under open-loop load:

* **bounded admission** — at most ``max_concurrency`` requests execute at
  once and at most ``max_queue`` more may wait; a request arriving beyond
  that is *shed* immediately with the typed
  :class:`ServiceOverloadedError`, so overload degrades into fast failures
  instead of unbounded queueing;
* **per-request timeout** — ``request_timeout_s`` bounds each admitted
  request's wall time; expiry raises :class:`RequestTimeoutError` (the
  underlying worker thread is not interrupted — the timeout bounds the
  *caller's* wait, as in any thread-offloading asyncio service);
* **observability** — queue depth (gauge), shed and timeout counts
  (counters) and request latency (histogram) land in the wrapped service's
  per-service metrics registry, next to its cache and failure counters.

The front-end is deliberately thin: queries still flow through the query
service's plan cache, materializations and failure accounting, and the
sharded backend's worker supervision (respawn + retry) is invisible here —
a killed worker mid-request surfaces as a slightly slower success.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter
from typing import Dict, Optional

from ...core.options import GumboOptions
from ...core.strategies import AUTO
from ...mapreduce.engine import MapReduceEngine
from ...model.database import Database
from ..service import QueryService, ServiceResult
from .backend import ShardedBackend


class ShardedServiceError(RuntimeError):
    """Base class for sharded front-end serving errors."""


class ServiceOverloadedError(ShardedServiceError):
    """The request was shed: concurrency and queue limits are both full."""

    def __init__(self, in_flight: int, limit: int) -> None:
        super().__init__(
            f"service overloaded: {in_flight} requests in flight "
            f"(admission limit {limit}); request shed"
        )
        self.in_flight = in_flight
        self.limit = limit


class RequestTimeoutError(ShardedServiceError):
    """An admitted request exceeded the per-request timeout."""

    def __init__(self, timeout_s: float) -> None:
        super().__init__(f"request exceeded the {timeout_s:.3f}s timeout")
        self.timeout_s = timeout_s


class ShardedService:
    """Admission-controlled async serving over a sharded query service.

    Parameters
    ----------
    service:
        The query service to front (normally running on a
        :class:`~repro.service.sharded.backend.ShardedBackend`; any backend
        works — admission control is backend-agnostic).  Owned (closed with
        the front-end) only when built by :meth:`create`.
    max_concurrency:
        Requests executing at once (each occupies one offload thread).
    max_queue:
        Admitted requests allowed to *wait* beyond the executing ones;
        arrivals past ``max_concurrency + max_queue`` are shed.
    request_timeout_s:
        Optional per-request wall-time bound for admitted requests.
    """

    def __init__(
        self,
        service: QueryService,
        *,
        max_concurrency: int = 8,
        max_queue: int = 64,
        request_timeout_s: Optional[float] = None,
    ) -> None:
        self.service = service
        self.max_concurrency = max(1, int(max_concurrency))
        self.max_queue = max(0, int(max_queue))
        self.request_timeout_s = request_timeout_s
        self._owns_service = False
        self._in_flight = 0
        self._semaphore = asyncio.Semaphore(self.max_concurrency)
        self._pool = ThreadPoolExecutor(
            max_workers=self.max_concurrency,
            thread_name_prefix="repro-sharded-frontend",
        )
        registry = service.metrics
        self._m_requests = registry.counter("repro_sharded_requests_total")
        self._m_shed = registry.counter("repro_sharded_shed_total")
        self._m_timeouts = registry.counter("repro_sharded_timeouts_total")
        self._m_queue_depth = registry.gauge("repro_sharded_queue_depth")
        self._m_request_seconds = registry.histogram(
            "repro_sharded_request_seconds"
        )

    @classmethod
    def create(
        cls,
        database: Database,
        *,
        shards: int = 2,
        engine: Optional[MapReduceEngine] = None,
        strategy: str = AUTO,
        plan_cache_size: int = 256,
        options: Optional[GumboOptions] = None,
        max_concurrency: int = 8,
        max_queue: int = 64,
        request_timeout_s: Optional[float] = None,
        data_plane: Optional[str] = None,
    ) -> "ShardedService":
        """Build the whole tier: sharded backend → query service → front-end.

        The returned front-end owns the stack; :meth:`close` shuts down the
        service, its Gumbo, and the shard cluster.  ``data_plane`` selects
        how chunks reach the shard workers (``None`` follows
        ``options.data_plane``, default ``"auto"``).
        """
        if data_plane is None and options is not None:
            data_plane = options.data_plane
        backend = ShardedBackend(engine=engine, shards=shards, data_plane=data_plane)
        service = QueryService(
            database,
            backend=backend,
            strategy=strategy,
            plan_cache_size=plan_cache_size,
            max_workers=max_concurrency,
            options=options,
        )
        frontend = cls(
            service,
            max_concurrency=max_concurrency,
            max_queue=max_queue,
            request_timeout_s=request_timeout_s,
        )
        frontend._owns_service = True
        return frontend

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Shut the offload pool down (and the owned service stack, if any)."""
        self._pool.shutdown(wait=True)
        if self._owns_service:
            self.service.close()

    def __enter__(self) -> "ShardedService":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False

    # -- admission-controlled serving --------------------------------------------

    @property
    def in_flight(self) -> int:
        """Requests currently admitted (executing or queued)."""
        return self._in_flight

    @property
    def admission_limit(self) -> int:
        """Admitted requests allowed at once (executing + queued)."""
        return self.max_concurrency + self.max_queue

    async def execute(self, query, strategy: Optional[str] = None) -> ServiceResult:
        """Serve one query under admission control.

        Raises
        ------
        ServiceOverloadedError
            When the admission limit is full (the request is shed without
            queueing).
        RequestTimeoutError
            When the admitted request exceeds ``request_timeout_s``.
        """
        self._m_requests.inc()
        if self._in_flight >= self.admission_limit:
            self._m_shed.inc()
            raise ServiceOverloadedError(self._in_flight, self.admission_limit)
        self._in_flight += 1
        self._m_queue_depth.set(self._in_flight)
        start = perf_counter()
        try:
            async with self._semaphore:
                loop = asyncio.get_running_loop()
                future = loop.run_in_executor(
                    self._pool, self.service.execute, query, strategy
                )
                if self.request_timeout_s is None:
                    result = await future
                else:
                    try:
                        result = await asyncio.wait_for(
                            future, self.request_timeout_s
                        )
                    except asyncio.TimeoutError:
                        self._m_timeouts.inc()
                        raise RequestTimeoutError(self.request_timeout_s) from None
            self._m_request_seconds.observe(perf_counter() - start)
            return result
        finally:
            self._in_flight -= 1
            self._m_queue_depth.set(self._in_flight)

    async def materialize(
        self, query, strategy: Optional[str] = None
    ) -> ServiceResult:
        """Materialize *query* on the offload pool (no admission gating —
        materialization is a warm-up step, not serving traffic)."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._pool, self.service.materialize, query, strategy
        )

    # -- introspection ------------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        """Front-end serving counters (shed/timeout/depth), JSON-ready."""
        return {
            "requests": self._m_requests.value,
            "shed": self._m_shed.value,
            "timeouts": self._m_timeouts.value,
            "queue_depth": self._m_queue_depth.value,
            "max_concurrency": self.max_concurrency,
            "max_queue": self.max_queue,
        }

    def __repr__(self) -> str:
        return (
            f"ShardedService(in_flight={self._in_flight}, "
            f"max_concurrency={self.max_concurrency}, "
            f"max_queue={self.max_queue}, "
            f"timeout={self.request_timeout_s})"
        )
