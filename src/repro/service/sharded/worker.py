"""The shard worker: a long-lived process owning one shard's warm state.

Each worker runs :func:`worker_main` — a blocking recv loop over the private
socket its parent handed it at spawn time.  Unlike the pool workers of the
parallel backend (which receive a packed chunk with *every* task), a shard
worker keeps the :class:`~repro.model.relation.ColumnBlock` chunks it owns
resident across requests: a :class:`~repro.service.sharded.rpc.LoadRelation`
installs them once, and subsequent map tasks name ``(relation, chunk_index,
version)`` instead of shipping rows.  Chunks arrive as data-plane payloads
(:func:`repro.exec.shm.decode_payload`): on the shm plane a worker *attaches*
the cluster's shared-memory segments instead of unpickling row bytes, and a
respawned worker's resident reload is therefore a re-attach, not a re-ship.
The blocks' memoised key tuples and
the per-blob job cache stay warm with them, which is the entire point of the
tier — repeated queries pay neither serialisation nor cache-warmup cost.

The map/combine/size arithmetic is line-for-line the arithmetic of the
parallel backend's ``_run_map_task`` / ``_run_reduce_task`` (and therefore
of the serial engine): the sharded tier changes *where* tasks run and what
stays warm, never what they compute — outputs and simulated metrics must
stay bit-identical to the serial reference.
"""

from __future__ import annotations

import os
import pickle
import socket
import traceback
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from ...exec.shm import decode_payload
from ...mapreduce.job import Key, MapReduceJob
from ...model.relation import ColumnBlock
from ...obs.trace import worker_payload
from .rpc import (
    Crash,
    Failure,
    LoadRelation,
    MapTask,
    Ok,
    Ping,
    ReduceTask,
    Shutdown,
    StatsRequest,
    TaskDone,
    WorkerStats,
    recv_frame,
    send_frame,
)


class _WorkerState:
    """Everything one shard worker keeps warm between requests."""

    def __init__(self, shard: int) -> None:
        self.shard = shard
        #: relation name -> (version, {global chunk index: resident block}).
        self.relations: Dict[str, Tuple[int, Dict[int, ColumnBlock]]] = {}
        #: Deserialised jobs keyed by their pickle blob (one decode per job
        #: run, not per task — same memo discipline as the parallel pool).
        self.jobs: Dict[bytes, MapReduceJob] = {}
        self.map_tasks = 0
        self.reduce_tasks = 0
        self.requests = 0

    def job_from_blob(self, blob: bytes) -> MapReduceJob:
        job = self.jobs.get(blob)
        if job is None:
            if len(self.jobs) >= 16:
                self.jobs.clear()
            job = pickle.loads(blob)
            self.jobs[blob] = job
        return job

    def chunk_for(self, task: MapTask) -> ColumnBlock:
        """The rows of one map task: inline payload or resident chunk."""
        if task.payload is not None:
            return decode_payload(task.payload)
        entry = self.relations.get(task.relation)
        if entry is None:
            raise LookupError(
                f"shard {self.shard} has no resident relation {task.relation!r}"
            )
        version, chunks = entry
        if version != task.version:
            raise LookupError(
                f"shard {self.shard} holds {task.relation!r} at version "
                f"{version}, task expects version {task.version}"
            )
        block = chunks.get(task.chunk_index)
        if block is None:
            raise LookupError(
                f"shard {self.shard} does not own chunk {task.chunk_index} "
                f"of {task.relation!r} (resident: {sorted(chunks)})"
            )
        return block

    def stats(self) -> WorkerStats:
        return WorkerStats(
            shard=self.shard,
            pid=os.getpid(),
            resident={
                name: (version, sorted(chunks))
                for name, (version, chunks) in sorted(self.relations.items())
            },
            map_tasks=self.map_tasks,
            reduce_tasks=self.reduce_tasks,
            requests=self.requests,
        )


def run_map_task(state: _WorkerState, task: MapTask) -> TaskDone:
    """Map, combine and size one chunk — the serial engine's exact recipe."""
    start_s = perf_counter() if task.traced else 0.0
    job = state.job_from_blob(task.job_blob)
    block = state.chunk_for(task)
    rows = block.rows()
    if task.payload is not None:
        block.release()  # transient chunk: detach its shm segment (if any)
    buffer: Dict[Key, List[object]] = {}
    for row in rows:
        for key, value in job.map(task.relation, row):
            buffer.setdefault(key, []).append(value)
    pairs: List[Tuple[Key, object]] = []
    intermediate_bytes = 0
    key_bytes: Dict[Key, int] = {}
    for key, values in buffer.items():
        if job.uses_combiner():
            values = job.combine(key, values)
        for value in values:
            pair_size = job.pair_bytes(key, value)
            intermediate_bytes += pair_size
            key_bytes[key] = key_bytes.get(key, 0) + pair_size
            pairs.append((key, value))
    state.map_tasks += 1
    span = (
        worker_payload(
            "map_task",
            start_s,
            perf_counter(),
            shard=state.shard,
            relation=task.relation,
            chunk=task.chunk_index,
            resident=task.payload is None,
            rows=len(rows),
            pairs=len(pairs),
        )
        if task.traced
        else None
    )
    return TaskDone(
        task_id=task.task_id,
        result=(pairs, intermediate_bytes, key_bytes),
        span=span,
    )


def run_reduce_task(state: _WorkerState, task: ReduceTask) -> TaskDone:
    """Reduce every key group of one shuffle partition, in shipped order."""
    start_s = perf_counter() if task.traced else 0.0
    job = state.job_from_blob(task.job_blob)
    facts: List[Tuple[str, Tuple[object, ...]]] = []
    for key, values in task.items:
        facts.extend(job.reduce(key, values))
    state.reduce_tasks += 1
    span = (
        worker_payload(
            "reduce_task",
            start_s,
            perf_counter(),
            shard=state.shard,
            groups=len(task.items),
            facts=len(facts),
        )
        if task.traced
        else None
    )
    return TaskDone(task_id=task.task_id, result=facts, span=span)


def _handle(state: _WorkerState, message: object) -> Optional[object]:
    """One request → one response (``None`` ends the loop after replying)."""
    if isinstance(message, MapTask):
        return run_map_task(state, message)
    if isinstance(message, ReduceTask):
        return run_reduce_task(state, message)
    if isinstance(message, LoadRelation):
        previous = state.relations.get(message.name)
        state.relations[message.name] = (
            message.version,
            {
                index: decode_payload(payload)
                for index, payload in message.chunks.items()
            },
        )
        if previous is not None:
            for block in previous[1].values():
                block.release()  # evicted version: drop its shm attachments
        return Ok(info=len(message.chunks))
    if isinstance(message, Ping):
        return Ok(info={"shard": state.shard, "pid": os.getpid()})
    if isinstance(message, StatsRequest):
        return Ok(info=state.stats())
    raise TypeError(f"shard worker got unknown message {type(message).__name__}")


def worker_main(shard: int, conn: socket.socket) -> None:
    """The worker process entry point: serve framed requests until told to stop.

    :class:`Crash` exits the process *without* replying — the parent's next
    read fails, exercising the death → respawn → retry path deterministically.
    Any other exception is caught and shipped back as a :class:`Failure`, so
    a bad task never kills the shard.
    """
    state = _WorkerState(shard)
    try:
        while True:
            try:
                message = recv_frame(conn)
            except (ConnectionError, OSError):
                break  # parent went away; nothing left to serve
            state.requests += 1
            if isinstance(message, Crash):
                os._exit(17)
            if isinstance(message, Shutdown):
                send_frame(conn, Ok())
                break
            task_id = getattr(message, "task_id", None)
            try:
                response = _handle(state, message)
            except Exception as exc:  # ship the failure, keep serving
                response = Failure(
                    message=f"{type(exc).__name__}: {exc}",
                    traceback=traceback.format_exc(),
                    task_id=task_id,
                )
            try:
                send_frame(conn, response)
            except (ConnectionError, OSError):
                break
    finally:
        for _, chunks in state.relations.values():
            for block in chunks.values():
                try:
                    block.release()
                except Exception:  # pragma: no cover - best-effort detach
                    pass
        state.relations.clear()
        conn.close()
