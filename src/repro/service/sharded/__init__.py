"""The sharded persistent service tier: warm worker shards behind RPC.

Layers, bottom up:

* :mod:`~repro.service.sharded.rpc` — length-prefixed pickle framing and the
  message vocabulary;
* :mod:`~repro.service.sharded.worker` — the long-lived worker process: a
  blocking recv loop over one shard's resident column blocks;
* :mod:`~repro.service.sharded.routing` — placement as a pure function of
  :func:`~repro.exec.partition.stable_hash` and the shard count;
* :mod:`~repro.service.sharded.cluster` — the asyncio supervisor: pipelined
  fan-out, death detection, respawn + shard reload + retry-once;
* :mod:`~repro.service.sharded.backend` — the ``"sharded"`` execution
  backend (bit-identical outputs and simulated metrics to the serial
  reference);
* :mod:`~repro.service.sharded.frontend` — the admission-controlled asyncio
  front-end with typed shed/timeout errors.

See ``docs/service.md`` for the tier architecture and failure semantics.
"""

from .backend import ShardedBackend
from .cluster import ShardCluster, ShardedExecutionError, WorkerCrashedError
from .frontend import (
    RequestTimeoutError,
    ServiceOverloadedError,
    ShardedService,
    ShardedServiceError,
)
from .routing import chunk_assignment, shard_for_bucket, shard_for_chunk
from .rpc import WorkerDied

__all__ = [
    "RequestTimeoutError",
    "ServiceOverloadedError",
    "ShardCluster",
    "ShardedBackend",
    "ShardedExecutionError",
    "ShardedService",
    "ShardedServiceError",
    "WorkerCrashedError",
    "WorkerDied",
    "chunk_assignment",
    "shard_for_bucket",
    "shard_for_chunk",
]
