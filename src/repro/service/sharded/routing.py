"""Shard placement: pure functions of ``stable_hash`` and the shard count.

The sharded tier places work at the granularity the execution semantics
already define — the map *chunk* (the serial engine's strided column
chunks) and the shuffle *partition* (the reduce-side hash buckets).  Both
placements reuse :func:`~repro.exec.partition.partition_index`, i.e. the
same CRC-32-of-``repr`` hash that partitions keys over reducers, so routing
is deterministic across processes, runs and ``PYTHONHASHSEED`` values:

* chunk ``i`` of relation ``R`` lives on ``shard_for_chunk("R", i, shards)``
  — every worker owns a hash-spread slice of every relation, so each map
  task runs wholly on the worker already holding its rows warm;
* reduce bucket ``b`` runs on ``shard_for_bucket(b, shards)``.

Because placement is a pure function, "rebalancing" on a shard-count change
is simply re-evaluating it: :func:`chunk_assignment` for the new count *is*
the new layout, and the cluster reloads workers to match.
"""

from __future__ import annotations

from typing import Dict, List

from ...exec.partition import partition_index


def shard_for_chunk(relation: str, chunk_index: int, shards: int) -> int:
    """The shard owning map chunk *chunk_index* of *relation*."""
    return partition_index((relation, chunk_index), shards)


def shard_for_bucket(bucket_index: int, shards: int) -> int:
    """The shard running reduce bucket *bucket_index*."""
    return partition_index(bucket_index, shards)


def chunk_assignment(
    relation: str, chunk_count: int, shards: int
) -> Dict[int, List[int]]:
    """shard → sorted chunk indices of *relation*, for *chunk_count* chunks."""
    assignment: Dict[int, List[int]] = {shard: [] for shard in range(shards)}
    for index in range(chunk_count):
        assignment[shard_for_chunk(relation, index, shards)].append(index)
    return assignment
