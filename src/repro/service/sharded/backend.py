"""The ``"sharded"`` execution backend: persistent workers, warm shards.

:class:`ShardedBackend` plugs the shard cluster into the execution-backend
seam.  Where the parallel backend ships every map chunk to a stateless pool
worker on every run, this backend *places* chunks: chunk ``i`` of relation
``R`` permanently belongs to shard ``shard_for_chunk("R", i, shards)``
(a pure function of :func:`~repro.exec.partition.stable_hash`), the owning
worker keeps the chunk's :class:`~repro.model.relation.ColumnBlock` resident
across requests, and a map task names ``(relation, chunk, version)`` instead
of carrying rows.  Reduce buckets are placed the same way by bucket index.

Bit-identical parity with the serial reference is inherited, not re-proven:
the chunk boundaries are the serial engine's own strided chunks, the
map/combine/byte arithmetic on the worker is the parallel backend's task
arithmetic, results merge in task order, the shuffle sorts and partitions
with the shared helpers, and all simulated metrics funnel through
:meth:`~repro.mapreduce.engine.MapReduceEngine.finalise_job_metrics`.  Only
wall-clock metrics (and which process computed what) differ.

Warm-shard detection is copy-on-write identity: a relation's cached column
block survives :meth:`Database.copy`, so ``resident token is
relation.columns()`` means "these exact rows are already on the workers" —
repeated service requests over one database ship nothing, while any
mutation changes the block and forces a re-ship.  Relations that exist only
*inside* one program run (intermediates of later levels) are shipped inline
with their tasks and never become resident.

Both resident loads and inline payloads travel over the configured *data
plane* (:mod:`repro.exec.shm`): on the shm plane the RPC frames carry tiny
segment descriptors instead of pickled rows, and a respawned worker's
resident reload re-attaches the cluster-owned segments instead of
re-shipping them.
"""

from __future__ import annotations

import pickle
from collections import Counter, defaultdict
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from ...exec.base import SHARDED, ExecutionBackend
from ...exec.partition import partition_index
from ...exec.shm import (
    SegmentPool,
    encode_block,
    normalise_data_plane,
    payload_segment,
)
from ...mapreduce.counters import PartitionMetrics, ProgramMetrics, WallClockMetrics
from ...mapreduce.engine import (
    JobResult,
    MapReduceEngine,
    ProgramResult,
    add_output_fact,
    prepare_output_relations,
)
from ...mapreduce.job import Key, MapReduceJob
from ...mapreduce.kernels import use_kernel
from ...mapreduce.program import MRProgram
from ...model.database import Database
from ...model.relation import Relation, tuple_sort_key
from ...obs import metrics as obs_metrics
from ... import obs
from .cluster import ShardCluster
from .routing import shard_for_bucket, shard_for_chunk
from .rpc import MapTask, ReduceTask, TaskDone

_MB = 1024.0 * 1024.0

#: Jobs run through the sharded fan-out (kernel-path jobs are counted by the
#: engine as ``path="kernel"``, like on the parallel backend).
_JOBS_SHARDED = obs_metrics.default_registry().counter(
    "repro_jobs_total", path="sharded"
)


class ShardedBackend(ExecutionBackend):
    """Execute MR jobs on a persistent, hash-sharded worker cluster.

    Parameters
    ----------
    engine:
        The engine supplying cluster config, constants and the simulated
        metric accounting (paper-cluster default when omitted).
    shards:
        Number of long-lived worker processes (default 2).  Unlike the
        parallel pool this is a *placement* parameter: outputs and simulated
        metrics are identical for every value, but which worker holds which
        chunk — and therefore what stays warm — follows from it.
    start_method:
        ``multiprocessing`` start method (platform default when omitted).
    cluster:
        An existing :class:`ShardCluster` to drive (it is then *not* owned:
        :meth:`close` leaves it running).  Mutually exclusive sizing with
        *shards*.
    data_plane:
        How chunk payloads cross the RPC boundary (``"shm"``/``"pickle"``/
        ``"auto"``, see :mod:`repro.exec.shm`).  With an external *cluster*
        the cluster's plane governs; passing a conflicting value raises.
    """

    name = SHARDED

    def __init__(
        self,
        engine: Optional[MapReduceEngine] = None,
        shards: Optional[int] = None,
        start_method: Optional[str] = None,
        cluster: Optional[ShardCluster] = None,
        data_plane: Optional[str] = None,
    ) -> None:
        self.engine = engine or MapReduceEngine()
        if cluster is not None:
            if shards is not None and shards != cluster.shards:
                raise ValueError(
                    f"cluster has {cluster.shards} shards, shards={shards} given"
                )
            if (
                data_plane is not None
                and normalise_data_plane(data_plane) != cluster.data_plane
            ):
                raise ValueError(
                    f"cluster uses the {cluster.data_plane!r} data plane, "
                    f"data_plane={data_plane!r} given"
                )
            self._cluster = cluster
            self._owns_cluster = False
        else:
            self._cluster = ShardCluster(
                shards if shards is not None else 2,
                start_method=start_method,
                data_plane=normalise_data_plane(data_plane),
            )
            self._owns_cluster = True
        self.shards = self._cluster.shards
        self.data_plane = self._cluster.data_plane
        #: Shipping pool for *inline* task payloads (program intermediates);
        #: resident chunks live in the cluster's own pool.
        self._segments = SegmentPool()

    @property
    def cluster(self) -> ShardCluster:
        """The worker cluster (exposed for supervision and tests)."""
        return self._cluster

    def close(self) -> None:
        """Shut the owned cluster down (idempotent; a later run restarts it)."""
        if self._owns_cluster:
            self._cluster.close()
        self._segments.close_all()

    # -- shard loading ------------------------------------------------------------

    def ensure_loaded(self, database: Database) -> int:
        """Make every non-empty relation of *database* resident on its shards.

        Relations whose column block is already resident (identity check,
        safe across copy-on-write copies) cost nothing; changed or new ones
        are re-chunked with the engine's own mapper arithmetic and shipped.
        Returns the number of relations (re-)shipped.
        """
        shipped = 0
        for relation in database:
            if len(relation) == 0:
                continue  # empty chunks are synthesised locally, no shipping
            block = relation.columns()
            if self._cluster.resident_info(relation.name, block) is not None:
                continue
            mappers = self.engine.mappers_for(relation.size_mb())
            chunks = relation.column_chunks(mappers)
            self._cluster.load_relation(relation.name, chunks, token=block)
            shipped += 1
        return shipped

    # -- single job ---------------------------------------------------------------

    def run_job(self, job: MapReduceJob, database: Database) -> JobResult:
        """Execute one MapReduce job across the shard workers.

        ``kernel_mode="on"`` jobs run through the engine's in-process batch
        kernel, exactly as on the parallel backend — outputs and simulated
        metrics are identical either way.
        """
        if use_kernel(job, fanout=True):
            start = perf_counter()
            result = self.engine.run_job_kernel(job, database)
            result.metrics.wall = WallClockMetrics(
                backend=self.name,
                workers=self.shards,
                elapsed_s=perf_counter() - start,
            )
            return result
        _JOBS_SHARDED.inc()
        with obs.span(
            "job", job_id=job.job_id, kind=type(job).__name__, path="sharded"
        ) as job_span:
            start = perf_counter()
            wall = WallClockMetrics(backend=self.name, workers=self.shards)
            job_blob = pickle.dumps(job, protocol=pickle.HIGHEST_PROTOCOL)
            groups, key_bytes, partition_metrics = self._map_phase(
                job, job_blob, database, wall
            )
            input_mb = sum(p.input_mb for p in partition_metrics)
            intermediate_mb = sum(p.intermediate_mb for p in partition_metrics)
            reducers = self.engine.reducers_for(job, input_mb, intermediate_mb)
            outputs = self._reduce_phase(job, job_blob, groups, reducers, wall)
            metrics = self.engine.finalise_job_metrics(
                job, partition_metrics, key_bytes, outputs
            )
            wall.elapsed_s = perf_counter() - start
            metrics.wall = wall
            job_span.set(reducers=reducers, shards=self.shards)
            return JobResult(job_id=job.job_id, outputs=outputs, metrics=metrics)

    def _dispatch(
        self, phase: str, tasks: List[Tuple[int, object]], wall: WallClockMetrics
    ) -> List[TaskDone]:
        """Fan one phase's tasks out to their shards and adopt worker spans."""
        if not tasks:
            return []
        tracer = obs.current_tracer()
        begin = perf_counter()
        with obs.span(
            "shard_fanout", phase=phase, tasks=len(tasks), shards=self.shards
        ) as fanout_span:
            responses = self._cluster.run_tasks(tasks)
            if tracer is not None:
                for response in responses:
                    if response.span is not None:
                        tracer.adopt_payload(response.span, fanout_span.span_id)
        wall.record_wave(phase, len(tasks), perf_counter() - begin)
        return responses

    def _map_phase(
        self,
        job: MapReduceJob,
        job_blob: bytes,
        database: Database,
        wall: WallClockMetrics,
    ):
        """Fan the job's map chunks out to their owning shards, merge the shuffle.

        Chunk boundaries, task order and the merge order are exactly the
        parallel backend's; the only difference is that resident chunks
        travel as ``(relation, chunk, version)`` references.  Empty chunks
        (missing or empty input relations) produce no pairs by definition and
        are synthesised locally instead of crossing the wire.
        """
        traced = obs.tracing_enabled()
        parts: List[Tuple[str, float, int, int]] = []
        tasks: List[Tuple[int, object]] = []
        inline_segments: List[str] = []
        #: task_id -> part index, for remote tasks; local empties are merged
        #: directly (they contribute nothing, but keep the accounting exact).
        task_parts: Dict[int, int] = {}
        task_id = 0
        for relation_name in job.input_relations():
            relation = database.get(relation_name)
            input_records = len(relation) if relation is not None else 0
            input_mb = relation.size_mb() if relation is not None else 0.0
            mappers = self.engine.mappers_for(input_mb)
            part_index = len(parts)
            resident = (
                self._cluster.resident_info(relation_name, relation.columns())
                if relation is not None and input_records
                else None
            )
            if resident is not None:
                version, chunk_count = resident
                for index in range(chunk_count):
                    task_parts[task_id] = part_index
                    tasks.append(
                        (
                            shard_for_chunk(relation_name, index, self.shards),
                            MapTask(
                                task_id=task_id,
                                job_blob=job_blob,
                                relation=relation_name,
                                chunk_index=index,
                                version=version,
                                traced=traced,
                            ),
                        )
                    )
                    task_id += 1
            elif input_records:
                chunks = relation.column_chunks(mappers)
                for index, chunk in enumerate(chunks):
                    task_parts[task_id] = part_index
                    payload = encode_block(chunk, self._segments, self.data_plane)
                    segment = payload_segment(payload)
                    if segment is not None:
                        inline_segments.append(segment)
                    tasks.append(
                        (
                            shard_for_chunk(relation_name, index, self.shards),
                            MapTask(
                                task_id=task_id,
                                job_blob=job_blob,
                                relation=relation_name,
                                chunk_index=index,
                                payload=payload,
                                traced=traced,
                            ),
                        )
                    )
                    task_id += 1
            # Missing or empty relation: the serial engine still accounts one
            # mapper over zero rows; zero rows emit zero pairs, so the single
            # empty chunk needs no task at all.
            parts.append((relation_name, input_mb, input_records, mappers))

        try:
            # run_tasks handles the death → respawn → retry-once contract
            # internally, so segments may be freed as soon as it returns.
            responses = self._dispatch("map", tasks, wall)
        finally:
            for segment in inline_segments:
                self._segments.release(segment)

        groups: Dict[Key, List[object]] = defaultdict(list)
        key_bytes: Counter = Counter()
        part_bytes = [0] * len(parts)
        part_records = [0] * len(parts)
        # Merge in task order: chunks of the first relation first, then the
        # next relation's, exactly the order the serial engine processes them
        # (run_tasks returns responses sorted by task_id).
        for response in responses:
            pairs, chunk_bytes, chunk_key_bytes = response.result
            part_index = task_parts[response.task_id]
            part_bytes[part_index] += chunk_bytes
            part_records[part_index] += len(pairs)
            for key, value in pairs:
                groups[key].append(value)
            key_bytes.update(chunk_key_bytes)

        partition_metrics = [
            PartitionMetrics(
                relation=relation_name,
                input_mb=input_mb,
                input_records=input_records,
                intermediate_mb=part_bytes[index] / _MB,
                output_records=part_records[index],
                mappers=mappers,
            )
            for index, (relation_name, input_mb, input_records, mappers) in enumerate(
                parts
            )
        ]
        return groups, key_bytes, partition_metrics

    def _reduce_phase(
        self,
        job: MapReduceJob,
        job_blob: bytes,
        groups: Dict[Key, List[object]],
        reducers: int,
        wall: WallClockMetrics,
    ) -> Dict[str, Relation]:
        """Hash-partition the key groups and reduce each bucket on its shard."""
        buckets: List[List[Tuple[Key, List[object]]]] = [
            [] for _ in range(max(1, reducers))
        ]
        for key in sorted(groups, key=tuple_sort_key):
            buckets[partition_index(key, len(buckets))].append((key, groups[key]))
        traced = obs.tracing_enabled()
        tasks: List[Tuple[int, object]] = [
            (
                shard_for_bucket(bucket_index, self.shards),
                ReduceTask(
                    task_id=task_id,
                    job_blob=job_blob,
                    items=bucket,
                    traced=traced,
                ),
            )
            for task_id, (bucket_index, bucket) in enumerate(
                (index, bucket)
                for index, bucket in enumerate(buckets)
                if bucket
            )
        ]

        outputs = prepare_output_relations(job)
        for response in self._dispatch("reduce", tasks, wall):
            for relation_name, row in response.result:
                add_output_fact(job, outputs, relation_name, row)
        return outputs

    # -- programs -----------------------------------------------------------------

    def run_program(self, program: MRProgram, database: Database) -> ProgramResult:
        """Execute an MR program level by level, mirroring the serial engine.

        The base database is made resident up front (free when the workers
        are already warm from a previous request over the same data);
        intermediates produced between levels ship inline with their tasks.
        """
        program.validate()
        start = perf_counter()
        shipped = self.ensure_loaded(database)
        working = database.copy()
        all_outputs: Dict[str, Relation] = {}
        metrics = ProgramMetrics(backend=self.name)
        levels = program.levels()
        metrics.rounds = len(levels)

        with obs.span(
            "program",
            program=program.name,
            jobs=len(program),
            rounds=len(levels),
            backend=self.name,
            shards=self.shards,
            shipped_relations=shipped,
        ):
            for level_index, level_jobs in enumerate(levels):
                with obs.span("level", index=level_index, jobs=len(level_jobs)):
                    level_map_tasks: List[float] = []
                    level_reduce_tasks: List[float] = []
                    level_results: List[JobResult] = []
                    for job in level_jobs:
                        result = self.run_job(job, working)
                        level_results.append(result)
                        metrics.add_job(result.metrics)
                        level_map_tasks.extend(result.metrics.map_task_durations)
                        level_reduce_tasks.extend(
                            result.metrics.reduce_task_durations
                        )
                    for result in level_results:
                        for name, relation in result.outputs.items():
                            working.add_relation(relation)
                            all_outputs[name] = relation
                    metrics.level_net_times.append(
                        self.engine.level_net_time(
                            level_map_tasks, level_reduce_tasks
                        )
                    )

        metrics.net_time = sum(metrics.level_net_times)
        metrics.wall_elapsed_s = perf_counter() - start
        return ProgramResult(
            program=program,
            outputs=all_outputs,
            metrics=metrics,
            database=working,
        )

    def __repr__(self) -> str:
        return f"ShardedBackend(shards={self.shards})"
