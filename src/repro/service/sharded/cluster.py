"""The shard cluster: long-lived workers, supervised over asyncio RPC.

:class:`ShardCluster` owns ``shards`` worker processes, each running
:func:`~repro.service.sharded.worker.worker_main` over a private
``socketpair``.  The parent side lives on a dedicated ``asyncio`` event loop
in a background thread: synchronous callers (the execution backend, the
query service's thread pool) submit coroutines with
``run_coroutine_threadsafe``, while the asyncio front-end can await the same
coroutines natively.  Per-worker channels are strictly request/response, but
a batch of tasks for one shard is *pipelined* — all frames written, then all
responses read — and batches for different shards run concurrently, so a
fan-out costs one round trip, not one per task.

Failure semantics (the tier's graceful-degradation contract):

* a dropped connection is a dead worker: the cluster respawns the shard,
  reloads every resident chunk it owns, and retries the in-flight batch
  **once** — map/reduce tasks are pure given the resident state, so the
  retry is safe and the caller never sees the death;
* a second death on the retry raises :class:`WorkerCrashedError`;
* a worker-side exception (shipped back as a ``Failure`` frame) raises
  :class:`ShardedExecutionError` immediately — deterministic errors are
  findings, not flakes, and must not be retried into silence.

:meth:`inject_crash` arms a failure injection: the next batch sent to the
shard is prefixed with a ``Crash`` frame, so the worker dies *after* the
tasks are on the wire — mid-request, deterministically — which is exactly
the scenario the respawn/retry path exists for.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import socket
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ...exec.shm import (
    SegmentPool,
    encode_block,
    normalise_data_plane,
    payload_segment,
)
from ...model.relation import ColumnBlock
from .routing import shard_for_chunk
from .rpc import (
    Crash,
    Failure,
    LoadRelation,
    Ok,
    Ping,
    Shutdown,
    StatsRequest,
    WorkerDied,
    WorkerStats,
    encode_frame,
    read_frame_async,
)
from .worker import worker_main

multiprocessing.allow_connection_pickling()


class ShardedExecutionError(RuntimeError):
    """A shard worker reported an error while executing a task."""


class WorkerCrashedError(ShardedExecutionError):
    """A shard worker died and its respawned replacement died too."""


@dataclass
class _Worker:
    """One live worker process and its parent-side channel."""

    shard: int
    generation: int
    process: multiprocessing.Process
    reader: asyncio.StreamReader
    writer: asyncio.StreamWriter
    #: Serialises use of the channel; batches pipeline *inside* one holder.
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)


@dataclass
class _Resident:
    """The cluster's authoritative copy of one shipped relation."""

    version: int
    #: Identity token of the source relation's full column block — a COW
    #: copy shares the block, so identity means "rows unchanged".
    token: object
    chunks: List[ColumnBlock]
    #: Per-chunk data-plane payloads, encoded once at load time.  On the shm
    #: plane these are tiny segment descriptors, so a respawned worker's
    #: resident reload *re-attaches* instead of re-shipping the rows.
    payloads: List[object] = field(default_factory=list)
    #: Names of the shm segments backing ``payloads`` (owned by the cluster
    #: until this version is replaced or the cluster closes).
    segments: List[str] = field(default_factory=list)


class ShardCluster:
    """Spawn, feed, supervise and respawn the shard workers.

    Parameters
    ----------
    shards:
        Number of worker processes (each owns one shard).
    start_method:
        ``multiprocessing`` start method (platform default when omitted).
    data_plane:
        How chunk payloads cross the RPC boundary (``"shm"``/``"pickle"``/
        ``"auto"``, see :mod:`repro.exec.shm`).  On the shm plane resident
        chunks are placed into shared memory once at load time; workers
        attach, and a respawned worker's resident reload re-attaches
        instead of re-shipping the rows.
    """

    def __init__(
        self,
        shards: int,
        start_method: Optional[str] = None,
        data_plane: str = "auto",
    ) -> None:
        self.shards = max(1, int(shards))
        self.data_plane = normalise_data_plane(data_plane)
        self._segments = SegmentPool()
        self._context = (
            multiprocessing.get_context(start_method)
            if start_method
            else multiprocessing.get_context()
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._workers: List[Optional[_Worker]] = [None] * self.shards
        self._resident: Dict[str, _Resident] = {}
        self._crash_armed = [False] * self.shards
        self._respawns = 0
        self._retries = 0
        self._start_lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------------

    @property
    def started(self) -> bool:
        return self._loop is not None

    @property
    def respawns(self) -> int:
        """How many workers have been respawned after a death."""
        return self._respawns

    @property
    def retries(self) -> int:
        """How many in-flight batches were retried after a worker death."""
        return self._retries

    def start(self) -> None:
        """Spawn the workers and the supervisor loop (idempotent)."""
        with self._start_lock:
            if self._loop is not None:
                return
            loop = asyncio.new_event_loop()
            thread = threading.Thread(
                target=loop.run_forever, name="repro-shard-cluster", daemon=True
            )
            thread.start()
            self._loop, self._thread = loop, thread
            self._call(self._spawn_all())

    def close(self) -> None:
        """Shut every worker down and stop the loop (a later use restarts)."""
        with self._start_lock:
            if self._loop is None:
                return
            loop, thread = self._loop, self._thread
            try:
                asyncio.run_coroutine_threadsafe(
                    self._shutdown_all(), loop
                ).result(timeout=10)
            except Exception:
                pass  # workers are daemonic; the hard path below still runs
            for slot, worker in enumerate(self._workers):
                if worker is not None and worker.process.is_alive():
                    worker.process.terminate()
                    worker.process.join(timeout=5)
                self._workers[slot] = None
            loop.call_soon_threadsafe(loop.stop)
            if thread is not None:
                thread.join(timeout=5)
            loop.close()
            self._loop = self._thread = None
            for resident in self._resident.values():
                self._free_segments(resident)
            self._resident.clear()
            self._segments.close_all()
            self._crash_armed = [False] * self.shards

    def __enter__(self) -> "ShardCluster":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False

    def _call(self, coroutine):
        """Run *coroutine* on the supervisor loop from a synchronous caller."""
        assert self._loop is not None, "cluster not started"
        return asyncio.run_coroutine_threadsafe(coroutine, self._loop).result()

    # -- spawning ----------------------------------------------------------------

    async def _spawn_all(self) -> None:
        for shard in range(self.shards):
            if self._workers[shard] is None:
                self._workers[shard] = await self._spawn(shard, generation=0)

    async def _spawn(self, shard: int, generation: int) -> _Worker:
        parent_sock, child_sock = socket.socketpair()
        process = self._context.Process(
            target=worker_main,
            args=(shard, child_sock),
            name=f"repro-shard-{shard}",
            daemon=True,
        )
        process.start()
        child_sock.close()
        reader, writer = await asyncio.open_connection(sock=parent_sock)
        return _Worker(
            shard=shard,
            generation=generation,
            process=process,
            reader=reader,
            writer=writer,
        )

    async def _respawn(self, dead: _Worker) -> _Worker:
        """Replace a dead worker and reload the resident chunks it owns."""
        current = self._workers[dead.shard]
        if current is not None and current.generation > dead.generation:
            return current  # someone else already respawned this shard
        if current is not None:
            try:
                current.writer.close()
            except Exception:
                pass
            if current.process.is_alive():
                current.process.terminate()
            current.process.join(timeout=5)
        worker = await self._spawn(dead.shard, generation=dead.generation + 1)
        self._workers[dead.shard] = worker
        self._respawns += 1
        reloads = [
            message
            for name, resident in self._resident.items()
            if (message := self._load_message(name, resident, worker.shard))
            is not None
        ]
        if reloads:
            await self._request_many(worker, reloads)
        return worker

    def _load_message(
        self, name: str, resident: _Resident, shard: int
    ) -> Optional[LoadRelation]:
        chunks = {
            index: resident.payloads[index]
            for index in range(len(resident.chunks))
            if shard_for_chunk(name, index, self.shards) == shard
        }
        if not chunks:
            return None
        return LoadRelation(name=name, version=resident.version, chunks=chunks)

    # -- channel -----------------------------------------------------------------

    async def _request_many(
        self, worker: _Worker, messages: Sequence[object]
    ) -> List[object]:
        """Pipeline *messages* to one worker and read one reply per message.

        ``Crash`` messages expect no reply (the worker exits instead); they
        only appear when a crash injection is armed, and the dropped
        connection they cause surfaces as :class:`WorkerDied`.
        """
        expected = sum(1 for message in messages if not isinstance(message, Crash))
        async with worker.lock:
            try:
                for message in messages:
                    worker.writer.write(encode_frame(message))
                responses = []
                for _ in range(expected):
                    responses.append(await read_frame_async(worker.reader))
                return responses
            except (
                ConnectionError,
                asyncio.IncompleteReadError,
                BrokenPipeError,
                OSError,
            ) as exc:
                raise WorkerDied(worker.shard, f"{type(exc).__name__}: {exc}") from exc

    async def _run_shard_batch(
        self, shard: int, messages: List[object]
    ) -> List[object]:
        """One shard's batch, with the death → respawn → retry-once contract."""
        worker = self._workers[shard]
        assert worker is not None, "cluster not started"
        if self._crash_armed[shard]:
            self._crash_armed[shard] = False
            messages = [Crash(), *messages]
        try:
            return await self._request_many(worker, messages)
        except WorkerDied:
            replacement = await self._respawn(worker)
            self._retries += 1
            retried = [m for m in messages if not isinstance(m, Crash)]
            try:
                return await self._request_many(replacement, retried)
            except WorkerDied as exc:
                raise WorkerCrashedError(
                    f"shard {shard} worker died again on the retried batch "
                    f"({len(retried)} message(s)): {exc}"
                ) from exc

    # -- resident data -----------------------------------------------------------

    def resident_info(self, name: str, token: object) -> Optional[Tuple[int, int]]:
        """``(version, chunk count)`` when *name* is resident at *token*.

        The token is the relation's full column block; copy-on-write copies
        share it, so identity equality is an exact "rows unchanged" test.
        """
        resident = self._resident.get(name)
        if resident is None or resident.token is not token:
            return None
        return resident.version, len(resident.chunks)

    def load_relation(
        self, name: str, chunks: Sequence[ColumnBlock], token: object
    ) -> None:
        """Ship one relation's chunks to their owning shards (replacing any
        previous version) and record it as resident."""
        self.start()
        previous = self._resident.get(name)
        resident = _Resident(
            version=(previous.version + 1) if previous else 1,
            token=token,
            chunks=list(chunks),
        )
        for block in resident.chunks:
            payload = encode_block(block, self._segments, self.data_plane)
            resident.payloads.append(payload)
            segment = payload_segment(payload)
            if segment is not None:
                resident.segments.append(segment)
        self._resident[name] = resident
        if previous is not None:
            self._free_segments(previous)
        batches = []
        for shard in range(self.shards):
            message = self._load_message(name, resident, shard)
            if message is not None:
                batches.append((shard, [message]))
        if batches:
            self._call(self._gather(batches))

    def _free_segments(self, resident: _Resident) -> None:
        """Release the shm segments backing one resident version."""
        segments, resident.segments = resident.segments, []
        for segment in segments:
            self._segments.release(segment)

    def drop_relations(self) -> None:
        """Forget all resident relations (the next run re-ships them)."""
        for resident in self._resident.values():
            self._free_segments(resident)
        self._resident.clear()

    # -- task fan-out ------------------------------------------------------------

    async def _gather(
        self, batches: Sequence[Tuple[int, List[object]]]
    ) -> List[object]:
        results = await asyncio.gather(
            *(self._run_shard_batch(shard, messages) for shard, messages in batches)
        )
        flat: List[object] = []
        for responses in results:
            flat.extend(responses)
        return flat

    def run_tasks(self, tasks: Sequence[Tuple[int, object]]) -> List[object]:
        """Fan ``(shard, message)`` tasks out and return replies by task id.

        Batches for distinct shards run concurrently; within a shard the
        messages are pipelined in order.  Replies are reordered by their
        ``task_id`` (every task message carries one), so the caller's merge
        order is the task order it built — the order the serial engine uses.
        """
        if not tasks:
            return []
        self.start()
        by_shard: Dict[int, List[object]] = {}
        for shard, message in tasks:
            by_shard.setdefault(shard, []).append(message)
        responses = self._call(self._gather(sorted(by_shard.items())))
        for response in responses:
            if isinstance(response, Failure):
                raise ShardedExecutionError(
                    f"shard task failed: {response.message}\n{response.traceback}"
                )
        return sorted(responses, key=lambda r: r.task_id)

    # -- control plane -----------------------------------------------------------

    def ping(self) -> List[dict]:
        """Liveness probe of every shard: ``[{"shard": ..., "pid": ...}]``."""
        self.start()
        replies = self._call(
            self._gather([(shard, [Ping()]) for shard in range(self.shards)])
        )
        return [reply.info for reply in replies if isinstance(reply, Ok)]

    def worker_stats(self) -> List[WorkerStats]:
        """Per-shard resident inventory and task counters."""
        self.start()
        replies = self._call(
            self._gather([(shard, [StatsRequest()]) for shard in range(self.shards)])
        )
        return [reply.info for reply in replies if isinstance(reply, Ok)]

    def inventory(self) -> Dict[int, Dict[str, List[int]]]:
        """shard → {relation → sorted resident chunk indices}, from workers."""
        return {
            stats.shard: {
                name: list(indices) for name, (_, indices) in stats.resident.items()
            }
            for stats in self.worker_stats()
        }

    def inject_crash(self, shard: int) -> None:
        """Arm a mid-request crash: the next batch to *shard* kills its worker
        after the tasks are on the wire (they are then respawn-retried)."""
        self._crash_armed[shard] = True

    async def _shutdown_all(self) -> None:
        for worker in self._workers:
            if worker is None:
                continue
            try:
                replies = await asyncio.wait_for(
                    self._request_many(worker, [Shutdown()]), timeout=5
                )
                assert isinstance(replies[0], Ok)
            except Exception:
                pass  # dead already, or wedged; close() terminates it
            try:
                worker.writer.close()
            except Exception:
                pass
            worker.process.join(timeout=5)

    def __repr__(self) -> str:
        live = sum(
            1
            for worker in self._workers
            if worker is not None and worker.process.is_alive()
        )
        return (
            f"ShardCluster(shards={self.shards}, live={live}, "
            f"resident={len(self._resident)}, respawns={self._respawns})"
        )
