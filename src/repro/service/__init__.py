"""The serving subsystem: plan-caching, statistics-caching query service.

See :class:`~repro.service.service.QueryService` for the in-process entry
point and :mod:`repro.service.sharded` for the persistent sharded tier
(worker-pool backend plus the admission-controlled async front-end).
"""

from .cache import CacheStats, LRUCache
from .fingerprint import canonical_text, query_fingerprint, schema_signature
from .service import (
    BatchFailure,
    BatchResult,
    QueryMetricsHistory,
    QueryService,
    ServiceResult,
    ServiceStats,
)

__all__ = [
    "BatchFailure",
    "BatchResult",
    "CacheStats",
    "LRUCache",
    "QueryMetricsHistory",
    "QueryService",
    "RequestTimeoutError",
    "ServiceOverloadedError",
    "ServiceResult",
    "ServiceStats",
    "ShardCluster",
    "ShardedBackend",
    "ShardedService",
    "canonical_text",
    "query_fingerprint",
    "schema_signature",
]

#: Sharded-tier symbols loaded lazily (PEP 562) so importing the in-process
#: service does not pull in asyncio/multiprocessing machinery.
_SHARDED_EXPORTS = (
    "RequestTimeoutError",
    "ServiceOverloadedError",
    "ShardCluster",
    "ShardedBackend",
    "ShardedService",
)


def __getattr__(name: str):
    if name in _SHARDED_EXPORTS:
        from . import sharded

        return getattr(sharded, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
