"""The serving subsystem: plan-caching, statistics-caching query service.

See :class:`~repro.service.service.QueryService` for the entry point.
"""

from .cache import CacheStats, LRUCache
from .fingerprint import canonical_text, query_fingerprint, schema_signature
from .service import (
    BatchResult,
    QueryMetricsHistory,
    QueryService,
    ServiceResult,
    ServiceStats,
)

__all__ = [
    "BatchResult",
    "CacheStats",
    "LRUCache",
    "QueryMetricsHistory",
    "QueryService",
    "ServiceResult",
    "ServiceStats",
    "canonical_text",
    "query_fingerprint",
    "schema_signature",
]
