"""A thread-safe LRU cache with hit/miss/eviction accounting.

Backs the query service's plan cache (fingerprint → planned program) and is
generic enough for any hashable-key cache the serving layer grows next.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from threading import RLock
from typing import Dict, Generic, Hashable, Optional, Tuple, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

#: Sentinel distinguishing "not cached" from a cached None.
_MISSING = object()


@dataclass
class CacheStats:
    """Counters of one cache's lifetime behaviour."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups (hits plus misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never looked up)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        """The counters (plus hit rate) as a JSON-ready mapping."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }


class LRUCache(Generic[K, V]):
    """A bounded mapping evicting the least recently used entry, thread-safe.

    ``capacity <= 0`` disables caching entirely (every lookup misses) so the
    service can be run cache-less for comparisons without special-casing.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[K, V]" = OrderedDict()
        self._lock = RLock()
        self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: K) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: K) -> Optional[V]:
        """The cached value (marked most recently used), or None on a miss."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key: K, value: V) -> None:
        """Insert (or refresh) an entry, evicting the LRU entry when full."""
        if self.capacity <= 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> int:
        """Drop every entry (counted as one invalidation); returns the count."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.stats.invalidations += 1
            return dropped

    def keys(self) -> Tuple[K, ...]:
        """The cached keys, LRU first (snapshot)."""
        with self._lock:
            return tuple(self._entries)

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"LRUCache(size={len(self._entries)}/{self.capacity}, "
                f"hits={self.stats.hits}, misses={self.stats.misses})"
            )
