"""The query service: plan-caching, statistics-caching, concurrent serving.

:class:`QueryService` is the serving layer on top of the
:class:`~repro.core.gumbo.Gumbo` planner/executor.  Where ``Gumbo.execute``
re-collects statistics and re-plans on every call, the service makes repeated
and high-volume workloads cheap:

* **plan cache** — an LRU mapping query fingerprints (canonical query text +
  database schema, see :mod:`repro.service.fingerprint`) to planned programs,
  so a repeated query skips statistics collection, strategy selection and
  plan construction entirely;
* **statistics cache** — one :class:`~repro.core.costing.PlanCostEstimator`
  (and its :class:`~repro.cost.estimates.StatisticsCatalog`) is shared by
  every planning miss until the database changes;
* **explicit invalidation** — :meth:`invalidate` (or any mutation routed
  through :meth:`mutate` / :meth:`add_tuples` / :meth:`replace_database`)
  bumps the database version and drops both caches, so stale plans are never
  served;
* **concurrent execution** — queries submitted through :meth:`submit` /
  :meth:`submit_many` run on a thread pool against the shared execution
  backend (the serial simulated backend is pure and runs concurrently;
  other backends are serialised with a lock), with per-query metrics.

The default strategy is ``AUTO`` — cost-based selection over every applicable
strategy — because a serving layer should not require callers to name one.
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from threading import Lock, RLock
from time import perf_counter
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..core.costing import PlanCostEstimator
from ..core.gumbo import Gumbo, GumboResult, PlannedQuery, QueryLike
from ..core.options import GumboOptions
from ..core.strategies import AUTO, normalise_strategy
from ..exec.base import ExecutionBackend, SERIAL
from ..mapreduce.counters import ProgramMetrics
from ..model.database import Database
from ..model.relation import Relation
from ..query.sgf import SGFQuery
from .cache import CacheStats, LRUCache
from .fingerprint import query_fingerprint

#: Plan-cache key: (query fingerprint, normalised requested strategy).
PlanKey = Tuple[str, str]


@dataclass(frozen=True)
class ServiceResult:
    """One served query: the execution result plus serving-layer metrics."""

    result: GumboResult
    fingerprint: str
    requested_strategy: str
    plan_cached: bool
    plan_s: float
    exec_s: float

    @property
    def strategy(self) -> str:
        """The strategy that actually ran (AUTO resolves to its winner)."""
        return self.result.strategy

    @property
    def query(self) -> SGFQuery:
        return self.result.query

    @property
    def outputs(self) -> Dict[str, Relation]:
        return self.result.outputs

    @property
    def metrics(self) -> ProgramMetrics:
        return self.result.metrics

    @property
    def total_s(self) -> float:
        return self.plan_s + self.exec_s

    def output(self, name: Optional[str] = None) -> Relation:
        return self.result.output(name)


@dataclass(frozen=True)
class BatchResult:
    """Outcome of a batched submission, with aggregate serving metrics."""

    results: Tuple[ServiceResult, ...]
    elapsed_s: float

    @property
    def throughput_qps(self) -> float:
        return len(self.results) / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def plan_cache_hits(self) -> int:
        return sum(1 for r in self.results if r.plan_cached)

    def summary(self) -> Dict[str, float]:
        return {
            "queries": len(self.results),
            "elapsed_s": self.elapsed_s,
            "throughput_qps": self.throughput_qps,
            "plan_cache_hits": self.plan_cache_hits,
            "plan_s_total": sum(r.plan_s for r in self.results),
            "exec_s_total": sum(r.exec_s for r in self.results),
        }


@dataclass(frozen=True)
class ServiceStats:
    """A snapshot of the service's serving-layer counters."""

    queries_served: int
    plan_cache: CacheStats
    plan_cache_size: int
    database_version: int
    statistics_rebuilds: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "queries_served": self.queries_served,
            "plan_cache": self.plan_cache.as_dict(),
            "plan_cache_size": self.plan_cache_size,
            "database_version": self.database_version,
            "statistics_rebuilds": self.statistics_rebuilds,
        }


class QueryService:
    """Serve (B)SGF queries over one database with plan and statistics caching.

    Parameters
    ----------
    database:
        The database served.  The service assumes it is only mutated through
        the service's own mutation helpers (or that :meth:`invalidate` is
        called after any out-of-band change).
    gumbo:
        The planner/executor to serve with; a fresh one (with *backend* /
        *workers* / *options*) is created — and owned, i.e. closed with the
        service — when omitted.
    strategy:
        Default strategy for calls that do not name one (default ``AUTO``).
    plan_cache_size:
        Maximum cached plans (0 disables plan caching).
    max_workers:
        Thread-pool size for concurrent submissions.
    """

    def __init__(
        self,
        database: Database,
        gumbo: Optional[Gumbo] = None,
        *,
        strategy: str = AUTO,
        plan_cache_size: int = 256,
        max_workers: int = 4,
        backend: Union[str, ExecutionBackend, None] = None,
        workers: Optional[int] = None,
        options: Optional[GumboOptions] = None,
    ) -> None:
        self._owns_gumbo = gumbo is None
        if gumbo is None:
            gumbo = Gumbo(options=options, backend=backend, workers=workers)
        self.gumbo = gumbo
        self.database = database
        self.default_strategy = strategy
        self.plan_cache: LRUCache[PlanKey, PlannedQuery] = LRUCache(plan_cache_size)
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, max_workers), thread_name_prefix="repro-service"
        )
        self._plan_lock = RLock()
        self._state_lock = Lock()
        # The serial backend is pure (every run works on a copy of the
        # database), so it is safe to run concurrently; other backends share
        # worker pools and are serialised.
        self._exec_lock: Optional[Lock] = (
            None if gumbo.backend.name == SERIAL else Lock()
        )
        self._version = 0
        self._queries_served = 0
        self._statistics_rebuilds = 0
        self._estimator: Optional[PlanCostEstimator] = None

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Shut the thread pool down and release an owned Gumbo's backend."""
        self._pool.shutdown(wait=True)
        if self._owns_gumbo:
            self.gumbo.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False

    # -- fingerprints and cached statistics --------------------------------------

    def fingerprint(self, query: QueryLike) -> str:
        """The plan-cache fingerprint of *query* over the current database."""
        return query_fingerprint(Gumbo.as_sgf(query), self.database)

    def estimator(self) -> PlanCostEstimator:
        """The cached cost estimator (statistics catalog) for this version."""
        with self._plan_lock:
            if self._estimator is None:
                self._estimator = self.gumbo.estimator(self.database)
                self._statistics_rebuilds += 1
            return self._estimator

    # -- planning ----------------------------------------------------------------

    def _normalise_strategy(self, strategy: Optional[str]) -> str:
        name = strategy if strategy is not None else self.default_strategy
        return normalise_strategy(name)

    def plan(
        self, query: QueryLike, strategy: Optional[str] = None
    ) -> Tuple[PlannedQuery, bool]:
        """The (possibly cached) plan for *query*: ``(planned, was_cached)``."""
        planned, was_cached, _ = self._plan(query, strategy, self.database)
        return planned, was_cached

    def _plan(
        self,
        query: QueryLike,
        strategy: Optional[str],
        database: Database,
    ) -> Tuple[PlannedQuery, bool, str]:
        """Plan *query* against *database*: ``(planned, was_cached, fingerprint)``.

        On a miss the query is planned with the cached statistics catalog —
        through a scratch copy, so the intermediate-size estimates one query
        registers while planning (whose names may collide with another
        query's outputs) never pollute the shared catalog — and the result is
        stored under ``(fingerprint, requested strategy)``.  The *requested*
        name keys the cache, so ``"auto"`` and an explicit ``"greedy"`` do
        not collide even when AUTO happens to choose greedy.
        """
        requested = self._normalise_strategy(strategy)
        sgf = Gumbo.as_sgf(query)
        fingerprint = query_fingerprint(sgf, database)
        key = (fingerprint, requested)
        # One lookup per call, under the planning lock: hit/miss counters
        # stay exact and concurrent misses for the same query plan only
        # once.  Execution (the expensive part) is never serialised here.
        with self._plan_lock:
            cached = self.plan_cache.get(key)
            if cached is not None:
                return cached, True, fingerprint
            planned = self.gumbo.plan_with(
                sgf,
                database,
                requested,
                estimator=self.estimator().scratch_copy(),
            )
            # Only cache when the served database is still the one this plan
            # was built for (invalidate() also takes the planning lock, so a
            # swap can only have happened before we acquired it).
            if database is self.database:
                self.plan_cache.put(key, planned)
        return planned, False, fingerprint

    # -- execution ---------------------------------------------------------------

    def execute(
        self, query: QueryLike, strategy: Optional[str] = None
    ) -> ServiceResult:
        """Serve one query synchronously (plan from cache when possible).

        The database reference is snapshotted once per request, so a
        concurrent :meth:`replace_database` never splits one request between
        two databases: the plan, the execution and the reported fingerprint
        all refer to the same snapshot.  (In-place mutation of the *current*
        database while queries are in flight remains the caller's
        responsibility — route changes through :meth:`mutate`.)
        """
        requested = self._normalise_strategy(strategy)
        database = self.database
        plan_start = perf_counter()
        planned, was_cached, fingerprint = self._plan(query, requested, database)
        plan_s = perf_counter() - plan_start
        exec_start = perf_counter()
        if self._exec_lock is not None:
            with self._exec_lock:
                result = self._run(planned, database)
        else:
            result = self._run(planned, database)
        exec_s = perf_counter() - exec_start
        with self._state_lock:
            self._queries_served += 1
        return ServiceResult(
            result=result,
            fingerprint=fingerprint,
            requested_strategy=requested,
            plan_cached=was_cached,
            plan_s=plan_s,
            exec_s=exec_s,
        )

    def _run(self, planned: PlannedQuery, database: Database) -> GumboResult:
        return self.gumbo.execute_program(
            planned.query,
            database,
            planned.program,
            strategy=planned.strategy,
            choice=planned.choice,
        )

    def submit(
        self, query: QueryLike, strategy: Optional[str] = None
    ) -> "Future[ServiceResult]":
        """Serve one query on the thread pool; returns a future."""
        return self._pool.submit(self.execute, query, strategy)

    def submit_many(
        self,
        queries: Iterable[QueryLike],
        strategy: Optional[str] = None,
    ) -> List["Future[ServiceResult]"]:
        """Submit a batch of queries; futures preserve submission order."""
        return [self.submit(query, strategy) for query in queries]

    def execute_many(
        self,
        queries: Iterable[QueryLike],
        strategy: Optional[str] = None,
    ) -> BatchResult:
        """Submit a batch, wait for every result, and report batch metrics."""
        start = perf_counter()
        futures = self.submit_many(queries, strategy)
        results = tuple(future.result() for future in futures)
        return BatchResult(results=results, elapsed_s=perf_counter() - start)

    # -- mutation and invalidation ------------------------------------------------

    def invalidate(self) -> int:
        """Drop cached plans and statistics; returns the number of plans dropped.

        Call after any out-of-band database mutation.  The database version
        is bumped so stale statistics are never reused.
        """
        with self._plan_lock:
            self._estimator = None
            with self._state_lock:
                self._version += 1
            return self.plan_cache.clear()

    def mutate(self, mutator: Callable[[Database], None]) -> None:
        """Apply *mutator* to the database, then invalidate the caches."""
        mutator(self.database)
        self.invalidate()

    def add_tuples(self, relation: str, rows: Iterable[Sequence[object]]) -> None:
        """Append facts to a relation (creating it from the rows if needed)."""
        rows = [tuple(row) for row in rows]
        if not rows:
            return

        def _apply(database: Database) -> None:
            existing = database.get(relation)
            if existing is None:
                existing = database.ensure_relation(relation, len(rows[0]))
            for row in rows:
                existing.add(row)

        self.mutate(_apply)

    def replace_database(self, database: Database) -> None:
        """Swap the served database and invalidate the caches."""
        self.database = database
        self.invalidate()

    # -- introspection -------------------------------------------------------------

    @property
    def database_version(self) -> int:
        return self._version

    def stats(self) -> ServiceStats:
        """A snapshot of the serving-layer counters."""
        with self._state_lock:
            return ServiceStats(
                queries_served=self._queries_served,
                plan_cache=CacheStats(**vars(self.plan_cache.stats)),
                plan_cache_size=len(self.plan_cache),
                database_version=self._version,
                statistics_rebuilds=self._statistics_rebuilds,
            )

    def __repr__(self) -> str:
        return (
            f"QueryService(relations={len(self.database)}, "
            f"strategy={self.default_strategy!r}, "
            f"backend={self.gumbo.backend.name!r}, cache={self.plan_cache!r})"
        )
