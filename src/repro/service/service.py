"""The query service: plan-caching, statistics-caching, concurrent serving.

:class:`QueryService` is the serving layer on top of the
:class:`~repro.core.gumbo.Gumbo` planner/executor.  Where ``Gumbo.execute``
re-collects statistics and re-plans on every call, the service makes repeated
and high-volume workloads cheap:

* **plan cache** — an LRU mapping query fingerprints (canonical query text +
  database schema, see :mod:`repro.service.fingerprint`) to planned programs,
  so a repeated query skips statistics collection, strategy selection and
  plan construction entirely;
* **statistics cache** — one :class:`~repro.core.costing.PlanCostEstimator`
  (and its :class:`~repro.cost.estimates.StatisticsCatalog`) is shared by
  every planning miss until the database changes;
* **explicit invalidation** — :meth:`invalidate` (or any mutation routed
  through :meth:`mutate` / :meth:`add_tuples` / :meth:`replace_database`)
  bumps the database version and drops both caches, so stale plans are never
  served;
* **concurrent execution** — queries submitted through :meth:`submit` /
  :meth:`submit_many` run on a thread pool against the shared execution
  backend (the serial simulated backend is pure and runs concurrently;
  other backends are serialised with a lock), with per-query metrics.

The default strategy is ``AUTO`` — cost-based selection over every applicable
strategy — because a serving layer should not require callers to name one.
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from threading import Lock, RLock
from time import perf_counter
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..core.config import ExecutionConfig
from ..core.costing import PlanCostEstimator
from ..core.gumbo import Gumbo, GumboResult, PlannedQuery, QueryLike
from ..core.options import GumboOptions
from ..core.strategies import AUTO, normalise_strategy
from ..exec.base import ExecutionBackend, SERIAL
from ..incremental.engine import DeltaResult, materialize_query, refresh_all
from ..incremental.materialize import IncrementalError, Materialization
from ..model.relation import SchemaError
from ..mapreduce.counters import ProgramMetrics
from ..model.database import Database
from ..model.relation import Relation
from .. import obs
from ..obs.metrics import Histogram, MetricsRegistry
from ..query.sgf import SGFQuery
from .cache import CacheStats, LRUCache
from .fingerprint import query_fingerprint

#: Plan-cache key: (query fingerprint, normalised requested strategy).
PlanKey = Tuple[str, str]


@dataclass(frozen=True)
class ServiceResult:
    """One served query: the execution result plus serving-layer metrics."""

    result: GumboResult
    fingerprint: str
    requested_strategy: str
    plan_cached: bool
    plan_s: float
    exec_s: float

    @property
    def strategy(self) -> str:
        """The strategy that actually ran (AUTO resolves to its winner)."""
        return self.result.strategy

    @property
    def query(self) -> SGFQuery:
        """The query served (parsed form)."""
        return self.result.query

    @property
    def outputs(self) -> Dict[str, Relation]:
        """The query's output relations, keyed by name."""
        return self.result.outputs

    @property
    def metrics(self) -> ProgramMetrics:
        """The simulated MapReduce metrics of the execution."""
        return self.result.metrics

    @property
    def total_s(self) -> float:
        """Total serving time: planning plus execution."""
        return self.plan_s + self.exec_s

    def output(self, name: Optional[str] = None) -> Relation:
        """One output relation (the query's primary output by default)."""
        return self.result.output(name)


@dataclass(frozen=True)
class BatchFailure:
    """One failed query of a batch: its submission position and the error."""

    #: Position of the failed query in the submitted batch.
    index: int
    #: ``TypeName: message`` of the raised exception.
    error: str
    #: The exception itself, for callers that need to re-raise or inspect.
    exception: BaseException = field(repr=False, compare=False, default=None)


@dataclass(frozen=True)
class BatchResult:
    """Outcome of a batched submission, with aggregate serving metrics.

    ``results`` holds the successful queries in submission order;
    ``failures`` holds the failed ones (with their batch positions) — a
    failing query no longer aborts the rest of the batch.
    """

    results: Tuple[ServiceResult, ...]
    elapsed_s: float
    failures: Tuple[BatchFailure, ...] = ()

    @property
    def ok(self) -> bool:
        """True when every query of the batch succeeded."""
        return not self.failures

    @property
    def throughput_qps(self) -> float:
        """Queries served per wall-clock second."""
        return len(self.results) / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def plan_cache_hits(self) -> int:
        """How many of the batch's queries skipped planning entirely."""
        return sum(1 for r in self.results if r.plan_cached)

    def summary(self) -> Dict[str, float]:
        """Aggregate batch metrics as a JSON-ready mapping."""
        return {
            "queries": len(self.results),
            "failures": len(self.failures),
            "elapsed_s": self.elapsed_s,
            "throughput_qps": self.throughput_qps,
            "plan_cache_hits": self.plan_cache_hits,
            "plan_s_total": sum(r.plan_s for r in self.results),
            "exec_s_total": sum(r.exec_s for r in self.results),
        }


@dataclass
class QueryMetricsHistory:
    """Cumulative serving metrics of one query fingerprint.

    The history is *never* dropped: cache invalidations (mutations, database
    swaps) clear plans and statistics, not the record of what was served.
    """

    fingerprint: str
    queries: int = 0
    plan_cache_hits: int = 0
    materialized_hits: int = 0
    failures: int = 0
    plan_s_total: float = 0.0
    exec_s_total: float = 0.0
    #: Distribution of execution times (p50/p95/p99 via ``summary()``).
    exec_seconds: Histogram = field(
        default_factory=lambda: Histogram("repro_query_exec_seconds")
    )

    def record(self, result: "ServiceResult", materialized: bool = False) -> None:
        """Fold one served result into the cumulative counters."""
        self.queries += 1
        self.plan_cache_hits += 1 if result.plan_cached else 0
        self.materialized_hits += 1 if materialized else 0
        self.plan_s_total += result.plan_s
        self.exec_s_total += result.exec_s
        self.exec_seconds.observe(result.exec_s)

    def record_failure(self) -> None:
        """Count one failed request against this fingerprint."""
        self.failures += 1

    def copy(self) -> "QueryMetricsHistory":
        """An independent copy (the histogram is mutable, so snapshot it)."""
        return QueryMetricsHistory(
            fingerprint=self.fingerprint,
            queries=self.queries,
            plan_cache_hits=self.plan_cache_hits,
            materialized_hits=self.materialized_hits,
            failures=self.failures,
            plan_s_total=self.plan_s_total,
            exec_s_total=self.exec_s_total,
            exec_seconds=self.exec_seconds.snapshot(),
        )

    def as_dict(self) -> Dict[str, object]:
        """The counters (with exec-time percentiles) as a JSON-ready mapping."""
        return {
            "queries": self.queries,
            "plan_cache_hits": self.plan_cache_hits,
            "materialized_hits": self.materialized_hits,
            "failures": self.failures,
            "plan_s_total": self.plan_s_total,
            "exec_s_total": self.exec_s_total,
            "exec_seconds": self.exec_seconds.summary(),
        }


@dataclass(frozen=True)
class ServiceStats:
    """A snapshot of the service's serving-layer counters."""

    queries_served: int
    plan_cache: CacheStats
    plan_cache_size: int
    database_version: int
    statistics_rebuilds: int
    materialized_results: int = 0
    materialized_hits: int = 0
    incremental_refreshes: int = 0
    metrics_histories: int = 0
    queries_failed: int = 0

    def as_dict(self) -> Dict[str, object]:
        """The snapshot as a JSON-ready mapping."""
        return {
            "queries_served": self.queries_served,
            "queries_failed": self.queries_failed,
            "plan_cache": self.plan_cache.as_dict(),
            "plan_cache_size": self.plan_cache_size,
            "database_version": self.database_version,
            "statistics_rebuilds": self.statistics_rebuilds,
            "materialized_results": self.materialized_results,
            "materialized_hits": self.materialized_hits,
            "incremental_refreshes": self.incremental_refreshes,
            "metrics_histories": self.metrics_histories,
        }


class QueryService:
    """Serve (B)SGF queries over one database with plan and statistics caching.

    .. note:: *Deprecated as a client entry point.*  New code should use
       :func:`repro.connect`, which returns a ``Connection`` facade over
       this service with one unified ``Result`` type; direct ``QueryService``
       construction remains fully supported (the facade delegates here).

    Parameters
    ----------
    database:
        The database served.  The service assumes it is only mutated through
        the service's own mutation helpers (or that :meth:`invalidate` is
        called after any out-of-band change).
    gumbo:
        The planner/executor to serve with; a fresh one (with *backend* /
        *workers* / *options*) is created — and owned, i.e. closed with the
        service — when omitted.
    strategy:
        Default strategy for calls that do not name one (default ``AUTO``).
    plan_cache_size:
        Maximum cached plans (0 disables plan caching).
    max_workers:
        Thread-pool size for concurrent submissions.
    config:
        A validated :class:`~repro.core.config.ExecutionConfig` supplying
        the backend selection and options in one bundle; mutually exclusive
        with *gumbo*/*backend*/*workers*/*options*.
    """

    def __init__(
        self,
        database: Database,
        gumbo: Optional[Gumbo] = None,
        *,
        strategy: str = AUTO,
        plan_cache_size: int = 256,
        max_workers: int = 4,
        backend: Union[str, ExecutionBackend, None] = None,
        workers: Optional[int] = None,
        options: Optional[GumboOptions] = None,
        config: Optional["ExecutionConfig"] = None,
    ) -> None:
        from ..deprecation import warn_legacy_entry_point

        warn_legacy_entry_point("QueryService")
        if config is not None:
            if gumbo is not None or backend is not None or workers is not None \
                    or options is not None:
                raise ValueError(
                    "pass either config= or the loose "
                    "gumbo/backend/workers/options arguments, not both"
                )
            options = config.to_options()
        self._owns_gumbo = gumbo is None
        if gumbo is None:
            gumbo = Gumbo(options=options, backend=backend, workers=workers)
        self.gumbo = gumbo
        self.database = database
        self.default_strategy = strategy
        self.plan_cache: LRUCache[PlanKey, PlannedQuery] = LRUCache(plan_cache_size)
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, max_workers), thread_name_prefix="repro-service"
        )
        self._plan_lock = RLock()
        self._state_lock = Lock()
        # The serial backend is pure (every run works on a copy of the
        # database), so it is safe to run concurrently; other backends are
        # serialised — parallel shares one worker pool, and two concurrent
        # SQL runs against the same --sql-db file would race on its tables.
        self._exec_lock: Optional[Lock] = (
            None if gumbo.backend.name == SERIAL else Lock()
        )
        self._version = 0
        self._queries_served = 0
        self._statistics_rebuilds = 0
        self._estimator: Optional[PlanCostEstimator] = None
        #: Materialized results maintained incrementally, keyed like plans.
        self._materialized: Dict[PlanKey, Materialization] = {}
        self._materialized_hits = 0
        self._incremental_refreshes = 0
        #: Bumped by every incremental batch; materialize() uses it (together
        #: with the invalidation version) to detect a mutation that landed
        #: while it executed outside the locks, and retries on fresh state.
        self._incremental_epoch = 0
        #: Per-fingerprint cumulative serving metrics; survives invalidation.
        self._history: Dict[str, QueryMetricsHistory] = {}
        self._queries_failed = 0
        #: Per-service instrument registry (two services never mix counters);
        #: exporters combine it with the process-global default registry.
        self.metrics = MetricsRegistry()
        self._m_requests = self.metrics.counter("repro_service_requests_total")
        self._m_failures = self.metrics.counter("repro_service_failures_total")
        self._m_plan_hits = self.metrics.counter(
            "repro_service_plan_cache_total", outcome="hit"
        )
        self._m_plan_misses = self.metrics.counter(
            "repro_service_plan_cache_total", outcome="miss"
        )
        self._m_request_seconds = self.metrics.histogram(
            "repro_service_request_seconds"
        )
        self._m_refresh_seconds = self.metrics.histogram(
            "repro_service_refresh_seconds"
        )

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Shut the thread pool down and release an owned Gumbo's backend."""
        self._pool.shutdown(wait=True)
        if self._owns_gumbo:
            self.gumbo.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False

    # -- fingerprints and cached statistics --------------------------------------

    def fingerprint(self, query: QueryLike) -> str:
        """The plan-cache fingerprint of *query* over the current database."""
        return query_fingerprint(Gumbo.as_sgf(query), self.database)

    def estimator(self) -> PlanCostEstimator:
        """The cached cost estimator (statistics catalog) for this version."""
        with self._plan_lock:
            if self._estimator is None:
                self._estimator = self.gumbo.estimator(self.database)
                self._statistics_rebuilds += 1
            return self._estimator

    # -- planning ----------------------------------------------------------------

    def _normalise_strategy(self, strategy: Optional[str]) -> str:
        name = strategy if strategy is not None else self.default_strategy
        return normalise_strategy(name)

    def plan(
        self, query: QueryLike, strategy: Optional[str] = None
    ) -> Tuple[PlannedQuery, bool]:
        """The (possibly cached) plan for *query*: ``(planned, was_cached)``."""
        planned, was_cached, _ = self._plan(query, strategy, self.database)
        return planned, was_cached

    def _plan(
        self,
        query: QueryLike,
        strategy: Optional[str],
        database: Database,
        fingerprint: Optional[str] = None,
    ) -> Tuple[PlannedQuery, bool, str]:
        """Plan *query* against *database*: ``(planned, was_cached, fingerprint)``.

        On a miss the query is planned with the cached statistics catalog —
        through a scratch copy, so the intermediate-size estimates one query
        registers while planning (whose names may collide with another
        query's outputs) never pollute the shared catalog — and the result is
        stored under ``(fingerprint, requested strategy)``.  The *requested*
        name keys the cache, so ``"auto"`` and an explicit ``"greedy"`` do
        not collide even when AUTO happens to choose greedy.
        """
        requested = self._normalise_strategy(strategy)
        sgf = Gumbo.as_sgf(query)
        if fingerprint is None:
            fingerprint = query_fingerprint(sgf, database)
        key = (fingerprint, requested)
        # One lookup per call, under the planning lock: hit/miss counters
        # stay exact and concurrent misses for the same query plan only
        # once.  Execution (the expensive part) is never serialised here.
        with self._plan_lock:
            cached = self.plan_cache.get(key)
            if cached is not None:
                return cached, True, fingerprint
            planned = self.gumbo.plan_with(
                sgf,
                database,
                requested,
                estimator=self.estimator().scratch_copy(),
            )
            # Only cache when the served database is still the one this plan
            # was built for (invalidate() also takes the planning lock, so a
            # swap can only have happened before we acquired it).
            if database is self.database:
                self.plan_cache.put(key, planned)
        return planned, False, fingerprint

    # -- execution ---------------------------------------------------------------

    def execute(
        self, query: QueryLike, strategy: Optional[str] = None
    ) -> ServiceResult:
        """Serve one query synchronously (plan from cache when possible).

        The database reference is snapshotted once per request, so a
        concurrent :meth:`replace_database` never splits one request between
        two databases: the plan, the execution and the reported fingerprint
        all refer to the same snapshot.  (In-place mutation of the *current*
        database while queries are in flight remains the caller's
        responsibility — route changes through :meth:`mutate`.)

        Parameters
        ----------
        query:
            The query served: an :class:`~repro.query.sgf.SGFQuery`, a
            :class:`~repro.query.bsgf.BSGFQuery`, or concrete query text.
        strategy:
            Strategy name; ``None`` uses the service default (``AUTO``).

        Returns
        -------
        ServiceResult
            The execution result plus serving-layer metrics (plan-cache hit,
            plan and execution wall times).

        Raises
        ------
        Exception
            Planning and execution errors propagate unchanged; the failure is
            counted against the service and the query's fingerprint first.
        """
        requested = self._normalise_strategy(strategy)
        database = self.database
        try:
            sgf = Gumbo.as_sgf(query)
            fingerprint = query_fingerprint(sgf, database)
        except Exception:
            # Unparseable/ill-typed queries fail before a fingerprint exists;
            # count them against the service under a sentinel fingerprint so
            # batch accounting (queries_failed) never loses a failure.
            self._record_failure("<unparseable>")
            raise
        self._m_requests.inc()
        request_start = perf_counter()
        with obs.trace(
            "service.request",
            enabled=self.gumbo.options.trace,
            fingerprint=fingerprint,
            requested_strategy=requested,
        ) as request_span:
            try:
                materialized = self._serve_materialized(fingerprint, requested)
                if materialized is not None:
                    request_span.set(materialized=True, plan_cached=True)
                    self._m_plan_hits.inc()
                    self._m_request_seconds.observe(perf_counter() - request_start)
                    return materialized
                plan_start = perf_counter()
                planned, was_cached, fingerprint = self._plan(
                    sgf, requested, database, fingerprint
                )
                plan_s = perf_counter() - plan_start
                (self._m_plan_hits if was_cached else self._m_plan_misses).inc()
                request_span.set(
                    plan_cached=was_cached, strategy=planned.strategy
                )
                exec_start = perf_counter()
                if self._exec_lock is not None:
                    with self._exec_lock:
                        result = self._run(planned, database)
                else:
                    result = self._run(planned, database)
                exec_s = perf_counter() - exec_start
            except Exception:
                self._record_failure(fingerprint)
                raise
        served = ServiceResult(
            result=result,
            fingerprint=fingerprint,
            requested_strategy=requested,
            plan_cached=was_cached,
            plan_s=plan_s,
            exec_s=exec_s,
        )
        self._record(served)
        self._m_request_seconds.observe(perf_counter() - request_start)
        return served

    def _record(self, served: ServiceResult, materialized: bool = False) -> None:
        with self._state_lock:
            self._queries_served += 1
            if materialized:
                self._materialized_hits += 1
            history = self._history.get(served.fingerprint)
            if history is None:
                history = self._history[served.fingerprint] = QueryMetricsHistory(
                    served.fingerprint
                )
            history.record(served, materialized=materialized)

    def _record_failure(self, fingerprint: str) -> None:
        """Count a failed request against the service and its fingerprint."""
        self._m_failures.inc()
        with self._state_lock:
            self._queries_failed += 1
            history = self._history.get(fingerprint)
            if history is None:
                history = self._history[fingerprint] = QueryMetricsHistory(
                    fingerprint
                )
            history.record_failure()

    def _serve_materialized(
        self, fingerprint: str, requested: str
    ) -> Optional[ServiceResult]:
        """Serve a query straight from its maintained materialization.

        The materialized relations are mutated in place by incremental
        refreshes, so the served result carries copies snapshotted under the
        planning lock — callers never observe a half-applied delta.
        """
        start = perf_counter()
        with self._plan_lock:
            materialization = self._materialized.get((fingerprint, requested))
            if materialization is None:
                return None
            snapshot = self._snapshot_result(materialization.result)
        served = ServiceResult(
            result=snapshot,
            fingerprint=fingerprint,
            requested_strategy=requested,
            plan_cached=True,
            plan_s=0.0,
            exec_s=perf_counter() - start,
        )
        self._record(served, materialized=True)
        return served

    @staticmethod
    def _snapshot_result(result: GumboResult) -> GumboResult:
        copies = {name: rel.copy() for name, rel in result.all_outputs.items()}
        return GumboResult(
            query=result.query,
            strategy=result.strategy,
            program=result.program,
            outputs={name: copies[name] for name in result.outputs},
            all_outputs=copies,
            metrics=result.metrics,
            choice=result.choice,
        )

    def materialize(
        self, query: QueryLike, strategy: Optional[str] = None
    ) -> ServiceResult:
        """Execute *query* and keep its result maintained under inserts.

        The result is registered under ``(fingerprint, requested strategy)``;
        subsequent :meth:`execute` calls for the same key are served from the
        materialization without re-executing, and
        :meth:`add_tuples(..., incremental=True) <add_tuples>` refreshes it
        with delta evaluation instead of invalidating.  Planning reuses the
        plan cache and the cached statistics catalog.

        Raises
        ------
        IncrementalError
            When concurrent mutations kept landing mid-execution for five
            consecutive attempts, so no quiescent snapshot could be
            registered.
        """
        requested = self._normalise_strategy(strategy)
        sgf = Gumbo.as_sgf(query)
        for _ in range(5):
            database = self.database
            fingerprint = query_fingerprint(sgf, database)
            existing = self._serve_materialized(fingerprint, requested)
            if existing is not None:
                return existing
            with self._state_lock:
                stamp = (self._incremental_epoch, self._version)
            plan_start = perf_counter()
            planned, was_cached, fingerprint = self._plan(
                sgf, requested, database, fingerprint
            )
            plan_s = perf_counter() - plan_start
            exec_start = perf_counter()
            if self._exec_lock is not None:
                with self._exec_lock:
                    result = self._run(planned, database)
            else:
                result = self._run(planned, database)
            # Build + register under the planning lock: incremental batches
            # (add_tuples(..., incremental=True)) also hold it, so the state
            # is never built over a half-applied mutation.  A batch or
            # invalidation that landed while the query executed outside the
            # locks is detected by the stamp; the result is then stale, so
            # re-execute on the fresh state instead of registering it.
            with self._plan_lock:
                with self._state_lock:
                    moved = stamp != (self._incremental_epoch, self._version)
                if moved or database is not self.database:
                    continue
                materialization = materialize_query(
                    self.gumbo, sgf, database, requested, result=result
                )
                self._materialized[(fingerprint, requested)] = materialization
                served = ServiceResult(
                    result=self._snapshot_result(materialization.result),
                    fingerprint=fingerprint,
                    requested_strategy=requested,
                    plan_cached=was_cached,
                    plan_s=plan_s,
                    exec_s=perf_counter() - exec_start,
                )
            self._record(served)
            return served
        raise IncrementalError(
            "materialize() could not observe a quiescent database in 5 "
            "attempts (concurrent mutations kept landing mid-execution)"
        )

    def _run(self, planned: PlannedQuery, database: Database) -> GumboResult:
        return self.gumbo.execute_program(
            planned.query,
            database,
            planned.program,
            strategy=planned.strategy,
            choice=planned.choice,
        )

    def submit(
        self, query: QueryLike, strategy: Optional[str] = None
    ) -> "Future[ServiceResult]":
        """Serve one query on the thread pool; returns a future."""
        return self._pool.submit(self.execute, query, strategy)

    def submit_many(
        self,
        queries: Iterable[QueryLike],
        strategy: Optional[str] = None,
    ) -> List["Future[ServiceResult]"]:
        """Submit a batch of queries; futures preserve submission order."""
        return [self.submit(query, strategy) for query in queries]

    def execute_many(
        self,
        queries: Iterable[QueryLike],
        strategy: Optional[str] = None,
    ) -> BatchResult:
        """Submit a batch, wait for every query, and report batch metrics.

        A failing query does not abort the batch: its exception is captured
        as a :class:`BatchFailure` (carrying the query's submission
        position) in ``BatchResult.failures``, counted against
        :attr:`ServiceStats.queries_failed`, and the remaining queries'
        results are still returned.
        """
        start = perf_counter()
        futures = self.submit_many(queries, strategy)
        results: List[ServiceResult] = []
        failures: List[BatchFailure] = []
        for index, future in enumerate(futures):
            try:
                results.append(future.result())
            except Exception as exc:
                failures.append(
                    BatchFailure(
                        index=index,
                        error=f"{type(exc).__name__}: {exc}",
                        exception=exc,
                    )
                )
        return BatchResult(
            results=tuple(results),
            elapsed_s=perf_counter() - start,
            failures=tuple(failures),
        )

    # -- mutation and invalidation ------------------------------------------------

    def invalidate(self) -> int:
        """Drop cached plans, statistics and materializations.

        Call after any out-of-band database mutation.  The database version
        is bumped so stale statistics are never reused; returns the number of
        plans dropped.  Cumulative serving metrics (:meth:`metrics_history`,
        the plan cache's hit/miss counters) are preserved — invalidation
        resets derived state, not the service's measurement record.
        """
        with self._plan_lock:
            self._estimator = None
            self._materialized.clear()
            with self._state_lock:
                self._version += 1
            return self.plan_cache.clear()

    def mutate(self, mutator: Callable[[Database], None]) -> None:
        """Apply *mutator* to the database, then invalidate the caches."""
        mutator(self.database)
        self.invalidate()

    def add_tuples(
        self,
        relation: str,
        rows: Iterable[Sequence[object]],
        incremental: bool = False,
    ) -> Optional[List[DeltaResult]]:
        """Append facts to a relation (creating it from the rows if needed).

        By default the mutation invalidates every cache, exactly as before.
        With ``incremental=True`` the service instead *refreshes in place*:
        the batch is propagated through every registered materialization by
        delta evaluation (on the service's execution backend), the cached
        statistics catalog is updated for the mutated relation, and cached
        plans are kept — they remain correct; only their cost-optimality may
        drift, which the refreshed statistics correct at the next planning
        miss.  Returns the per-materialization
        :class:`~repro.incremental.engine.DeltaResult` list (None on the
        invalidation path).

        Raises
        ------
        SchemaError
            When a row's arity does not match the target relation (raised
            before anything mutates).
        IncrementalError
            When *relation* is the output of a registered materialization —
            outputs are derived; insert into base relations.
        """
        rows = [tuple(row) for row in rows]
        if not rows:
            return [] if incremental else None
        if not incremental:

            def _apply(database: Database) -> None:
                existing = database.get(relation)
                if existing is None:
                    existing = database.ensure_relation(relation, len(rows[0]))
                for row in rows:
                    existing.add(row)

            self.mutate(_apply)
            return None
        with self._plan_lock:
            # Validate the batch up front so nothing is half-applied: every
            # row must match the target relation's arity (or, for a new
            # relation, the batch must agree with itself).
            existing = self.database.get(relation)
            arity = existing.arity if existing is not None else len(rows[0])
            for row in rows:
                if len(row) != arity:
                    raise SchemaError(
                        f"tuple {row!r} has arity {len(row)}, relation "
                        f"{relation!r} expects {arity}"
                    )
            materializations = list(self._materialized.values())
            # Bad-argument errors are raised before anything mutates (the
            # fail-safe below is for crashes mid-batch, not for these).
            for materialization in materializations:
                if relation in materialization.query.output_names:
                    raise IncrementalError(
                        f"cannot insert into output relation {relation!r}; "
                        f"outputs are derived, insert into base relations"
                    )
            try:
                refresh_start = perf_counter()
                with obs.trace(
                    "service.refresh",
                    enabled=self.gumbo.options.trace,
                    relation=relation,
                    rows=len(rows),
                    materializations=len(materializations),
                ):
                    if self._exec_lock is not None:
                        with self._exec_lock:
                            results = refresh_all(
                                materializations,
                                self.database,
                                {relation: rows},
                                backend=self.gumbo.backend,
                                options=self.gumbo.options,
                            )
                    else:
                        results = refresh_all(
                            materializations,
                            self.database,
                            {relation: rows},
                            backend=self.gumbo.backend,
                            options=self.gumbo.options,
                        )
                self._m_refresh_seconds.observe(perf_counter() - refresh_start)
                if self._estimator is not None:
                    self._estimator.catalog.refresh_relation(relation)
            except Exception:
                # Fail safe, not half-refreshed: a crash mid-batch (some
                # materializations refreshed, others not, statistics not yet
                # patched) must never leave stale results serveable — drop
                # every derived cache and let callers re-plan from the
                # database as it now stands.
                self.invalidate()
                raise
            with self._state_lock:
                self._incremental_refreshes += 1
                self._incremental_epoch += 1
        return results

    def replace_database(self, database: Database) -> None:
        """Swap the served database and invalidate the caches."""
        self.database = database
        self.invalidate()

    # -- introspection -------------------------------------------------------------

    @property
    def database_version(self) -> int:
        """The invalidation counter (bumped by every cache-dropping mutation)."""
        return self._version

    def stats(self) -> ServiceStats:
        """A snapshot of the serving-layer counters."""
        with self._state_lock:
            return ServiceStats(
                queries_served=self._queries_served,
                plan_cache=CacheStats(**vars(self.plan_cache.stats)),
                plan_cache_size=len(self.plan_cache),
                database_version=self._version,
                statistics_rebuilds=self._statistics_rebuilds,
                materialized_results=len(self._materialized),
                materialized_hits=self._materialized_hits,
                incremental_refreshes=self._incremental_refreshes,
                metrics_histories=len(self._history),
                queries_failed=self._queries_failed,
            )

    def metrics_history(self) -> Dict[str, QueryMetricsHistory]:
        """Cumulative per-fingerprint serving metrics (survives invalidation)."""
        with self._state_lock:
            return {
                fingerprint: history.copy()
                for fingerprint, history in self._history.items()
            }

    def stats_snapshot(self) -> Dict[str, object]:
        """A JSON-ready dump of everything the service measures.

        Combines the serving-layer counters (:meth:`stats`), the cumulative
        per-fingerprint histories (with their exec-time percentiles) and the
        per-service instrument registry — the payload behind
        ``repro serve --stats-json``.
        """
        history = self.metrics_history()
        return {
            "stats": self.stats().as_dict(),
            "history": {
                fingerprint: record.as_dict()
                for fingerprint, record in sorted(history.items())
            },
            "metrics": self.metrics.as_dict(),
        }

    def materializations(self) -> Dict[PlanKey, Materialization]:
        """The registered materializations (snapshot of the mapping)."""
        with self._plan_lock:
            return dict(self._materialized)

    def __repr__(self) -> str:
        return (
            f"QueryService(relations={len(self.database)}, "
            f"strategy={self.default_strategy!r}, "
            f"backend={self.gumbo.backend.name!r}, cache={self.plan_cache!r})"
        )
