"""Relations: named, fixed-arity collections of tuples with byte accounting.

The cost model of the paper operates on data sizes in megabytes.  In the
paper's experiments, a guard relation of 100M 4-ary tuples occupies 4 GB
(about 10 bytes per field) and a conditional relation of 100M unary tuples
occupies 1 GB.  :class:`Relation` therefore carries a ``bytes_per_field``
parameter (default 10) used by :meth:`Relation.size_bytes` and
:meth:`Relation.size_mb`, so that the simulator's byte accounting matches the
paper's data-volume assumptions without materialising on-disk files.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Set, Tuple

#: Default storage footprint of a single field, in bytes.  Calibrated so that
#: the paper's relations (4 GB for 100M 4-ary tuples, 1 GB for 100M unary
#: tuples) are reproduced exactly.
DEFAULT_BYTES_PER_FIELD = 10

#: Hadoop charges 16 bytes of metadata for every key-value pair output by a
#: map task (paper, footnote 2).  Exposed here because relation-level size
#: estimates are reused when predicting map output sizes.
MAP_OUTPUT_METADATA_BYTES = 16


class SchemaError(ValueError):
    """Raised when tuples do not match a relation's declared arity."""


@dataclass
class Relation:
    """A named relation holding a set of equal-arity tuples.

    Tuples are stored as a set (bag semantics are not needed for semi-join
    style queries: the paper's operators are set-based).  The class tracks
    arity, supports iteration in a deterministic (sorted-by-insertion) order
    when requested, and provides the size estimates used by the cost model.
    """

    name: str
    arity: int
    bytes_per_field: int = DEFAULT_BYTES_PER_FIELD
    _tuples: Set[Tuple[object, ...]] = field(default_factory=set, repr=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("relation name must be non-empty")
        if self.arity < 1:
            raise ValueError("relation arity must be >= 1")
        if self.bytes_per_field <= 0:
            raise ValueError("bytes_per_field must be positive")

    # -- construction ------------------------------------------------------

    @classmethod
    def from_tuples(
        cls,
        name: str,
        tuples: Iterable[Sequence[object]],
        arity: Optional[int] = None,
        bytes_per_field: int = DEFAULT_BYTES_PER_FIELD,
    ) -> "Relation":
        """Build a relation from an iterable of tuples.

        When *arity* is omitted it is inferred from the first tuple; an empty
        iterable then raises :class:`SchemaError`.
        """
        materialised = [tuple(t) for t in tuples]
        if arity is None:
            if not materialised:
                raise SchemaError(
                    f"cannot infer arity of empty relation {name!r}; pass arity="
                )
            arity = len(materialised[0])
        relation = cls(name, arity, bytes_per_field)
        for row in materialised:
            relation.add(row)
        return relation

    # -- mutation ----------------------------------------------------------

    def add(self, row: Sequence[object]) -> None:
        """Insert a tuple, validating its arity."""
        row = tuple(row)
        if len(row) != self.arity:
            raise SchemaError(
                f"tuple {row!r} has arity {len(row)}, relation {self.name!r} "
                f"expects {self.arity}"
            )
        self._tuples.add(row)

    def update(self, rows: Iterable[Sequence[object]]) -> None:
        """Insert many tuples."""
        for row in rows:
            self.add(row)

    def discard(self, row: Sequence[object]) -> None:
        """Remove a tuple if present."""
        self._tuples.discard(tuple(row))

    def clear(self) -> None:
        """Remove all tuples."""
        self._tuples.clear()

    # -- access --------------------------------------------------------------

    def __contains__(self, row: Sequence[object]) -> bool:
        return tuple(row) in self._tuples

    def __iter__(self) -> Iterator[Tuple[object, ...]]:
        return iter(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def __bool__(self) -> bool:
        return bool(self._tuples)

    def tuples(self) -> Set[Tuple[object, ...]]:
        """The underlying tuple set (a live reference, treat as read-only)."""
        return self._tuples

    def sorted_tuples(self) -> List[Tuple[object, ...]]:
        """Tuples in a deterministic sorted order (useful for tests/reports)."""
        return sorted(self._tuples, key=repr)

    def copy(self, name: Optional[str] = None) -> "Relation":
        """A shallow copy, optionally renamed."""
        clone = Relation(name or self.name, self.arity, self.bytes_per_field)
        clone._tuples = set(self._tuples)
        return clone

    # -- size accounting -----------------------------------------------------

    @property
    def tuple_size_bytes(self) -> int:
        """Size of a single tuple in bytes under the linear size model."""
        return self.arity * self.bytes_per_field

    def size_bytes(self) -> int:
        """Total size of the relation in bytes."""
        return len(self._tuples) * self.tuple_size_bytes

    def size_mb(self) -> float:
        """Total size of the relation in MB (the unit used by the cost model)."""
        return self.size_bytes() / (1024.0 * 1024.0)

    def __repr__(self) -> str:
        return (
            f"Relation(name={self.name!r}, arity={self.arity}, "
            f"tuples={len(self._tuples)})"
        )
