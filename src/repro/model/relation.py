"""Relations: named, fixed-arity collections of tuples with byte accounting.

The cost model of the paper operates on data sizes in megabytes.  In the
paper's experiments, a guard relation of 100M 4-ary tuples occupies 4 GB
(about 10 bytes per field) and a conditional relation of 100M unary tuples
occupies 1 GB.  :class:`Relation` therefore carries a ``bytes_per_field``
parameter (default 10) used by :meth:`Relation.size_bytes` and
:meth:`Relation.size_mb`, so that the simulator's byte accounting matches the
paper's data-volume assumptions without materialising on-disk files.

Two execution fast paths live here as well:

* :meth:`Relation.sorted_tuples` caches its deterministic ordering (computed
  with cheap precomputed type-tagged sort keys instead of the former
  ``repr``-string sort) and invalidates the cache on mutation — every job run
  reads each input relation in this order, so re-sorting per job dominated
  the interpreted engine's profile;
* :meth:`Relation.copy` is copy-on-write: the tuple set is shared until
  either side mutates, which makes :meth:`Database.copy
  <repro.model.database.Database.copy>` (called once per program execution)
  O(#relations) instead of O(#tuples).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Set, Tuple

#: Default storage footprint of a single field, in bytes.  Calibrated so that
#: the paper's relations (4 GB for 100M 4-ary tuples, 1 GB for 100M unary
#: tuples) are reproduced exactly.
DEFAULT_BYTES_PER_FIELD = 10

#: Hadoop charges 16 bytes of metadata for every key-value pair output by a
#: map task (paper, footnote 2).  Exposed here because relation-level size
#: estimates are reused when predicting map output sizes.
MAP_OUTPUT_METADATA_BYTES = 16


class SchemaError(ValueError):
    """Raised when tuples do not match a relation's declared arity."""


def value_sort_key(value: object) -> Tuple[object, ...]:
    """A deterministic, type-tagged sort key for a single data value.

    Values are bucketed by a type tag (so mixed-type columns never raise
    ``TypeError`` during comparison) and ordered naturally within a bucket.
    Distinct members of one tuple *set* always receive distinct keys for the
    common value types (numbers, strings), because values comparing equal —
    ``1``/``True``/``1.0`` — already collapse inside the set itself.
    """
    if value is None:
        return ("#0",)
    kind = type(value)
    if kind is int or kind is float or kind is bool:
        if value != value:  # NaN: unordered under <, needs its own bucket
            return ("#1",)
        return ("#n", value)
    if kind is str:
        return ("#s", value)
    if kind is tuple:
        return ("#t", tuple(value_sort_key(v) for v in value))
    if isinstance(value, (int, float)):  # bools/ints behind subclasses
        return ("#n", float(value))
    if isinstance(value, str):
        return ("#s", str(value))
    return ("#r", kind.__name__, repr(value))


def tuple_sort_key(row: object) -> Tuple[object, ...]:
    """Type-tagged sort key for a tuple (a stored row or a shuffle key)."""
    if isinstance(row, tuple):
        return tuple(value_sort_key(v) for v in row)
    return (value_sort_key(row),)


def _naturally_sortable(tuples: Iterable[Tuple[object, ...]]) -> bool:
    """Whether plain tuple comparison equals the type-tagged ordering.

    True when every column holds only numbers (int/float, bools excluded) or
    only strings: element comparisons then never cross type buckets, so the
    natural order coincides with :func:`tuple_sort_key`'s — and Python's
    C-level tuple comparison is several times faster than key construction.
    The verdict is a pure function of the stored values, so every process
    sorts identically whatever its set iteration order.
    """
    numeric: set = set()
    stringy: set = set()
    for row in tuples:
        for index, value in enumerate(row):
            kind = type(value)
            if kind is int or kind is float:
                if value != value:  # NaN poisons natural comparison
                    return False
                numeric.add(index)
            elif kind is str:
                stringy.add(index)
            else:
                return False
    return not (numeric & stringy)


@dataclass
class Relation:
    """A named relation holding a set of equal-arity tuples.

    Tuples are stored as a set (bag semantics are not needed for semi-join
    style queries: the paper's operators are set-based).  The class tracks
    arity, supports iteration in a deterministic (sorted-by-insertion) order
    when requested, and provides the size estimates used by the cost model.
    """

    name: str
    arity: int
    bytes_per_field: int = DEFAULT_BYTES_PER_FIELD
    _tuples: Set[Tuple[object, ...]] = field(default_factory=set, repr=False)
    #: Cached deterministic ordering (invalidated on mutation, shared by
    #: copy-on-write clones); excluded from equality like the cache it is.
    _sorted: Optional[List[Tuple[object, ...]]] = field(
        default=None, repr=False, compare=False
    )
    #: True while ``_tuples`` is shared with a copy-on-write sibling.
    _shared: bool = field(default=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("relation name must be non-empty")
        if self.arity < 1:
            raise ValueError("relation arity must be >= 1")
        if self.bytes_per_field <= 0:
            raise ValueError("bytes_per_field must be positive")

    # -- construction ------------------------------------------------------

    @classmethod
    def from_tuples(
        cls,
        name: str,
        tuples: Iterable[Sequence[object]],
        arity: Optional[int] = None,
        bytes_per_field: int = DEFAULT_BYTES_PER_FIELD,
    ) -> "Relation":
        """Build a relation from an iterable of tuples.

        When *arity* is omitted it is inferred from the first tuple; an empty
        iterable then raises :class:`SchemaError`.
        """
        materialised = [tuple(t) for t in tuples]
        if arity is None:
            if not materialised:
                raise SchemaError(
                    f"cannot infer arity of empty relation {name!r}; pass arity="
                )
            arity = len(materialised[0])
        relation = cls(name, arity, bytes_per_field)
        relation.update(materialised)
        return relation

    # -- mutation ----------------------------------------------------------

    def _prepare_mutation(self) -> None:
        """Detach from copy-on-write siblings and drop the sort cache."""
        if self._shared:
            self._tuples = set(self._tuples)
            self._shared = False
        self._sorted = None

    def add(self, row: Sequence[object]) -> None:
        """Insert a tuple, validating its arity."""
        row = tuple(row)
        if len(row) != self.arity:
            raise SchemaError(
                f"tuple {row!r} has arity {len(row)}, relation {self.name!r} "
                f"expects {self.arity}"
            )
        self._prepare_mutation()
        self._tuples.add(row)

    def update(self, rows: Iterable[Sequence[object]]) -> None:
        """Insert many tuples, validating their arities in one batch pass."""
        materialised = [row if isinstance(row, tuple) else tuple(row) for row in rows]
        arity = self.arity
        for row in materialised:
            if len(row) != arity:
                raise SchemaError(
                    f"tuple {row!r} has arity {len(row)}, relation "
                    f"{self.name!r} expects {arity}"
                )
        if not materialised:
            return
        self._prepare_mutation()
        self._tuples.update(materialised)

    def discard(self, row: Sequence[object]) -> None:
        """Remove a tuple if present."""
        self._prepare_mutation()
        self._tuples.discard(tuple(row))

    def clear(self) -> None:
        """Remove all tuples."""
        if self._shared:
            # Cheaper than materialising a copy just to empty it.
            self._tuples = set()
            self._shared = False
        else:
            self._tuples.clear()
        self._sorted = None

    # -- access --------------------------------------------------------------

    def __contains__(self, row: Sequence[object]) -> bool:
        return tuple(row) in self._tuples

    def __iter__(self) -> Iterator[Tuple[object, ...]]:
        return iter(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def __bool__(self) -> bool:
        return bool(self._tuples)

    def tuples(self) -> Set[Tuple[object, ...]]:
        """The underlying tuple set (a live reference, treat as read-only)."""
        return self._tuples

    def sorted_tuples(self) -> List[Tuple[object, ...]]:
        """Tuples in a deterministic sorted order (useful for tests/reports).

        The ordering uses precomputed type-tagged sort keys (see
        :func:`tuple_sort_key`) and is cached until the relation mutates; the
        returned list is the cache itself — treat it as read-only.
        """
        if self._sorted is None:
            if _naturally_sortable(self._tuples):
                self._sorted = sorted(self._tuples)
            else:
                try:
                    self._sorted = sorted(self._tuples, key=tuple_sort_key)
                except TypeError:  # exotic incomparable values: repr fallback
                    self._sorted = sorted(self._tuples, key=repr)
        return self._sorted

    def copy(self, name: Optional[str] = None) -> "Relation":
        """A copy-on-write clone, optionally renamed.

        The tuple set (and the sort-order cache) are shared until either side
        mutates, at which point the mutating side detaches.
        """
        clone = Relation(name or self.name, self.arity, self.bytes_per_field)
        clone._tuples = self._tuples
        clone._sorted = self._sorted
        clone._shared = True
        self._shared = True
        return clone

    # -- size accounting -----------------------------------------------------

    @property
    def tuple_size_bytes(self) -> int:
        """Size of a single tuple in bytes under the linear size model."""
        return self.arity * self.bytes_per_field

    def size_bytes(self) -> int:
        """Total size of the relation in bytes."""
        return len(self._tuples) * self.tuple_size_bytes

    def size_mb(self) -> float:
        """Total size of the relation in MB (the unit used by the cost model)."""
        return self.size_bytes() / (1024.0 * 1024.0)

    def __repr__(self) -> str:
        return (
            f"Relation(name={self.name!r}, arity={self.arity}, "
            f"tuples={len(self._tuples)})"
        )
