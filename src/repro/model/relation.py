"""Relations: named, fixed-arity collections of tuples with byte accounting.

The cost model of the paper operates on data sizes in megabytes.  In the
paper's experiments, a guard relation of 100M 4-ary tuples occupies 4 GB
(about 10 bytes per field) and a conditional relation of 100M unary tuples
occupies 1 GB.  :class:`Relation` therefore carries a ``bytes_per_field``
parameter (default 10) used by :meth:`Relation.size_bytes` and
:meth:`Relation.size_mb`, so that the simulator's byte accounting matches the
paper's data-volume assumptions without materialising on-disk files.

Storage layout
--------------

Rows are canonically a *set of tuples* (set semantics match the paper's
operators), but the execution fast paths read the relation through two
derived, cached views:

* :meth:`Relation.sorted_tuples` — the deterministic row-major ordering every
  backend iterates (computed with cheap precomputed type-tagged sort keys and
  cached until mutation);
* :meth:`Relation.columns` — a :class:`ColumnBlock`, the column-major view of
  the sorted rows.  The batch-kernel path slices join keys and projections
  out of it as whole columns (one C-level ``zip`` per batch instead of a
  Python-level itemgetter per row), and the parallel backend ships map chunks
  as typed packed columns (``array('q')``/``array('d')``) instead of pickling
  row tuples one by one.

Both caches invalidate on mutation and are shared across copy-on-write
clones: :meth:`Relation.copy` shares the tuple set *and* a :class:`_ShareState`
holding the sorted/columnar caches, so a base relation warmed by one program
run stays warm for the next even though each run works on a fresh
``Database.copy()``.  Share tracking is counted — when every clone of a
relation has died (or detached by mutating), the survivor mutates in place
again instead of paying a full set copy forever.
"""

from __future__ import annotations

import math
import struct
import weakref
from array import array
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

#: Default storage footprint of a single field, in bytes.  Calibrated so that
#: the paper's relations (4 GB for 100M 4-ary tuples, 1 GB for 100M unary
#: tuples) are reproduced exactly.
DEFAULT_BYTES_PER_FIELD = 10

#: Hadoop charges 16 bytes of metadata for every key-value pair output by a
#: map task (paper, footnote 2).  Exposed here because relation-level size
#: estimates are reused when predicting map output sizes.
MAP_OUTPUT_METADATA_BYTES = 16


class SchemaError(ValueError):
    """Raised when tuples do not match a relation's declared arity."""


_pack_double = struct.Struct(">d").pack


def value_sort_key(value: object) -> Tuple[object, ...]:
    """A deterministic, type-tagged sort key for a single data value.

    Values are bucketed by a type tag (so mixed-type columns never raise
    ``TypeError`` during comparison) and ordered naturally within a bucket.
    Distinct members of one tuple *set* always receive distinct keys for the
    common value types (numbers, strings), because values comparing equal —
    ``1``/``True``/``1.0`` — already collapse inside the set itself.  NaNs
    (unordered under ``<``) sort into their own bucket, tie-broken by their
    IEEE-754 bit pattern so the order never depends on set iteration order.
    """
    if value is None:
        return ("#0",)
    kind = type(value)
    if kind is int or kind is float or kind is bool:
        if value != value:  # NaN: unordered under <, needs its own bucket
            return ("#1", _pack_double(value))
        return ("#n", value)
    if kind is str:
        return ("#s", value)
    if kind is tuple:
        return ("#t", tuple(value_sort_key(v) for v in value))
    if isinstance(value, (int, float)):  # bools/ints behind subclasses
        coerced = float(value)
        if coerced != coerced:
            return ("#1", _pack_double(coerced))
        return ("#n", coerced)
    if isinstance(value, str):
        return ("#s", str(value))
    return ("#r", kind.__name__, repr(value))


def tuple_sort_key(row: object) -> Tuple[object, ...]:
    """Type-tagged sort key for a tuple (a stored row or a shuffle key)."""
    if isinstance(row, tuple):
        return tuple(value_sort_key(v) for v in row)
    return (value_sort_key(row),)


_NUMERIC_KINDS = frozenset((int, float))


def _naturally_sortable(tuples: Iterable[Tuple[object, ...]]) -> bool:
    """Whether plain tuple comparison equals the type-tagged ordering.

    True when every column holds only numbers (int/float, bools excluded,
    no NaNs) or only strings: element comparisons then never cross type
    buckets, so the natural order coincides with :func:`tuple_sort_key`'s —
    and Python's C-level tuple comparison is several times faster than key
    construction.  The verdict is a pure function of the stored values, so
    every process sorts identically whatever its set iteration order.
    """
    if not tuples:
        return True
    for column in zip(*tuples):
        kinds = set(map(type, column))
        if kinds <= _NUMERIC_KINDS:
            if float in kinds and any(map(math.isnan, column)):
                return False
        elif kinds != {str}:
            return False
    return True


class ColumnBlock:
    """A column-major block of equal-arity rows (the kernel's unit of work).

    ``columns[i]`` holds column *i* of every row, in row order; ``rows()``
    lazily materialises the row-tuple compatibility view via one C-level
    ``zip``.  Blocks are Sequence-compatible (iteration/indexing yield row
    tuples), so code written against per-row chunks keeps working unchanged.
    """

    __slots__ = (
        "columns",
        "length",
        "arity",
        "_rows",
        "_keys",
        "_distinct",
        "_release",
        "_packed",
    )

    def __init__(
        self,
        columns: Tuple[Tuple[object, ...], ...],
        length: int,
        arity: Optional[int],
        rows: Optional[List[Tuple[object, ...]]] = None,
    ) -> None:
        self.columns = columns
        self.length = length
        self.arity = arity
        self._rows = rows
        self._keys: Optional[Dict[Tuple[int, ...], List[tuple]]] = None
        self._distinct: Optional[Dict[Tuple[int, ...], set]] = None
        self._release = None
        self._packed = None

    @classmethod
    def from_rows(
        cls,
        rows: Sequence[Tuple[object, ...]],
        arity: Optional[int] = None,
    ) -> "ColumnBlock":
        """Build a block from row tuples (arity inferred when rows exist)."""
        if not isinstance(rows, list):
            rows = list(rows)
        if not rows:
            return cls((), 0, arity, rows)
        columns = tuple(zip(*rows))
        return cls(columns, len(rows), len(columns), rows)

    @classmethod
    def attached(
        cls,
        columns: Tuple[object, ...],
        length: int,
        arity: Optional[int],
        release=None,
    ) -> "ColumnBlock":
        """A block over externally owned column buffers (the shm data plane).

        *columns* may be cast ``memoryview``s into a shared-memory segment:
        the zip-based row/key materialisation treats them exactly like
        tuples, and values read from ``'q'``/``'d'`` views are bit-identical
        to the :meth:`unpack` round trip (both create fresh Python scalars
        per row).  The optional *release* callback detaches the underlying
        segment; it runs once, from :meth:`release`.
        """
        block = cls(columns, length, arity)
        block._release = release
        return block

    def release(self) -> None:
        """Detach from externally owned buffers (no-op for ordinary blocks).

        Drops the buffer-backed columns so the backing shared-memory segment
        can be closed (a ``memoryview`` column would otherwise keep the
        mapping pinned), then runs the :meth:`attached` release callback.
        Any already-materialised row/key caches stay valid — they hold plain
        Python values — but no *new* materialisation is possible afterwards,
        so callers release only when done with the block.  Idempotent.
        """
        callback, self._release = self._release, None
        if callback is not None:
            self.columns = ()
            self._packed = None
            callback()

    def rows(self) -> List[Tuple[object, ...]]:
        """The row-tuple view of the block (cached after first use)."""
        if self._rows is None:
            self._rows = list(zip(*self.columns)) if self.columns else []
        return self._rows

    def key_tuples(self, positions: Sequence[int]) -> List[Tuple[object, ...]]:
        """Per-row tuples of the given column positions, via column slices.

        Equivalent to applying an itemgetter-based extractor to every row,
        but the whole batch is assembled by one C-level ``zip`` — and cached
        per position pattern, since blocks are immutable and long-lived
        relations are probed with the same join keys job after job.  Callers
        must treat the returned list as read-only.
        """
        positions = tuple(positions)
        cache = self._keys
        if cache is None:
            cache = self._keys = {}
        keys = cache.get(positions)
        if keys is not None:
            return keys
        if not positions:
            keys = [()] * self.length
        elif len(positions) == 1:
            keys = list(zip(self.columns[positions[0]]))
        else:
            keys = list(zip(*(self.columns[index] for index in positions)))
        cache[positions] = keys
        return keys

    def distinct_keys(self, positions: Sequence[int]) -> set:
        """The distinct :meth:`key_tuples` of the block, cached per pattern.

        Callers must treat the returned set as read-only.
        """
        positions = tuple(positions)
        cache = self._distinct
        if cache is None:
            cache = self._distinct = {}
        distinct = cache.get(positions)
        if distinct is None:
            distinct = cache[positions] = set(self.key_tuples(positions))
        return distinct

    def chunks(self, count: int) -> List["ColumnBlock"]:
        """Strided sub-blocks matching :func:`~repro.exec.partition.map_task_chunks`.

        Chunk *i* holds rows ``i, i+count, i+2*count, ...`` — the identical
        map-task boundaries of the interpreted path, which the per-chunk
        combiner accounting depends on.
        """
        if count <= 1:
            return [self]
        arity = self.arity
        out = []
        for index in range(count):
            strided = tuple(column[index::count] for column in self.columns)
            length = len(strided[0]) if strided else 0
            out.append(ColumnBlock(strided, length, arity))
        return out

    # -- typed packing (parallel-backend shipping) --------------------------

    def packed(self) -> Tuple[int, Optional[int], Tuple[Tuple[str, object], ...]]:
        """A compact picklable form: homogeneous int/float columns become
        typed ``array`` objects (machine representation, no per-value pickle
        records); anything else ships as the column tuple.

        Only columns whose every value is *exactly* ``int`` (bools would be
        silently coerced) or *exactly* ``float`` are packed; ``array('d')``
        round-trips IEEE-754 doubles bit-exactly (NaN payloads and ``-0.0``
        included).  Blocks are immutable, so the result is cached: shipping
        the same chunk twice (resident reloads, repeated waves over a warm
        relation) pays the typed-array conversion once.
        """
        if self._packed is not None:
            return self._packed
        packed_columns: List[Tuple[str, object]] = []
        for column in self.columns:
            kinds = set(map(type, column))
            if kinds == {int}:
                try:
                    packed_columns.append(("q", array("q", column)))
                    continue
                except OverflowError:  # beyond int64: ship objects
                    pass
            elif kinds == {float}:
                packed_columns.append(("d", array("d", column)))
                continue
            packed_columns.append(("o", column))
        self._packed = (self.length, self.arity, tuple(packed_columns))
        return self._packed

    @classmethod
    def unpack(
        cls, payload: Tuple[int, Optional[int], Tuple[Tuple[str, object], ...]]
    ) -> "ColumnBlock":
        """Rebuild a block from :meth:`packed` output."""
        length, arity, packed_columns = payload
        columns = tuple(
            column if kind == "o" else tuple(column.tolist())
            for kind, column in packed_columns
        )
        return cls(columns, length, arity)

    # -- Sequence compatibility ---------------------------------------------

    def __len__(self) -> int:
        return self.length

    def __iter__(self) -> Iterator[Tuple[object, ...]]:
        return iter(self.rows())

    def __getitem__(self, index):
        return self.rows()[index]

    def __repr__(self) -> str:
        return f"ColumnBlock(arity={self.arity}, rows={self.length})"


class _ShareState:
    """Bookkeeping shared by a family of copy-on-write clones.

    ``owners`` counts the relations currently sharing one tuple set; it is
    decremented when an owner mutates (detaching) *or is garbage collected*
    (via ``weakref.finalize``), so the last surviving owner knows it is alone
    and mutates in place instead of copying.  The sorted/columnar caches live
    here too, letting any sibling reuse an ordering a peer already computed.
    """

    __slots__ = ("owners", "sorted", "columns", "__weakref__")

    def __init__(self) -> None:
        self.owners = 0
        self.sorted: Optional[List[Tuple[object, ...]]] = None
        self.columns: Optional[ColumnBlock] = None


def _release_share(state: _ShareState) -> None:
    state.owners -= 1
    if state.owners <= 0:
        state.sorted = None
        state.columns = None


@dataclass
class Relation:
    """A named relation holding a set of equal-arity tuples.

    Tuples are stored as a set (bag semantics are not needed for semi-join
    style queries: the paper's operators are set-based).  The class tracks
    arity, supports iteration in a deterministic (sorted-by-insertion) order
    when requested, and provides the size estimates used by the cost model.
    """

    name: str
    arity: int
    bytes_per_field: int = DEFAULT_BYTES_PER_FIELD
    _tuples: Set[Tuple[object, ...]] = field(default_factory=set, repr=False)
    #: Cached deterministic ordering (invalidated on mutation, shared by
    #: copy-on-write clones); excluded from equality like the cache it is.
    _sorted: Optional[List[Tuple[object, ...]]] = field(
        default=None, repr=False, compare=False
    )
    #: Cached column-major view of the sorted rows (same lifecycle).
    _columns: Optional[ColumnBlock] = field(default=None, repr=False, compare=False)
    #: Non-None while ``_tuples`` is shared with copy-on-write siblings.
    _share: Optional[_ShareState] = field(default=None, repr=False, compare=False)
    _finalizer: Optional[object] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("relation name must be non-empty")
        if self.arity < 1:
            raise ValueError("relation arity must be >= 1")
        if self.bytes_per_field <= 0:
            raise ValueError("bytes_per_field must be positive")

    # -- construction ------------------------------------------------------

    @classmethod
    def from_tuples(
        cls,
        name: str,
        tuples: Iterable[Sequence[object]],
        arity: Optional[int] = None,
        bytes_per_field: int = DEFAULT_BYTES_PER_FIELD,
    ) -> "Relation":
        """Build a relation from an iterable of tuples.

        When *arity* is omitted it is inferred from the first tuple; an empty
        iterable then raises :class:`SchemaError`.
        """
        materialised = [tuple(t) for t in tuples]
        if arity is None:
            if not materialised:
                raise SchemaError(
                    f"cannot infer arity of empty relation {name!r}; pass arity="
                )
            arity = len(materialised[0])
        relation = cls(name, arity, bytes_per_field)
        relation.update(materialised)
        return relation

    # -- copy-on-write bookkeeping -----------------------------------------

    def _attach(self, state: _ShareState) -> None:
        self._share = state
        state.owners += 1
        self._finalizer = weakref.finalize(self, _release_share, state)

    def _detach(self) -> None:
        """Leave the share family (decrements the owner count exactly once)."""
        self._share = None
        finalizer = self._finalizer
        if finalizer is not None:
            self._finalizer = None
            finalizer()  # runs _release_share now, disarms the GC hook

    def _prepare_mutation(self) -> None:
        """Detach from copy-on-write siblings and drop the derived caches."""
        state = self._share
        if state is not None:
            if state.owners > 1:  # live siblings: copy before writing
                self._tuples = set(self._tuples)
            self._detach()
        self._sorted = None
        self._columns = None

    # -- mutation ----------------------------------------------------------

    def add(self, row: Sequence[object]) -> None:
        """Insert a tuple, validating its arity."""
        row = tuple(row)
        if len(row) != self.arity:
            raise SchemaError(
                f"tuple {row!r} has arity {len(row)}, relation {self.name!r} "
                f"expects {self.arity}"
            )
        self._prepare_mutation()
        self._tuples.add(row)

    def update(self, rows: Iterable[Sequence[object]]) -> None:
        """Insert many tuples, validating their arities in one batch pass."""
        if isinstance(rows, (set, frozenset)) and (
            not rows or set(map(type, rows)) == {tuple}
        ):
            materialised: Iterable[Tuple[object, ...]] = rows
        else:
            materialised = [
                row if isinstance(row, tuple) else tuple(row) for row in rows
            ]
        if not materialised:
            return
        arity = self.arity
        if set(map(len, materialised)) != {arity}:
            for row in materialised:
                if len(row) != arity:
                    raise SchemaError(
                        f"tuple {row!r} has arity {len(row)}, relation "
                        f"{self.name!r} expects {arity}"
                    )
        self._prepare_mutation()
        self._tuples.update(materialised)

    def discard(self, row: Sequence[object]) -> None:
        """Remove a tuple if present."""
        self._prepare_mutation()
        self._tuples.discard(tuple(row))

    def clear(self) -> None:
        """Remove all tuples."""
        state = self._share
        if state is not None:
            if state.owners > 1:
                # Cheaper than materialising a copy just to empty it.
                self._tuples = set()
            else:  # every clone died: the set is exclusively ours again
                self._tuples.clear()
            self._detach()
        else:
            self._tuples.clear()
        self._sorted = None
        self._columns = None

    # -- access --------------------------------------------------------------

    def __contains__(self, row: Sequence[object]) -> bool:
        return tuple(row) in self._tuples

    def __iter__(self) -> Iterator[Tuple[object, ...]]:
        return iter(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def __bool__(self) -> bool:
        return bool(self._tuples)

    def tuples(self) -> Set[Tuple[object, ...]]:
        """The underlying tuple set (a live reference, treat as read-only)."""
        return self._tuples

    def sorted_tuples(self) -> List[Tuple[object, ...]]:
        """Tuples in a deterministic sorted order (useful for tests/reports).

        The ordering uses precomputed type-tagged sort keys (see
        :func:`tuple_sort_key`) and is cached until the relation mutates; the
        returned list is the cache itself — treat it as read-only.
        """
        cached = self._sorted
        if cached is not None:
            return cached
        state = self._share
        if state is not None and state.sorted is not None:
            self._sorted = state.sorted
            return state.sorted
        if _naturally_sortable(self._tuples):
            result = sorted(self._tuples)
        else:
            try:
                result = sorted(self._tuples, key=tuple_sort_key)
            except TypeError:  # exotic incomparable values: repr fallback
                result = sorted(self._tuples, key=repr)
        self._sorted = result
        if state is not None:
            state.sorted = result
        return result

    def columns(self) -> ColumnBlock:
        """The column-major view of :meth:`sorted_tuples` (cached alike)."""
        cached = self._columns
        if cached is not None:
            return cached
        state = self._share
        if state is not None and state.columns is not None:
            self._columns = state.columns
            return state.columns
        block = ColumnBlock.from_rows(self.sorted_tuples(), self.arity)
        self._columns = block
        if state is not None:
            state.columns = block
        return block

    def column_chunks(self, mappers: int) -> List[ColumnBlock]:
        """Per-map-task column blocks with the canonical strided boundaries.

        Mirrors :func:`~repro.exec.partition.map_task_chunks` exactly (chunk
        count, stride and row order), so per-chunk combiner accounting is
        bit-identical to the interpreted path.
        """
        if mappers < 1:
            raise ValueError("mappers must be >= 1")
        count = min(mappers, len(self._tuples)) or 1
        return self.columns().chunks(count)

    def copy(self, name: Optional[str] = None) -> "Relation":
        """A copy-on-write clone, optionally renamed.

        The tuple set (and the sorted/columnar caches) are shared until
        either side mutates, at which point the mutating side detaches.
        Sharing is reference-counted: once every clone has detached or been
        garbage collected, the remaining owner mutates in place again.
        """
        state = self._share
        if state is None:
            state = _ShareState()
            self._attach(state)
        if state.sorted is None:
            state.sorted = self._sorted
        if state.columns is None:
            state.columns = self._columns
        clone = Relation(name or self.name, self.arity, self.bytes_per_field)
        clone._tuples = self._tuples
        clone._sorted = self._sorted if self._sorted is not None else state.sorted
        clone._columns = self._columns if self._columns is not None else state.columns
        clone._attach(state)
        return clone

    # -- pickling (share state is process-local) -----------------------------

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_share"] = None
        state["_finalizer"] = None
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)

    # -- size accounting -----------------------------------------------------

    @property
    def tuple_size_bytes(self) -> int:
        """Size of a single tuple in bytes under the linear size model."""
        return self.arity * self.bytes_per_field

    def size_bytes(self) -> int:
        """Total size of the relation in bytes."""
        return len(self._tuples) * self.tuple_size_bytes

    def size_mb(self) -> float:
        """Total size of the relation in MB (the unit used by the cost model)."""
        return self.size_bytes() / (1024.0 * 1024.0)

    def __repr__(self) -> str:
        return (
            f"Relation(name={self.name!r}, arity={self.arity}, "
            f"tuples={len(self._tuples)})"
        )
