"""Terms of the SGF query language: variables and constants.

The paper (Section 3.1) assumes a fixed infinite set ``D`` of data values and
a fixed infinite set ``V`` of variables, disjoint from ``D``.  A *term* is
either a data value (constant) or a variable.  Atoms are built from a relation
symbol and a vector of terms (see :mod:`repro.model.atoms`).

This module provides small immutable value classes for both kinds of terms,
plus helpers to coerce plain Python values into terms.  Constants wrap
arbitrary hashable Python values (ints and strings in practice); variables are
identified by their name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True, order=True)
class Variable:
    """A query variable such as ``x`` or ``y1``.

    Variables compare and hash by name, so two ``Variable("x")`` instances are
    interchangeable.  Names must be non-empty strings.
    """

    name: str

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValueError("variable name must be a non-empty string")

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"


@dataclass(frozen=True, order=True)
class Constant:
    """A data value appearing in a query, e.g. the ``4`` in ``R(x, y, 4)``.

    The wrapped value may be any hashable Python object; equality is value
    equality of the wrapped objects.
    """

    value: object

    def __str__(self) -> str:
        return repr(self.value)

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"


#: A term is either a variable or a constant.
Term = Union[Variable, Constant]


def is_variable(term: object) -> bool:
    """Return ``True`` if *term* is a :class:`Variable`."""
    return isinstance(term, Variable)


def is_constant(term: object) -> bool:
    """Return ``True`` if *term* is a :class:`Constant`."""
    return isinstance(term, Constant)


def as_term(value: object) -> Term:
    """Coerce *value* into a :class:`Term`.

    Strings are treated as variable names when they are valid Python
    identifiers starting with a lowercase letter (the convention used
    throughout the paper, e.g. ``x``, ``y1``, ``aut``); everything else is
    wrapped as a :class:`Constant`.  Existing terms are returned unchanged.

    This is a convenience used by the programmatic query-construction API;
    the parser (:mod:`repro.query.parser`) makes the distinction explicitly
    from the concrete syntax instead.
    """
    if isinstance(value, (Variable, Constant)):
        return value
    if isinstance(value, str) and value.isidentifier() and value[0].islower():
        return Variable(value)
    return Constant(value)


def variables_in(terms) -> tuple:
    """Return the tuple of distinct variables occurring in *terms*, in order."""
    seen = []
    for term in terms:
        if isinstance(term, Variable) and term not in seen:
            seen.append(term)
    return tuple(seen)
