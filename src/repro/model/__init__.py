"""Relational data model substrate.

Provides terms, atoms, facts, relations and databases — the vocabulary of
Section 3.1 / Section 4 of the paper.
"""

from .atoms import Atom, CompiledAtom, Fact, compile_atom, facts_conforming
from .database import Database, UnknownRelationError
from .relation import (
    DEFAULT_BYTES_PER_FIELD,
    MAP_OUTPUT_METADATA_BYTES,
    Relation,
    SchemaError,
    tuple_sort_key,
)
from .terms import (
    Constant,
    Term,
    Variable,
    as_term,
    is_constant,
    is_variable,
    variables_in,
)

__all__ = [
    "Atom",
    "CompiledAtom",
    "Constant",
    "Database",
    "DEFAULT_BYTES_PER_FIELD",
    "Fact",
    "compile_atom",
    "tuple_sort_key",
    "MAP_OUTPUT_METADATA_BYTES",
    "Relation",
    "SchemaError",
    "Term",
    "UnknownRelationError",
    "Variable",
    "as_term",
    "facts_conforming",
    "is_constant",
    "is_variable",
    "variables_in",
]
