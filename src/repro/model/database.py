"""The database: a named collection of relations.

A database ``DB`` in the paper is a finite set of facts; operationally we
store it as a mapping from relation symbol to :class:`~repro.model.relation.Relation`.
The class offers fact-level access (so the MapReduce simulator can iterate
over "all facts of the input") as well as relation-level access used by the
planner and cost estimator.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .atoms import Atom, Fact
from .relation import DEFAULT_BYTES_PER_FIELD, Relation, SchemaError


class UnknownRelationError(KeyError):
    """Raised when a query references a relation not present in the database."""


class Database:
    """An in-memory database mapping relation names to relations."""

    def __init__(self, relations: Optional[Iterable[Relation]] = None) -> None:
        self._relations: Dict[str, Relation] = {}
        if relations:
            for relation in relations:
                self.add_relation(relation)

    # -- construction --------------------------------------------------------

    @classmethod
    def from_dict(
        cls,
        data: Dict[str, Iterable[Sequence[object]]],
        bytes_per_field: int = DEFAULT_BYTES_PER_FIELD,
    ) -> "Database":
        """Build a database from ``{"R": [(1, 2), ...], ...}``.

        Empty relations cannot be created this way (their arity would be
        unknown); use :meth:`ensure_relation` for those.
        """
        db = cls()
        for name, rows in data.items():
            db.add_relation(
                Relation.from_tuples(name, rows, bytes_per_field=bytes_per_field)
            )
        return db

    def add_relation(self, relation: Relation) -> None:
        """Register *relation*, replacing any previous one with the same name."""
        self._relations[relation.name] = relation

    def ensure_relation(
        self,
        name: str,
        arity: int,
        bytes_per_field: int = DEFAULT_BYTES_PER_FIELD,
    ) -> Relation:
        """Return the relation called *name*, creating an empty one if needed.

        Raises :class:`SchemaError` when an existing relation has a different
        arity.
        """
        existing = self._relations.get(name)
        if existing is not None:
            if existing.arity != arity:
                raise SchemaError(
                    f"relation {name!r} exists with arity {existing.arity}, "
                    f"requested {arity}"
                )
            return existing
        relation = Relation(name, arity, bytes_per_field)
        self._relations[name] = relation
        return relation

    # -- access --------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __getitem__(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError as exc:
            raise UnknownRelationError(name) from exc

    def get(self, name: str) -> Optional[Relation]:
        return self._relations.get(name)

    def relation_names(self) -> List[str]:
        """Sorted list of relation names."""
        return sorted(self._relations)

    def relations(self) -> List[Relation]:
        """Relations sorted by name."""
        return [self._relations[name] for name in self.relation_names()]

    def __iter__(self) -> Iterator[Relation]:
        return iter(self.relations())

    def __len__(self) -> int:
        return len(self._relations)

    # -- fact-level view ------------------------------------------------------

    def facts(self, names: Optional[Iterable[str]] = None) -> Iterator[Fact]:
        """Iterate over all facts, optionally restricted to relations *names*."""
        selected = self.relation_names() if names is None else list(names)
        for name in selected:
            relation = self[name]
            for row in relation:
                yield Fact(name, row)

    def contains_fact(self, fact: Fact) -> bool:
        relation = self._relations.get(fact.relation)
        return relation is not None and fact.values in relation

    def matching_facts(self, atom: Atom) -> Iterator[Fact]:
        """All facts of the database conforming to *atom*."""
        relation = self._relations.get(atom.relation)
        if relation is None:
            return
        for row in relation:
            if atom.conforms(row):
                yield Fact(atom.relation, row)

    # -- size accounting -------------------------------------------------------

    def size_bytes(self, names: Optional[Iterable[str]] = None) -> int:
        selected = self.relation_names() if names is None else list(names)
        return sum(self[name].size_bytes() for name in selected)

    def size_mb(self, names: Optional[Iterable[str]] = None) -> float:
        return self.size_bytes(names) / (1024.0 * 1024.0)

    # -- misc -------------------------------------------------------------------

    def copy(self) -> "Database":
        """An isolated copy: copy-on-write relation clones (O(#relations)).

        Each relation's tuple set is shared with its clone until either side
        mutates (see :meth:`Relation.copy <repro.model.relation.Relation.copy>`),
        so per-execution database copies — ``run_program`` makes one — cost
        nothing until an output actually lands.
        """
        return Database(relation.copy() for relation in self.relations())

    def summary(self) -> List[Tuple[str, int, float]]:
        """(name, cardinality, size MB) triples for reporting."""
        return [
            (rel.name, len(rel), rel.size_mb()) for rel in self.relations()
        ]

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{rel.name}[{len(rel)}]" for rel in self.relations()
        )
        return f"Database({inner})"
