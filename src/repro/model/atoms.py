"""Atoms, facts, conformance and projection.

These are the notational building blocks of Section 4 of the paper:

* an *atom* is an expression ``R(t1, ..., tn)`` where ``R`` is a relation
  symbol of arity ``n`` and each ``ti`` is a term (variable or constant);
* a *fact* is an atom whose terms are all data values, i.e. a concrete tuple
  stored in the database;
* a tuple ``a = (a1, ..., an)`` *conforms* to a term vector ``t = (t1, ..., tn)``
  when equal terms are bound to equal values and constants match exactly
  (Section 4, "conforms to");
* the *projection* ``pi_{alpha; x}(f)`` of a fact ``f`` conforming to atom
  ``alpha`` onto a variable sequence ``x`` extracts the values bound to those
  variables.

All classes are immutable and hashable so they can be used as dictionary /
set keys throughout the MapReduce simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from operator import itemgetter
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .terms import Constant, Term, Variable, as_term


@dataclass(frozen=True)
class Atom:
    """An atom ``R(t1, ..., tn)`` over relation symbol *relation*.

    Parameters
    ----------
    relation:
        The relation symbol (name) of the atom.
    terms:
        The tuple of terms.  Use :meth:`Atom.of` to build an atom from plain
        Python values (strings become variables, other values constants).
    """

    relation: str
    terms: Tuple[Term, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.relation, str) or not self.relation:
            raise ValueError("relation symbol must be a non-empty string")
        object.__setattr__(self, "terms", tuple(self.terms))

    # -- constructors ------------------------------------------------------

    @classmethod
    def of(cls, relation: str, *values: object) -> "Atom":
        """Build an atom coercing *values* into terms via :func:`as_term`."""
        return cls(relation, tuple(as_term(v) for v in values))

    # -- basic properties --------------------------------------------------

    @property
    def arity(self) -> int:
        """Number of term positions of the atom."""
        return len(self.terms)

    @property
    def variables(self) -> Tuple[Variable, ...]:
        """Distinct variables of the atom, in order of first occurrence."""
        seen = []
        for term in self.terms:
            if isinstance(term, Variable) and term not in seen:
                seen.append(term)
        return tuple(seen)

    @property
    def constants(self) -> Tuple[Constant, ...]:
        """Distinct constants of the atom, in order of first occurrence."""
        seen = []
        for term in self.terms:
            if isinstance(term, Constant) and term not in seen:
                seen.append(term)
        return tuple(seen)

    def variable_set(self) -> frozenset:
        """The set of variables occurring in the atom."""
        return frozenset(t for t in self.terms if isinstance(t, Variable))

    def shared_variables(self, other: "Atom") -> frozenset:
        """Variables occurring in both this atom and *other*."""
        return self.variable_set() & other.variable_set()

    def positions_of(self, variable: Variable) -> Tuple[int, ...]:
        """All positions (0-based) where *variable* occurs."""
        return tuple(i for i, t in enumerate(self.terms) if t == variable)

    def rename(self, mapping: Dict[Variable, Variable]) -> "Atom":
        """Return a copy with variables renamed according to *mapping*."""
        new_terms = tuple(
            mapping.get(t, t) if isinstance(t, Variable) else t for t in self.terms
        )
        return Atom(self.relation, new_terms)

    # -- conformance and matching ------------------------------------------

    def conforms(self, values: Sequence[object]) -> bool:
        """Check whether the value tuple *values* conforms to this atom.

        Conformance (Section 4): equal terms must map to equal values, and
        constant terms must equal the corresponding value.
        """
        values = tuple(values)
        if len(values) != len(self.terms):
            return False
        binding: Dict[Variable, object] = {}
        for term, value in zip(self.terms, values):
            if isinstance(term, Constant):
                if term.value != value:
                    return False
            else:
                bound = binding.get(term, _UNBOUND)
                if bound is _UNBOUND:
                    binding[term] = value
                elif bound != value:
                    return False
        return True

    def match(self, values: Sequence[object]) -> Optional[Dict[Variable, object]]:
        """Return the substitution binding this atom's variables to *values*.

        Returns ``None`` when *values* does not conform to the atom; otherwise
        a dictionary mapping each variable to its bound data value.
        """
        values = tuple(values)
        if len(values) != len(self.terms):
            return None
        binding: Dict[Variable, object] = {}
        for term, value in zip(self.terms, values):
            if isinstance(term, Constant):
                if term.value != value:
                    return None
            else:
                bound = binding.get(term, _UNBOUND)
                if bound is _UNBOUND:
                    binding[term] = value
                elif bound != value:
                    return None
        return binding

    def project(
        self, values: Sequence[object], variables: Sequence[Variable]
    ) -> Tuple[object, ...]:
        """Project a conforming value tuple onto *variables*.

        This is ``pi_{alpha; x}(f)`` from the paper.  Raises ``ValueError``
        when *values* does not conform to the atom or a requested variable
        does not occur in the atom.
        """
        binding = self.match(values)
        if binding is None:
            raise ValueError(f"{values!r} does not conform to {self}")
        try:
            return tuple(binding[v] for v in variables)
        except KeyError as exc:  # pragma: no cover - defensive
            raise ValueError(f"variable {exc} does not occur in {self}") from exc

    def substitute(self, binding: Dict[Variable, object]) -> Tuple[object, ...]:
        """Apply a substitution to produce a concrete value tuple.

        Every variable of the atom must be bound in *binding*.
        """
        out = []
        for term in self.terms:
            if isinstance(term, Constant):
                out.append(term.value)
            else:
                if term not in binding:
                    raise ValueError(f"unbound variable {term} in substitution")
                out.append(binding[term])
        return tuple(out)

    # -- compilation ---------------------------------------------------------

    def compile(self) -> "CompiledAtom":
        """The batch-kernel matcher for this atom (cached per atom value).

        A :class:`CompiledAtom` precomputes the constant/repeated-variable
        checks and the first-occurrence position of every variable, so the
        kernel execution path can test conformance and extract join keys /
        projections with plain index arithmetic — no per-row binding dict.
        """
        return compile_atom(self)

    # -- rendering -----------------------------------------------------------

    def __str__(self) -> str:
        inner = ", ".join(str(t) for t in self.terms)
        return f"{self.relation}({inner})"

    def __repr__(self) -> str:
        return f"Atom({self.relation!r}, {self.terms!r})"


class CompiledAtom:
    """Precomputed conformance checks and extractors for one atom.

    Attributes
    ----------
    arity:
        Number of term positions; rows of a different length never conform.
    matcher:
        ``None`` when the atom is unrestricted (no constants, no repeated
        variables) — every row of the right arity conforms — otherwise a
        predicate ``row -> bool`` equivalent to :meth:`Atom.conforms` for
        rows of the right arity.
    """

    __slots__ = ("atom", "arity", "matcher", "_positions")

    def __init__(self, atom: Atom) -> None:
        self.atom = atom
        self.arity = atom.arity
        const_checks: List[Tuple[int, object]] = []
        positions: Dict[Variable, int] = {}
        eq_checks: List[Tuple[int, int]] = []
        for index, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                const_checks.append((index, term.value))
            elif term in positions:
                eq_checks.append((positions[term], index))
            else:
                positions[term] = index
        self._positions = positions
        self.matcher = _build_matcher(tuple(const_checks), tuple(eq_checks))

    def conforms(self, row: Tuple[object, ...]) -> bool:
        """Whether *row* conforms to the atom (arity check included)."""
        if len(row) != self.arity:
            return False
        return self.matcher is None or self.matcher(row)

    def positions(self, variables: Sequence[Variable]) -> Tuple[int, ...]:
        """First-occurrence column positions of *variables*, in order.

        The columnar kernel path slices these positions out of a
        :class:`~repro.model.relation.ColumnBlock` wholesale — one ``zip``
        per batch instead of an extractor call per row.  Raises ``KeyError``
        when a variable does not occur in the atom.
        """
        return tuple(self._positions[v] for v in variables)

    def extractor(
        self, variables: Sequence[Variable]
    ) -> Callable[[Tuple[object, ...]], Tuple[object, ...]]:
        """A ``row -> tuple`` function projecting onto *variables*.

        Equivalent to binding the row against the atom and reading the given
        variables, but via precomputed positions.  Raises ``KeyError`` when a
        variable does not occur in the atom.
        """
        indices = tuple(self._positions[v] for v in variables)
        return tuple_extractor(indices)


def _build_matcher(
    const_checks: Tuple[Tuple[int, object], ...],
    eq_checks: Tuple[Tuple[int, int], ...],
) -> Optional[Callable[[Tuple[object, ...]], bool]]:
    if not const_checks and not eq_checks:
        return None
    if not eq_checks and len(const_checks) == 1:
        ((index, value),) = const_checks
        return lambda row: row[index] == value

    def matcher(row: Tuple[object, ...]) -> bool:
        for index, value in const_checks:
            if row[index] != value:
                return False
        for first, other in eq_checks:
            if row[first] != row[other]:
                return False
        return True

    return matcher


def tuple_extractor(
    indices: Tuple[int, ...],
) -> Callable[[Tuple[object, ...]], Tuple[object, ...]]:
    """A function extracting the given positions of a row as a tuple."""
    if not indices:
        return lambda row: ()
    if len(indices) == 1:
        index = indices[0]
        return lambda row: (row[index],)
    return itemgetter(*indices)


@lru_cache(maxsize=4096)
def compile_atom(atom: Atom) -> CompiledAtom:
    """Compile (and memoise) the kernel matcher for *atom*."""
    return CompiledAtom(atom)


class _Unbound:
    """Sentinel distinguishing 'not yet bound' from a bound ``None`` value."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<unbound>"


_UNBOUND = _Unbound()


@dataclass(frozen=True)
class Fact:
    """A concrete database fact ``R(a1, ..., an)``."""

    relation: str
    values: Tuple[object, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(self.values))

    @property
    def arity(self) -> int:
        return len(self.values)

    def conforms_to(self, atom: Atom) -> bool:
        """``f |= alpha``: this fact conforms to *atom*."""
        return self.relation == atom.relation and atom.conforms(self.values)

    def project(self, atom: Atom, variables: Sequence[Variable]) -> Tuple[object, ...]:
        """``pi_{alpha; x}(f)`` — project onto *variables* via *atom*."""
        if self.relation != atom.relation:
            raise ValueError(
                f"fact relation {self.relation!r} differs from atom relation "
                f"{atom.relation!r}"
            )
        return atom.project(self.values, variables)

    def __str__(self) -> str:
        inner = ", ".join(repr(v) for v in self.values)
        return f"{self.relation}({inner})"


def facts_conforming(facts: Iterable[Fact], atom: Atom) -> Iterable[Fact]:
    """Yield the facts from *facts* that conform to *atom*."""
    for fact in facts:
        if fact.conforms_to(atom):
            yield fact
