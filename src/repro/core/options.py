"""Evaluation options: the Gumbo optimisations of Section 5.1.

The options bundle is passed to every job builder and plan strategy so that
individual optimisations can be switched off for the ablation benchmarks.
It also carries the *execution backend* selection (serial in-process
simulation vs the true multiprocessing runtime), so backend choice threads
through :class:`~repro.core.gumbo.Gumbo` and the dynamic executor the same
way the optimisation switches do.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..exec.base import SERIAL
from ..mapreduce.kernels import KERNEL_AUTO, KERNEL_MODES


@dataclass(frozen=True)
class GumboOptions:
    """Switches for Gumbo's evaluation optimisations.

    Attributes
    ----------
    message_packing:
        Optimisation (1): pack all request/assert messages sharing a key into
        one list value, deduplicating asserts (reduces communication).
    tuple_reference:
        Optimisation (2): ship an 8-byte tuple id instead of the guard tuple
        in request messages and intermediate relations; the guard relation is
        re-read by the EVAL job (which it is in any case in this
        implementation, so only byte accounting changes).
    reducers_by_intermediate:
        Optimisation (3): allocate reducers according to the intermediate data
        size (256 MB per reducer) rather than the input size.
    fuse_one_round:
        Optimisation (4): fuse MSJ and EVAL into a single job when all
        conditional atoms of a query share the same join key.  Only the
        1-ROUND strategy uses this; it is exposed here so ablations can force
        it off even there.
    backend:
        The execution backend plans run on: ``"serial"`` (the in-process
        simulator, the default), ``"parallel"`` (the multiprocessing
        runtime) or ``"sql"`` (sqlite3 compilation with interpreted
        fallback).  Not an optimisation — output relations and simulated
        metrics are identical on every backend — but carried here so backend
        choice flows through the same plumbing.
    workers:
        Worker-pool size for the parallel backend (None → CPU count).
    shards:
        Persistent worker count for the sharded backend (None → its default
        of 2); each worker owns a hash-partitioned shard of the database,
        held warm across requests.  Ignored by other backends.
    sql_db:
        On-disk scratch-database path for the SQL backend (None → in-memory).
        Lets guard relations spill out of core; ignored by other backends.
    data_plane:
        How chunk payloads cross process boundaries on the parallel and
        sharded backends (see :mod:`repro.exec.shm`): ``"auto"`` (the
        default) ships large typed chunks through shared-memory segments
        and small ones by pickle, ``"shm"`` forces shared memory, and
        ``"pickle"`` forces the historical pickle path.  Ignored by the
        serial and SQL backends.  Not an optimisation — outputs and
        simulated metrics are bit-identical on every plane.
    default_strategy:
        The strategy :class:`~repro.core.gumbo.Gumbo` and the query service
        use when a call does not name one: any canonical strategy name, or
        ``"auto"`` for cost-based selection over every applicable strategy.
    kernel_mode:
        The batch ("kernel") execution path selector (see
        :mod:`repro.mapreduce.kernels`): ``"auto"`` (the default) evaluates
        kernel-capable jobs set-at-a-time on the in-process serial engine
        while the parallel backend keeps its task fan-out; ``"on"`` forces
        the kernel wherever the job supports it (including on the parallel
        backend, which then runs the job in-process); ``"off"`` always
        interprets tuple-at-a-time.  Outputs and simulated metrics are
        identical in every mode — only wall-clock speed changes.
    trace:
        Runtime tracing (see :mod:`repro.obs`): entry points —
        ``Gumbo.execute`` / ``execute_program`` / ``execute_delta`` and the
        query service's request paths — start one trace per request, and the
        engine/backend layers fill it with per-job, per-wave and worker-side
        spans.  Off by default; the disabled path is a no-op check whose
        overhead is gated by ``BENCH_obs.json``.  Like ``backend``, not an
        optimisation: outputs and simulated metrics are identical either way.
    """

    message_packing: bool = True
    tuple_reference: bool = True
    reducers_by_intermediate: bool = True
    fuse_one_round: bool = True
    backend: str = SERIAL
    workers: Optional[int] = None
    shards: Optional[int] = None
    sql_db: Optional[str] = None
    data_plane: str = "auto"
    default_strategy: str = "greedy"
    kernel_mode: str = KERNEL_AUTO
    trace: bool = False

    def __post_init__(self) -> None:
        if self.kernel_mode not in KERNEL_MODES:
            raise ValueError(
                f"unknown kernel_mode {self.kernel_mode!r}; "
                f"expected one of {KERNEL_MODES}"
            )
        from ..exec.shm import normalise_data_plane

        object.__setattr__(
            self, "data_plane", normalise_data_plane(self.data_plane)
        )

    def without(self, **flags: bool) -> "GumboOptions":
        """A copy with the given flags overridden, e.g. ``without(message_packing=False)``."""
        return replace(self, **flags)

    @classmethod
    def all_enabled(cls) -> "GumboOptions":
        return cls()

    @classmethod
    def all_disabled(cls) -> "GumboOptions":
        return cls(
            message_packing=False,
            tuple_reference=False,
            reducers_by_intermediate=False,
            fuse_one_round=False,
        )
