"""Planner-side cost estimation for MSJ / EVAL / fused jobs.

The grouping decisions of ``Greedy-BSGF`` (Section 4.4) and the ordering
decisions of ``Greedy-SGF`` (Section 4.6) are driven by *estimated* job costs:
Equation (5) for a grouped ``MSJ(S)`` job, Equation (6) for evaluating each
semi-join in its own job, and Equation (7) for the EVAL job.  This module
computes those estimates from a :class:`~repro.cost.estimates.StatisticsCatalog`
and a :class:`~repro.cost.models.CostModel` (Gumbo or Wang — experiment E3
compares the plans each model produces).

The estimates mirror what the execution engine will actually measure:

* every input relation of a job is one uniform map partition, whose
  intermediate size is derived from the number of conforming facts and the
  per-message sizes of :mod:`repro.core.messages`;
* message packing is modelled by grouping messages that provably share a key
  (same relation and same join-key column signature) so that the key is
  charged once per group;
* output sizes use the paper's upper bound (all conforming guard tuples
  survive), stored as 8-byte tuple references when optimisation (2) is on.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..cost.constants import GUMBO_MB_PER_REDUCER, PIG_INPUT_MB_PER_REDUCER
from ..cost.estimates import RelationStats, StatisticsCatalog
from ..cost.formulas import MapPartition
from ..cost.models import CostModel, GumboCostModel, JobProfile
from ..mapreduce.job import MapReduceJob
from ..mapreduce.program import MRProgram
from ..model.atoms import Atom
from ..query.bsgf import BSGFQuery, SemiJoinSpec
from .eval_job import EvalTarget
from .messages import FIELD_BYTES, TAG_BYTES, TUPLE_REFERENCE_BYTES
from .options import GumboOptions

_MB = 1024.0 * 1024.0


def _key_bytes(key_length: int) -> int:
    return max(1, key_length) * FIELD_BYTES


def _key_signature(atom: Atom, join_key: Sequence) -> Tuple[int, ...]:
    """Column positions of the join-key variables within *atom*.

    Two messages emitted by the same fact share their key value whenever the
    join keys project the same columns of that fact, which is exactly what
    this signature captures (for atoms without constants or repeated
    variables, which covers the experiment workloads).
    """
    positions = []
    for variable in join_key:
        occurrences = atom.positions_of(variable)
        positions.append(occurrences[0] if occurrences else -1)
    return tuple(positions)


@dataclass(frozen=True)
class JobEstimate:
    """Estimated profile and cost of one MR job."""

    profile: JobProfile
    cost: float

    @property
    def intermediate_mb(self) -> float:
        return self.profile.intermediate_mb

    @property
    def input_mb(self) -> float:
        return self.profile.input_mb


@dataclass(frozen=True)
class ProgramEstimate:
    """Estimated cost of a whole MR program, job by job.

    ``jobs`` preserves the program's level order, so the breakdown can be
    printed next to the plan.  ``cost`` is the sum over all jobs — the same
    additive total the strategy optimizers minimise (Equation (9) generalised
    to arbitrary job DAGs).
    """

    program_name: str
    jobs: Tuple[Tuple[str, JobEstimate], ...]

    @property
    def cost(self) -> float:
        return sum(estimate.cost for _, estimate in self.jobs)

    def breakdown(self) -> Dict[str, float]:
        return {job_id: estimate.cost for job_id, estimate in self.jobs}


class PlanCostEstimator:
    """Estimates the cost of Gumbo's job types for the plan optimizers."""

    def __init__(
        self,
        catalog: StatisticsCatalog,
        cost_model: Optional[CostModel] = None,
        options: Optional[GumboOptions] = None,
        split_mb: float = 128.0,
        mb_per_reducer: float = GUMBO_MB_PER_REDUCER,
        mb_per_reducer_input: float = PIG_INPUT_MB_PER_REDUCER,
        use_selectivity_for_outputs: bool = False,
    ) -> None:
        self.catalog = catalog
        self.cost_model = cost_model or GumboCostModel()
        self.options = options or GumboOptions()
        self.split_mb = split_mb
        self.mb_per_reducer = mb_per_reducer
        self.mb_per_reducer_input = mb_per_reducer_input
        #: When true, output-size estimates apply the sampled semi-join
        #: selectivity instead of the paper's upper bound (all guard facts
        #: survive).  The upper bound is the default, matching Section 4.1.
        self.use_selectivity_for_outputs = use_selectivity_for_outputs

    # -- shared helpers --------------------------------------------------------

    def scratch_copy(self) -> "PlanCostEstimator":
        """A copy over a scratch catalog: planning-time estimate registrations
        (intermediate outputs, chain steps) stay local to this copy while the
        sampled base-relation statistics remain shared."""
        return PlanCostEstimator(
            self.catalog.scratch_copy(),
            self.cost_model,
            self.options,
            split_mb=self.split_mb,
            mb_per_reducer=self.mb_per_reducer,
            mb_per_reducer_input=self.mb_per_reducer_input,
            use_selectivity_for_outputs=self.use_selectivity_for_outputs,
        )

    def _mappers_for(self, input_mb: float) -> int:
        return max(1, math.ceil(input_mb / self.split_mb))

    def _reducers_for(self, input_mb: float, intermediate_mb: float) -> int:
        if self.options.reducers_by_intermediate:
            basis, per = intermediate_mb, self.mb_per_reducer
        else:
            basis, per = input_mb, self.mb_per_reducer_input
        return max(1, math.ceil(basis / per)) if per > 0 else 1

    def _request_payload_bytes(self, spec: SemiJoinSpec) -> int:
        if self.options.tuple_reference:
            return TUPLE_REFERENCE_BYTES
        return max(1, spec.guard.arity) * FIELD_BYTES

    def semijoin_output_mb(self, spec: SemiJoinSpec) -> float:
        """Estimate of |X_i| (upper bound, or selectivity-scaled when enabled)."""
        count = self.catalog.atom_count(spec.guard)
        per_tuple = (
            TUPLE_REFERENCE_BYTES
            if self.options.tuple_reference
            else max(1, len(spec.projection)) * FIELD_BYTES
        )
        size = count * per_tuple / _MB
        if self.use_selectivity_for_outputs:
            size *= self.catalog.semijoin_selectivity(spec.guard, spec.conditional)
        return size

    def bsgf_output_mb(self, query: BSGFQuery) -> float:
        """Estimate of the final output size |Z| of a BSGF query."""
        count = self.catalog.atom_count(query.guard)
        per_tuple = max(1, len(query.projection)) * FIELD_BYTES
        size = count * per_tuple / _MB
        if self.use_selectivity_for_outputs and query.conditional_atoms:
            # Conservatively use the most selective conjunct-style bound: the
            # minimum single-atom selectivity.
            selectivities = [
                self.catalog.semijoin_selectivity(query.guard, atom)
                for atom in query.conditional_atoms
            ]
            size *= min(selectivities) if selectivities else 1.0
        return size

    # -- MSJ jobs (Equation (5)) ---------------------------------------------------

    def msj_partitions(self, specs: Sequence[SemiJoinSpec]) -> List[MapPartition]:
        """Estimated map partitions of the MSJ job evaluating *specs* together."""
        packing = self.options.message_packing

        # Guard-role contributions, grouped per relation.
        guard_bytes: Dict[str, float] = defaultdict(float)
        guard_records: Dict[str, float] = defaultdict(float)
        by_guard_atom: Dict[Atom, List[SemiJoinSpec]] = defaultdict(list)
        for spec in specs:
            by_guard_atom[spec.guard].append(spec)
        for guard, guard_specs in by_guard_atom.items():
            count = self.catalog.atom_count(guard)
            groups: Dict[Tuple[int, ...], List[SemiJoinSpec]] = defaultdict(list)
            for spec in guard_specs:
                groups[_key_signature(guard, spec.join_key)].append(spec)
            per_tuple_bytes = 0.0
            per_tuple_records = 0
            for signature, members in groups.items():
                request_bytes = sum(
                    TAG_BYTES + self._request_payload_bytes(spec) for spec in members
                )
                if packing:
                    per_tuple_bytes += _key_bytes(len(signature)) + request_bytes
                    per_tuple_records += 1
                else:
                    per_tuple_bytes += sum(
                        _key_bytes(len(signature))
                        + TAG_BYTES
                        + self._request_payload_bytes(spec)
                        for spec in members
                    )
                    per_tuple_records += len(members)
            guard_bytes[guard.relation] += count * per_tuple_bytes
            guard_records[guard.relation] += count * per_tuple_records

        # Conditional-role contributions: one assert per distinct (atom, key) tag.
        cond_bytes: Dict[str, float] = defaultdict(float)
        cond_records: Dict[str, float] = defaultdict(float)
        tags: Dict[Tuple[Atom, Tuple[int, ...]], None] = {}
        for spec in specs:
            signature = _key_signature(spec.conditional, spec.join_key)
            tags[(spec.conditional, signature)] = None
        by_relation_signature: Dict[Tuple[str, Tuple[int, ...]], List[Atom]] = (
            defaultdict(list)
        )
        for (atom, signature) in tags:
            by_relation_signature[(atom.relation, signature)].append(atom)
        for (relation, signature), atoms in by_relation_signature.items():
            # Atoms over the same relation with the same key signature share key
            # values fact-by-fact, so packing merges their asserts.
            counts = [self.catalog.atom_count(atom) for atom in atoms]
            representative = max(counts) if counts else 0.0
            if packing:
                per_tuple_bytes = _key_bytes(len(signature)) + TAG_BYTES * len(atoms)
                per_tuple_records = 1
            else:
                per_tuple_bytes = (_key_bytes(len(signature)) + TAG_BYTES) * len(atoms)
                per_tuple_records = len(atoms)
            cond_bytes[relation] += representative * per_tuple_bytes
            cond_records[relation] += representative * per_tuple_records

        # One partition per distinct input relation (read once).
        relations: List[str] = []
        for spec in specs:
            for name in (spec.guard.relation, spec.conditional.relation):
                if name not in relations:
                    relations.append(name)
        partitions: List[MapPartition] = []
        for name in relations:
            stats = self.catalog.relation_stats(name)
            input_mb = stats.size_mb if stats else 0.0
            intermediate_mb = (guard_bytes[name] + cond_bytes[name]) / _MB
            records = int(round(guard_records[name] + cond_records[name]))
            partitions.append(
                MapPartition(
                    input_mb=input_mb,
                    intermediate_mb=intermediate_mb,
                    records=records,
                    mappers=self._mappers_for(input_mb),
                    label=name,
                )
            )
        return partitions

    def msj_estimate(self, specs: Sequence[SemiJoinSpec]) -> JobEstimate:
        """Equation (5): estimated cost of evaluating *specs* in one MSJ job."""
        partitions = self.msj_partitions(specs)
        output_mb = sum(self.semijoin_output_mb(spec) for spec in specs)
        input_mb = sum(p.input_mb for p in partitions)
        intermediate_mb = sum(p.intermediate_mb for p in partitions)
        reducers = self._reducers_for(input_mb, intermediate_mb)
        profile = JobProfile(partitions, output_mb, reducers, label="MSJ")
        return JobEstimate(profile, self.cost_model.job_cost(profile))

    def msj_cost(self, specs: Sequence[SemiJoinSpec]) -> float:
        return self.msj_estimate(specs).cost

    def separate_cost(self, specs: Sequence[SemiJoinSpec]) -> float:
        """Equation (6): each semi-join evaluated in its own MR job."""
        return sum(self.msj_cost([spec]) for spec in specs)

    def gain(
        self, group_a: Sequence[SemiJoinSpec], group_b: Sequence[SemiJoinSpec]
    ) -> float:
        """``gain(S_i, S_j) = cost(S_i) + cost(S_j) - cost(S_i ∪ S_j)``."""
        return (
            self.msj_cost(group_a)
            + self.msj_cost(group_b)
            - self.msj_cost(list(group_a) + list(group_b))
        )

    # -- EVAL jobs (Equation (7)) -------------------------------------------------------

    def eval_estimate(self, targets: Sequence[EvalTarget]) -> JobEstimate:
        """Estimated cost of the EVAL job combining the given targets."""
        partitions: List[MapPartition] = []
        seen_guards: Dict[str, float] = {}
        output_mb = 0.0
        for target in targets:
            query = target.query
            guard_stats = self.catalog.relation_stats(query.guard.relation)
            guard_mb = guard_stats.size_mb if guard_stats else 0.0
            guard_count = self.catalog.atom_count(query.guard)
            if query.guard.relation not in seen_guards:
                key_value_bytes = (
                    TAG_BYTES
                    + (
                        TUPLE_REFERENCE_BYTES
                        if self.options.tuple_reference
                        else query.guard.arity * FIELD_BYTES
                    )
                    + TAG_BYTES
                )
                partitions.append(
                    MapPartition(
                        input_mb=guard_mb,
                        intermediate_mb=guard_count * key_value_bytes / _MB,
                        records=int(guard_count),
                        mappers=self._mappers_for(guard_mb),
                        label=query.guard.relation,
                    )
                )
                seen_guards[query.guard.relation] = guard_mb
            for spec, name in zip(query.semijoin_specs(), target.intermediates):
                size_mb = self.semijoin_output_mb(spec)
                count = self.catalog.atom_count(spec.guard)
                key_value_bytes = (
                    TAG_BYTES
                    + (
                        TUPLE_REFERENCE_BYTES
                        if self.options.tuple_reference
                        else spec.guard.arity * FIELD_BYTES
                    )
                    + TAG_BYTES
                )
                partitions.append(
                    MapPartition(
                        input_mb=size_mb,
                        intermediate_mb=count * key_value_bytes / _MB,
                        records=int(count),
                        mappers=self._mappers_for(size_mb),
                        label=name,
                    )
                )
            output_mb += self.bsgf_output_mb(query)
        input_mb = sum(p.input_mb for p in partitions)
        intermediate_mb = sum(p.intermediate_mb for p in partitions)
        reducers = self._reducers_for(input_mb, intermediate_mb)
        profile = JobProfile(partitions, output_mb, reducers, label="EVAL")
        return JobEstimate(profile, self.cost_model.job_cost(profile))

    def eval_cost(self, targets: Sequence[EvalTarget]) -> float:
        return self.eval_estimate(targets).cost

    def eval_cost_for_queries(self, queries: Sequence[BSGFQuery]) -> float:
        """EVAL cost when every query's semi-joins get default intermediate names."""
        targets = [
            EvalTarget(
                query,
                tuple(spec.output for spec in query.semijoin_specs()),
            )
            for query in queries
        ]
        return self.eval_cost(targets)

    # -- fused 1-ROUND jobs ----------------------------------------------------------------

    def one_round_estimate(self, queries: Sequence[BSGFQuery]) -> JobEstimate:
        """Estimated cost of the fused MSJ+EVAL job for shared-key queries."""
        all_specs: List[SemiJoinSpec] = []
        for query in queries:
            all_specs.extend(query.semijoin_specs())
        partitions = self.msj_partitions(all_specs) if all_specs else []
        if not all_specs:
            for query in queries:
                stats = self.catalog.relation_stats(query.guard.relation)
                input_mb = stats.size_mb if stats else 0.0
                partitions.append(
                    MapPartition(
                        input_mb=input_mb,
                        intermediate_mb=input_mb,
                        records=int(self.catalog.atom_count(query.guard)),
                        mappers=self._mappers_for(input_mb),
                        label=query.guard.relation,
                    )
                )
        output_mb = sum(self.bsgf_output_mb(query) for query in queries)
        input_mb = sum(p.input_mb for p in partitions)
        intermediate_mb = sum(p.intermediate_mb for p in partitions)
        reducers = self._reducers_for(input_mb, intermediate_mb)
        profile = JobProfile(partitions, output_mb, reducers, label="1-ROUND")
        return JobEstimate(profile, self.cost_model.job_cost(profile))

    # -- whole basic MR programs (Equation (9)) -----------------------------------------------

    def basic_program_cost(
        self,
        queries: Sequence[BSGFQuery],
        groups: Sequence[Sequence[SemiJoinSpec]],
    ) -> float:
        """Equation (9): EVAL cost plus the cost of every MSJ group."""
        return self.eval_cost_for_queries(queries) + sum(
            self.msj_cost(group) for group in groups
        )

    # -- arbitrary MR programs (job-type dispatch) --------------------------------------------

    def job_estimate(self, job: MapReduceJob) -> JobEstimate:
        """Estimated profile and cost of one materialised MR job.

        Dispatches on the concrete job type: MSJ and EVAL jobs reuse the
        equation-based estimates above, fused 1-ROUND jobs the fused estimate,
        and the SEQ-plan jobs (semi-join chain steps and union/projection)
        get profiles assembled from the catalog here.  This is what lets the
        AUTO strategy compare *any* candidate program on one scale.
        """
        from .chain import SemiJoinChainJob, UnionProjectJob
        from .eval_job import EvalJob
        from .fused import FusedOneRoundJob
        from .msj import MSJJob

        if isinstance(job, MSJJob):
            return self.msj_estimate(job.specs)
        if isinstance(job, EvalJob):
            return self.eval_estimate(job.targets)
        if isinstance(job, FusedOneRoundJob):
            return self.one_round_estimate(job.queries)
        if isinstance(job, SemiJoinChainJob):
            return self._chain_estimate(job)
        if isinstance(job, UnionProjectJob):
            return self._union_estimate(job)
        raise TypeError(
            f"no cost estimate for job type {type(job).__name__} "
            f"(job {job.job_id!r})"
        )

    def _relation_tuples(self, name: str) -> float:
        stats = self.catalog.relation_stats(name)
        return float(stats.tuples) if stats else 0.0

    def _relation_mb(self, name: str) -> float:
        stats = self.catalog.relation_stats(name)
        return stats.size_mb if stats else 0.0

    def _chain_estimate(self, job) -> JobEstimate:
        """One SEQ chain step: filter the current guard rows by one literal."""
        key_bytes = _key_bytes(len(job.join_key))
        request_bytes = TAG_BYTES + (
            TUPLE_REFERENCE_BYTES
            if self.options.tuple_reference
            else max(1, job.guard_atom.arity) * FIELD_BYTES
        )
        assert_count = self.catalog.atom_count(job.literal.atom)
        partitions: List[MapPartition] = []
        for name in job.input_relations():
            count = self._relation_tuples(name)
            intermediate = 0.0
            records = 0.0
            if name == job.input_name:
                intermediate += count * (key_bytes + request_bytes)
                records += count
            if name == job.literal.atom.relation:
                intermediate += assert_count * (key_bytes + TAG_BYTES)
                records += assert_count
            input_mb = self._relation_mb(name)
            partitions.append(
                MapPartition(
                    input_mb=input_mb,
                    intermediate_mb=intermediate / _MB,
                    records=int(round(records)),
                    mappers=self._mappers_for(input_mb),
                    label=name,
                )
            )
        arity = (
            max(1, len(job.projection))
            if job.projection is not None
            else max(1, job.guard_atom.arity)
        )
        # Upper bound: every input guard row survives the filter step.
        survivors = self._relation_tuples(job.input_name)
        output_mb = survivors * arity * FIELD_BYTES / _MB
        input_mb = sum(p.input_mb for p in partitions)
        intermediate_mb = sum(p.intermediate_mb for p in partitions)
        reducers = self._reducers_for(input_mb, intermediate_mb)
        profile = JobProfile(partitions, output_mb, reducers, label="CHAIN")
        return JobEstimate(profile, self.cost_model.job_cost(profile))

    def _union_estimate(self, job) -> JobEstimate:
        """The union/projection job combining the branch outputs of a SEQ plan."""
        arity = max(1, len(job.projection))
        partitions = []
        total_tuples = 0.0
        for name in job.input_names:
            count = self._relation_tuples(name)
            total_tuples += count
            per_tuple_bytes = _key_bytes(arity) + TAG_BYTES
            input_mb = self._relation_mb(name)
            partitions.append(
                MapPartition(
                    input_mb=input_mb,
                    intermediate_mb=count * per_tuple_bytes / _MB,
                    records=int(round(count)),
                    mappers=self._mappers_for(input_mb),
                    label=name,
                )
            )
        output_mb = total_tuples * arity * FIELD_BYTES / _MB
        input_mb = sum(p.input_mb for p in partitions)
        intermediate_mb = sum(p.intermediate_mb for p in partitions)
        reducers = self._reducers_for(input_mb, intermediate_mb)
        profile = JobProfile(partitions, output_mb, reducers, label="UNION")
        return JobEstimate(profile, self.cost_model.job_cost(profile))

    def _register_output_estimates(self, job: MapReduceJob) -> None:
        """Seed catalog stats for *job*'s outputs so later jobs can be costed.

        Mirrors the paper's upper bound: intermediate relations are assumed to
        keep every tuple of the relation they filter (Section 4.1), so chained
        estimates never underestimate downstream input sizes.
        """
        from .chain import SemiJoinChainJob, UnionProjectJob
        from .eval_job import EvalJob
        from .fused import FusedOneRoundJob
        from .msj import MSJJob

        estimates: List[Tuple[str, float, int]] = []
        if isinstance(job, MSJJob):
            for spec in job.specs:
                count = self.catalog.atom_count(spec.guard)
                arity = max(1, spec.guard.arity)
                estimates.append((spec.output, count, arity))
        elif isinstance(job, EvalJob):
            for target in job.targets:
                count = self.catalog.atom_count(target.query.guard)
                arity = max(1, len(target.query.projection))
                estimates.append((target.output, count, arity))
        elif isinstance(job, FusedOneRoundJob):
            for query in job.queries:
                count = self.catalog.atom_count(query.guard)
                arity = max(1, len(query.projection))
                estimates.append((query.output, count, arity))
        elif isinstance(job, SemiJoinChainJob):
            count = self._relation_tuples(job.input_name)
            arity = (
                max(1, len(job.projection))
                if job.projection is not None
                else max(1, job.guard_atom.arity)
            )
            estimates.append((job.output_name, count, arity))
        elif isinstance(job, UnionProjectJob):
            count = sum(self._relation_tuples(n) for n in job.input_names)
            arity = max(1, len(job.projection))
            estimates.append((job.output_name, count, arity))
        for name, count, arity in estimates:
            if self.catalog.has_relation(name):
                continue
            self.catalog.register_estimate(
                RelationStats(
                    name=name,
                    tuples=int(round(count)),
                    arity=arity,
                    size_mb=count * arity * FIELD_BYTES / _MB,
                    bytes_per_field=FIELD_BYTES,
                )
            )

    def program_estimate(self, program: MRProgram) -> ProgramEstimate:
        """Estimated cost of every job of *program*, walked in level order.

        Intermediate relations produced along the way are registered in the
        catalog (upper-bound sizes) before the jobs that read them are costed,
        so multi-round programs — SEQ chains, SGF stages — estimate cleanly.
        """
        jobs: List[Tuple[str, JobEstimate]] = []
        for level in program.levels():
            for job in level:
                jobs.append((job.job_id, self.job_estimate(job)))
            for job in level:
                self._register_output_estimates(job)
        return ProgramEstimate(program_name=program.name, jobs=tuple(jobs))

    def program_cost(self, program: MRProgram) -> float:
        """Total estimated cost of *program* (sum over its jobs)."""
        return self.program_estimate(program).cost
