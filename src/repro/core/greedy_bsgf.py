"""Partitioning the semi-joins of (a set of) BSGF queries: ``Greedy-BSGF``.

Given the set ``S`` of semi-join equations of one or more BSGF queries, the
basic MR program for any partition ``S_1 ∪ ... ∪ S_p`` of ``S`` consists of
one ``MSJ(S_i)`` job per block plus one EVAL job (Section 4.4).  Choosing the
partition with minimal estimated cost (``BSGF-Opt``) is NP-hard (Theorem 1);
the paper adopts the greedy heuristic of Wang & Chan: start from singletons
and repeatedly merge the pair of blocks with the largest positive *gain*

    ``gain(S_i, S_j) = cost(S_i) + cost(S_j) − cost(S_i ∪ S_j)``

until no merge has positive gain.

This module implements both the greedy heuristic (:func:`greedy_partition`)
and a brute-force exact solver (:func:`optimal_partition`) used on small
queries by tests and by the plan-exploration example.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from ..query.bsgf import SemiJoinSpec
from .costing import PlanCostEstimator

#: A partition of semi-join specs into groups (each group becomes one MSJ job).
Partition = List[List[SemiJoinSpec]]


def greedy_partition(
    specs: Sequence[SemiJoinSpec],
    estimator: PlanCostEstimator,
) -> Partition:
    """The ``Greedy-BSGF`` heuristic of Section 4.4.

    Starts from the trivial partition into singletons and repeatedly merges
    the pair of groups with the largest positive gain.  Ties are broken
    deterministically by (earliest, earliest) group index.
    """
    groups: Partition = [[spec] for spec in specs]
    if len(groups) <= 1:
        return groups
    costs: List[float] = [estimator.msj_cost(group) for group in groups]

    while len(groups) > 1:
        best_gain = 0.0
        best_pair: Optional[Tuple[int, int]] = None
        best_cost = 0.0
        for i in range(len(groups)):
            for j in range(i + 1, len(groups)):
                merged_cost = estimator.msj_cost(groups[i] + groups[j])
                gain = costs[i] + costs[j] - merged_cost
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best_pair = (i, j)
                    best_cost = merged_cost
        if best_pair is None:
            break
        i, j = best_pair
        merged = groups[i] + groups[j]
        groups = [g for k, g in enumerate(groups) if k not in (i, j)] + [merged]
        costs = [c for k, c in enumerate(costs) if k not in (i, j)] + [best_cost]
    return groups


def set_partitions(items: Sequence) -> Iterator[List[List]]:
    """Enumerate all partitions of *items* into non-empty blocks.

    The enumeration is the standard recursive scheme placing each item either
    into an existing block or into a new one; for ``n`` items it yields the
    ``n``-th Bell number of partitions, so callers must keep ``n`` small.
    """
    items = list(items)
    if not items:
        yield []
        return

    def _recurse(index: int, blocks: List[List]) -> Iterator[List[List]]:
        if index == len(items):
            yield [list(block) for block in blocks]
            return
        item = items[index]
        for block in blocks:
            block.append(item)
            yield from _recurse(index + 1, blocks)
            block.pop()
        blocks.append([item])
        yield from _recurse(index + 1, blocks)
        blocks.pop()

    yield from _recurse(0, [])


def optimal_partition(
    specs: Sequence[SemiJoinSpec],
    estimator: PlanCostEstimator,
    max_specs: int = 10,
) -> Tuple[Partition, float]:
    """Brute-force ``BSGF-Opt``: the partition minimising the summed MSJ cost.

    Only the MSJ-job costs vary with the partition (the EVAL job is identical
    for every partition), so the EVAL cost is excluded here; callers comparing
    full program costs should add it separately.  Refuses inputs with more
    than *max_specs* semi-joins.
    """
    specs = list(specs)
    if len(specs) > max_specs:
        raise ValueError(
            f"refusing brute-force partition search over {len(specs)} semi-joins "
            f"(limit {max_specs})"
        )
    if not specs:
        return [], 0.0
    best: Optional[Partition] = None
    best_cost = float("inf")
    for partition in set_partitions(specs):
        cost = sum(estimator.msj_cost(group) for group in partition)
        if cost < best_cost - 1e-12:
            best_cost = cost
            best = partition
    assert best is not None
    return best, best_cost


def partition_cost(
    partition: Partition,
    estimator: PlanCostEstimator,
) -> float:
    """Summed MSJ cost of a partition (without the EVAL job)."""
    return sum(estimator.msj_cost(group) for group in partition)


def singleton_partition(specs: Sequence[SemiJoinSpec]) -> Partition:
    """The PAR partition: every semi-join in its own job."""
    return [[spec] for spec in specs]


def single_group_partition(specs: Sequence[SemiJoinSpec]) -> Partition:
    """The fully-grouped partition: all semi-joins in one MSJ job."""
    specs = list(specs)
    return [specs] if specs else []
