"""The Gumbo facade: plan and execute SGF queries end to end.

:class:`Gumbo` is the public entry point of the library, playing the role of
the paper's Gumbo system (Section 5.1): it takes a query (text in the paper's
SQL-like syntax, or query objects), collects statistics over the database,
chooses a plan according to the requested strategy and cost model, runs the
resulting MR program on the simulated Hadoop engine, and returns the output
relations together with the four performance metrics.

Example
-------
>>> from repro import Gumbo, Database
>>> db = Database.from_dict({
...     "R": [(1, 2), (3, 4)],
...     "S": [(1,)],
...     "T": [(4,)],
... })
>>> gumbo = Gumbo()
>>> result = gumbo.execute(
...     "Z := SELECT (x, y) FROM R(x, y) WHERE S(x) OR T(y);", db
... )
>>> sorted(result.output().tuples())
[(1, 2), (3, 4)]
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

from ..cost.estimates import StatisticsCatalog
from ..cost.models import CostModel, make_cost_model
from ..exec.base import ExecutionBackend, make_backend
from ..mapreduce.counters import ProgramMetrics
from ..mapreduce.engine import MapReduceEngine, ProgramResult
from ..mapreduce.program import MRProgram
from ..model.database import Database
from ..model.relation import Relation
from .. import obs
from ..query.bsgf import BSGFQuery
from ..query.parser import parse_sgf
from ..query.sgf import SGFQuery
from .costing import PlanCostEstimator
from .options import GumboOptions
from .strategies import (
    AUTO,
    GREEDY,
    GREEDY_SGF,
    PAR,
    PARUNIT,
    SEQ,
    SEQUNIT,
    SGF_STRATEGIES,
    StrategyChoice,
    build_bsgf_program,
    build_sgf_program,
    choose_strategy,
    normalise_strategy,
)

#: Anything Gumbo accepts as a query.
QueryLike = Union[str, BSGFQuery, SGFQuery, Sequence[BSGFQuery]]

#: Mapping applied when a BSGF strategy name is used for a nested SGF query.
_SGF_EQUIVALENT = {SEQ: SEQUNIT, PAR: PARUNIT, GREEDY: GREEDY_SGF}


@dataclass
class GumboResult:
    """Outcome of one Gumbo execution.

    ``strategy`` is the strategy that actually ran: when ``"auto"`` was
    requested it is the concrete winner of the cost comparison, and
    ``choice`` carries the full per-candidate cost breakdown.
    """

    query: SGFQuery
    strategy: str
    program: MRProgram
    outputs: Dict[str, Relation]
    all_outputs: Dict[str, Relation]
    metrics: ProgramMetrics
    choice: Optional[StrategyChoice] = None

    def output(self, name: Optional[str] = None) -> Relation:
        """The output relation called *name* (default: the query's final output)."""
        return self.all_outputs[name or self.query.output]

    def summary(self) -> Dict[str, float]:
        return self.metrics.summary()


class Gumbo:
    """Planner + executor for (B)SGF queries on the simulated MapReduce engine.

    .. note:: *Deprecated as a client entry point.*  New code should open a
       connection with :func:`repro.connect` — one unified ``Connection`` /
       ``Result`` API over every backend, with plan caching and incremental
       refresh built in.  ``Gumbo`` remains fully supported as the planning/
       execution layer underneath (and for ablation-style direct use).

    Parameters
    ----------
    engine:
        The MapReduce engine to run plans on; a default engine over the
        paper's 10-node cluster is created when omitted.
    cost_model:
        ``"gumbo"`` (per-partition, Equation (2)) or ``"wang"`` (aggregate,
        Equation (3)), or a :class:`~repro.cost.models.CostModel` instance.
        This is the model driving *plan choice*; measured times always come
        from the engine.
    options:
        The Gumbo optimisation switches (packing, tuple references, ...);
        also carries the default backend/worker selection.
    sample_size:
        Tuples sampled per relation when collecting statistics.
    backend:
        Where plans actually run: ``"serial"`` (the in-process simulator),
        ``"parallel"`` (the multiprocessing runtime), or an
        :class:`~repro.exec.base.ExecutionBackend` instance.  Overrides
        ``options.backend``; outputs and simulated metrics are identical on
        every backend.
    workers:
        Worker-pool size for the parallel backend (overrides
        ``options.workers``; None → CPU count).
    """

    def __init__(
        self,
        engine: Optional[MapReduceEngine] = None,
        cost_model: Union[str, CostModel] = "gumbo",
        options: Optional[GumboOptions] = None,
        sample_size: int = 1000,
        backend: Union[str, ExecutionBackend, None] = None,
        workers: Optional[int] = None,
    ) -> None:
        from ..deprecation import warn_legacy_entry_point

        warn_legacy_entry_point("Gumbo")
        self.options = options or GumboOptions()
        if isinstance(backend, ExecutionBackend):
            # Validates that engine=/workers= do not conflict with the instance.
            self.backend = make_backend(backend, engine=engine, workers=workers)
            self.engine = backend.engine
        else:
            self.engine = engine or MapReduceEngine()
            self.backend = make_backend(
                backend if backend is not None else self.options.backend,
                engine=self.engine,
                workers=workers if workers is not None else self.options.workers,
                sql_db=self.options.sql_db,
                shards=self.options.shards,
                data_plane=self.options.data_plane,
            )
        if isinstance(cost_model, CostModel):
            self.cost_model = cost_model
        else:
            self.cost_model = make_cost_model(cost_model, self.engine.constants)
        self.sample_size = sample_size

    def close(self) -> None:
        """Release the backend's resources (the parallel worker pool)."""
        self.backend.close()

    def __enter__(self) -> "Gumbo":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False

    # -- query normalisation -----------------------------------------------------

    @staticmethod
    def as_sgf(query: QueryLike) -> SGFQuery:
        """Normalise any accepted query form into an :class:`SGFQuery`."""
        if isinstance(query, str):
            return parse_sgf(query)
        if isinstance(query, SGFQuery):
            return query
        if isinstance(query, BSGFQuery):
            return SGFQuery((query,))
        return SGFQuery(tuple(query))

    def estimator(
        self, database: Database, cost_model: Optional[CostModel] = None
    ) -> PlanCostEstimator:
        """A cost estimator over fresh statistics of *database*."""
        catalog = StatisticsCatalog(database, sample_size=self.sample_size)
        return PlanCostEstimator(
            catalog,
            cost_model or self.cost_model,
            self.options,
            split_mb=self.engine.cluster.split_mb,
            mb_per_reducer=self.engine.mb_per_reducer_intermediate,
            mb_per_reducer_input=self.engine.mb_per_reducer_input,
        )

    # -- planning ----------------------------------------------------------------------

    def plan(
        self,
        query: QueryLike,
        database: Database,
        strategy: Optional[str] = None,
    ) -> MRProgram:
        """Build (but do not run) the MR program for *query* under *strategy*.

        ``strategy=None`` uses ``options.default_strategy``; ``"auto"`` costs
        every applicable strategy and plans the cheapest.
        """
        sgf = self.as_sgf(query)
        program, _, _ = self._plan_resolved(sgf, database, strategy)
        return program

    def choose(
        self,
        query: QueryLike,
        database: Database,
        include_optimal: bool = True,
    ) -> StrategyChoice:
        """Cost-based strategy selection: every applicable candidate, costed.

        This is the AUTO strategy's engine, exposed for inspection — the
        returned :class:`StrategyChoice` has the winning program plus the
        estimated cost of every candidate.
        """
        sgf = self.as_sgf(query)
        return choose_strategy(
            sgf,
            self.estimator(database),
            self.options,
            include_optimal=include_optimal,
        )

    def plan_with(
        self,
        query: QueryLike,
        database: Database,
        strategy: Optional[str],
        estimator: Optional[PlanCostEstimator] = None,
    ) -> "PlannedQuery":
        """Plan *query* and return the program plus the concrete strategy.

        Unlike :meth:`plan` this reports which strategy actually planned the
        program (AUTO resolves to its winner) and accepts a pre-built
        *estimator* so callers holding cached statistics (the query service)
        can skip re-collecting them.
        """
        sgf = self.as_sgf(query)
        program, resolved, choice = self._plan_resolved(
            sgf, database, strategy, estimator
        )
        return PlannedQuery(
            query=sgf, strategy=resolved, program=program, choice=choice
        )

    def _plan_resolved(
        self,
        sgf: SGFQuery,
        database: Database,
        strategy: Optional[str],
        estimator: Optional[PlanCostEstimator] = None,
    ) -> Tuple[MRProgram, str, Optional[StrategyChoice]]:
        """Plan under the resolved strategy: (program, concrete name, choice)."""
        resolved = self._resolve_strategy(sgf, strategy)
        with obs.span("gumbo.plan", requested=resolved) as plan_span:
            if estimator is None:
                estimator = self.estimator(database)
            if resolved == AUTO:
                with obs.span("gumbo.choose"):
                    choice = choose_strategy(sgf, estimator, self.options)
                plan_span.set(strategy=choice.strategy, jobs=len(choice.program))
                return choice.program, choice.strategy, choice
            if resolved in SGF_STRATEGIES:
                program = build_sgf_program(sgf, resolved, estimator, self.options)
            else:
                program = build_bsgf_program(
                    list(sgf.subqueries), resolved, estimator, self.options
                )
            plan_span.set(strategy=resolved, jobs=len(program))
            return program, resolved, None

    def _resolve_strategy(self, query: SGFQuery, strategy: Optional[str]) -> str:
        if strategy is None:
            strategy = self.options.default_strategy
        normalised = normalise_strategy(strategy)
        has_dependencies = bool(query.intermediate_names)
        if has_dependencies and normalised in _SGF_EQUIVALENT:
            return _SGF_EQUIVALENT[normalised]
        return normalised

    # -- execution --------------------------------------------------------------------------

    def execute(
        self,
        query: QueryLike,
        database: Database,
        strategy: Optional[str] = None,
    ) -> GumboResult:
        """Plan and run *query*, returning outputs and metrics.

        ``strategy=None`` uses ``options.default_strategy``; ``"auto"``
        selects the cheapest applicable strategy by estimated cost (the
        result's ``strategy`` is the concrete winner, ``choice`` the
        breakdown).
        """
        sgf = self.as_sgf(query)
        with obs.trace("gumbo.execute", enabled=self.options.trace) as handle:
            program, resolved, choice = self._plan_resolved(sgf, database, strategy)
            handle.set(strategy=resolved, backend=self.backend.name)
            return self.execute_program(
                sgf, database, program, strategy=resolved, choice=choice
            )

    def execute_program(
        self,
        query: QueryLike,
        database: Database,
        program: MRProgram,
        strategy: str = "planned",
        choice: Optional[StrategyChoice] = None,
    ) -> GumboResult:
        """Run an already-planned *program* for *query* on the backend.

        The plan-caching query service uses this to skip planning entirely on
        a cache hit; :meth:`execute` funnels through it as well so results are
        assembled identically.
        """
        sgf = self.as_sgf(query)
        with obs.trace(
            "gumbo.execute_program",
            enabled=self.options.trace,
            strategy=strategy,
            backend=self.backend.name,
        ):
            result: ProgramResult = self.backend.run_program(program, database)
        roots = set(sgf.root_names)
        outputs = {
            name: relation
            for name, relation in result.outputs.items()
            if name in roots
        }
        all_outputs = {
            name: relation
            for name, relation in result.outputs.items()
            if name in set(sgf.output_names)
        }
        return GumboResult(
            query=sgf,
            strategy=strategy,
            program=program,
            outputs=outputs,
            all_outputs=all_outputs,
            metrics=result.metrics,
            choice=choice,
        )

    # -- incremental delta evaluation ---------------------------------------------

    def materialize(
        self,
        query: QueryLike,
        database: Database,
        strategy: Optional[str] = None,
    ):
        """Execute *query* and keep the state needed for incremental refreshes.

        Returns a :class:`~repro.incremental.materialize.Materialization`
        whose output relations are maintained **in place** by
        :meth:`execute_delta`; the materialized outputs are verified against
        the planned program's outputs at construction time.
        """
        from ..incremental.engine import materialize_query

        return materialize_query(self, query, database, strategy)

    def execute_delta(
        self,
        materialization,
        inserts,
        mode: str = "engine",
    ):
        """Apply a batch of inserted tuples to a materialized result.

        *inserts* maps relation names to tuples; the batch is applied to the
        materialization's database and the output delta — only the
        consequences of the batch, not the whole program — is computed and
        merged.  In the default ``"engine"`` mode the affected guard tuples
        are re-evaluated by restricted MR programs on this Gumbo's execution
        backend; ``"direct"`` evaluates against the maintained indexes.
        Returns a :class:`~repro.incremental.engine.DeltaResult`.
        """
        from ..incremental.engine import refresh

        with obs.trace(
            "gumbo.execute_delta", enabled=self.options.trace, mode=mode
        ):
            return refresh(
                materialization,
                inserts,
                backend=self.backend,
                mode=mode,
                options=self.options,
            )

    def compare_strategies(
        self,
        query: QueryLike,
        database: Database,
        strategies: Sequence[str],
    ) -> Dict[str, GumboResult]:
        """Run *query* under several strategies and return all results."""
        return {
            strategy: self.execute(query, database, strategy)
            for strategy in strategies
        }


@dataclass(frozen=True)
class PlannedQuery:
    """A planned (but not yet executed) query: what the plan cache stores."""

    query: SGFQuery
    strategy: str
    program: MRProgram
    choice: Optional[StrategyChoice] = None
