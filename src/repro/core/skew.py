"""Skew handling for the MSJ operator (the extension sketched in Section 6).

The paper notes that "the presented framework can readily be adapted to
[handle skew] when information on so-called heavy hitters is available or can
be computed at the expense of an additional round".  This module implements
that adaptation:

* :func:`detect_heavy_hitters` estimates, from the statistics catalog's
  samples, which join-key values receive a disproportionate share of the
  messages of a set of semi-joins (the "information on heavy hitters");
* :class:`SkewAwareMSJJob` extends :class:`~repro.core.msj.MSJJob` with the
  classic salting scheme: request messages for a heavy key are spread over
  ``salt_factor`` sub-keys (appending a deterministic salt derived from the
  guard tuple), and assert messages for a heavy key are replicated to every
  salt, so the heavy reducer's load is split across ``salt_factor`` reducers
  while the reduce-side logic stays untouched.

Correctness is unaffected (every request still meets every assert it needs);
what changes is the distribution of reducer loads, which the simulator's
per-reducer timing turns into lower net time on skewed data.
"""

from __future__ import annotations

import zlib
from collections import Counter
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Sequence, Set, Tuple

from ..cost.estimates import StatisticsCatalog
from ..query.bsgf import SemiJoinSpec
from .messages import AssertMessage, RequestMessage
from .msj import MSJJob
from .options import GumboOptions

#: Default number of sub-keys a heavy key is split into.
DEFAULT_SALT_FACTOR = 8

#: Default share of the sampled messages a key must receive to count as heavy.
DEFAULT_HEAVY_FRACTION = 0.1


@dataclass(frozen=True)
class HeavyHitterReport:
    """Outcome of heavy-hitter detection for a set of semi-joins."""

    heavy_keys: FrozenSet[Tuple[object, ...]]
    sampled_keys: int
    threshold: float

    def __bool__(self) -> bool:
        return bool(self.heavy_keys)


def detect_heavy_hitters(
    catalog: StatisticsCatalog,
    specs: Sequence[SemiJoinSpec],
    heavy_fraction: float = DEFAULT_HEAVY_FRACTION,
) -> HeavyHitterReport:
    """Estimate the heavy join-key values of the given semi-joins.

    The guard samples of the catalog are probed with every spec's join key;
    any key value receiving more than ``heavy_fraction`` of the sampled
    key occurrences is reported as heavy.  The extra sampling pass is the
    "additional round" the paper alludes to; here it reuses the catalog's
    existing samples.
    """
    if not 0.0 < heavy_fraction <= 1.0:
        raise ValueError("heavy_fraction must be in (0, 1]")
    counts: Counter = Counter()
    for spec in specs:
        for row in catalog.sample(spec.guard.relation):
            binding = spec.guard.match(row)
            if binding is None:
                continue
            counts[tuple(binding[v] for v in spec.join_key)] += 1
    total = sum(counts.values())
    if total == 0:
        return HeavyHitterReport(frozenset(), 0, heavy_fraction)
    heavy = frozenset(
        key for key, count in counts.items() if count / total >= heavy_fraction
    )
    return HeavyHitterReport(heavy, total, heavy_fraction)


def _salt(payload: Tuple[object, ...], salt_factor: int) -> int:
    """Deterministic salt derived from the request payload."""
    return zlib.crc32(repr(payload).encode("utf-8")) % max(1, salt_factor)


class SkewAwareMSJJob(MSJJob):
    """An MSJ job that salts heavy join keys across several reducers.

    Parameters
    ----------
    heavy_keys:
        The join-key values (as tuples) to treat as heavy.  Typically the
        result of :func:`detect_heavy_hitters`.
    salt_factor:
        How many sub-keys each heavy key is split into.
    """

    def __init__(
        self,
        job_id: str,
        specs: Sequence[SemiJoinSpec],
        heavy_keys: Iterable[Tuple[object, ...]],
        options: Optional[GumboOptions] = None,
        emit_projection: bool = True,
        salt_factor: int = DEFAULT_SALT_FACTOR,
    ) -> None:
        super().__init__(
            job_id, specs, options=options, emit_projection=emit_projection
        )
        if salt_factor < 1:
            raise ValueError("salt_factor must be >= 1")
        self.heavy_keys: Set[Tuple[object, ...]] = {tuple(k) for k in heavy_keys}
        self.salt_factor = salt_factor

    def supports_kernel(self) -> bool:
        """Salted keys change the per-key byte accounting; the MSJ batch
        kernel does not model them, so this job always interprets."""
        return False

    def supports_sql(self) -> bool:
        """Salted keys are not modelled by the MSJ SQL plan either."""
        return False

    def map(self, relation: str, row: Tuple[object, ...]):
        for key, message in super().map(relation, row):
            if tuple(key) not in self.heavy_keys or self.salt_factor == 1:
                yield (key, message)
            elif isinstance(message, RequestMessage):
                # Requests go to exactly one salted sub-key.
                salt = _salt(message.payload, self.salt_factor)
                yield (tuple(key) + (f"#salt{salt}",), message)
            elif isinstance(message, AssertMessage):
                # Asserts are replicated to every sub-key of the heavy key.
                for salt in range(self.salt_factor):
                    yield (tuple(key) + (f"#salt{salt}",), message)
            else:  # pragma: no cover - no other message kinds are emitted
                yield (key, message)


def skew_aware_msj(
    job_id: str,
    specs: Sequence[SemiJoinSpec],
    catalog: StatisticsCatalog,
    options: Optional[GumboOptions] = None,
    emit_projection: bool = True,
    heavy_fraction: float = DEFAULT_HEAVY_FRACTION,
    salt_factor: int = DEFAULT_SALT_FACTOR,
) -> Tuple[SkewAwareMSJJob, HeavyHitterReport]:
    """Build a skew-aware MSJ job with heavy hitters detected from *catalog*."""
    report = detect_heavy_hitters(catalog, specs, heavy_fraction)
    job = SkewAwareMSJJob(
        job_id,
        specs,
        report.heavy_keys,
        options=options,
        emit_projection=emit_projection,
        salt_factor=salt_factor,
    )
    return job, report
