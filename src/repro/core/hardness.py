"""NP-hardness constructions of Appendix A (Theorems 2–4).

The paper proves that choosing an optimal multiway topological sort
(``SGF-Opt``) is NP-complete by reduction from Subset Sum, via an auxiliary
*Subset Cost* problem.  This module provides executable versions of both
constructions so the reductions can be tested:

* :class:`SubsetCostInstance` — a set of items with the cost function of
  Equation (11) (``w(X) = γ`` when the special item ``◦ ∈ X``, the sum of the
  items otherwise), a brute-force optimal-partition solver, and the
  achievable-cost set used to check the iff of Theorem 3;
* :func:`build_sgf_reduction` — the SGF-Opt instance of Theorem 4: empty
  binary relations ``R_1..R_n, R°``, data relations ``S_i`` with ``|S_i| =
  a_i`` (1 MB per tuple), queries ``f_i = R_i(x,y) ⋉ S_i(x, 1)`` and the big
  query ``f°``, together with the degenerate cost constants (all zero except
  ``h_r = 1``) that make ``cost(GOPT({f_i})) = a_i``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Set, Tuple

from ..cost.constants import CostConstants
from ..model.atoms import Atom
from ..model.database import Database
from ..model.relation import Relation
from ..model.terms import Constant, Variable
from ..query.bsgf import BSGFQuery
from ..query.conditions import AtomCondition, conjunction
from ..query.sgf import SGFQuery

#: Size of one tuple in the reduction's data relations (1 MB, as in the paper).
REDUCTION_TUPLE_MB = 1.0


@dataclass(frozen=True)
class SubsetCostInstance:
    """An instance of the Subset Cost problem of Theorem 3.

    ``items`` are the positive integers of the Subset Sum instance; ``gamma``
    is the fixed cost charged to any block containing the special item ``◦``.
    """

    items: Tuple[int, ...]
    gamma: int

    def cost(self, block: Iterable[object]) -> int:
        """The cost function w of Equation (11); ``None`` encodes the item ◦."""
        block = list(block)
        if any(item is SPECIAL for item in block):
            return self.gamma
        return sum(int(item) for item in block)

    def universe(self) -> Tuple[object, ...]:
        return tuple(self.items) + (SPECIAL,)

    def partition_cost(self, partition: Sequence[Sequence[object]]) -> int:
        return sum(self.cost(block) for block in partition)

    def achievable_costs(self) -> Set[int]:
        """All values ``Σ_i w(S_i)`` over partitions of the universe.

        By Theorem 3 this set equals ``{γ + Σ B : B ⊆ items}`` (take the block
        containing ◦ to absorb the complement of B).
        """
        costs: Set[int] = set()
        universe = self.universe()
        for partition in _all_partitions(universe):
            costs.add(self.partition_cost(partition))
        return costs

    def subset_sums(self) -> Set[int]:
        """All subset sums of the items."""
        sums: Set[int] = set()
        for r in range(len(self.items) + 1):
            for combo in itertools.combinations(self.items, r):
                sums.add(sum(combo))
        return sums


class _Special:
    """The special item ◦ of the Subset Cost construction."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "◦"


SPECIAL = _Special()


def _all_partitions(items: Sequence[object]) -> Iterable[List[List[object]]]:
    items = list(items)
    if not items:
        yield []
        return

    def _recurse(index: int, blocks: List[List[object]]):
        if index == len(items):
            yield [list(b) for b in blocks]
            return
        for block in blocks:
            block.append(items[index])
            yield from _recurse(index + 1, blocks)
            block.pop()
        blocks.append([items[index]])
        yield from _recurse(index + 1, blocks)
        blocks.pop()

    yield from _recurse(0, [])


# -- the SGF-Opt reduction (Theorem 4) ----------------------------------------------------


@dataclass
class SGFReduction:
    """The constructed SGF-Opt instance for a Subset Sum instance ``(A, k)``."""

    items: Tuple[int, ...]
    query: SGFQuery
    database: Database
    constants: CostConstants

    @property
    def gamma(self) -> int:
        return sum(self.items)


def build_sgf_reduction(items: Sequence[int]) -> SGFReduction:
    """Construct the SGF-Opt instance of Theorem 4 for the item set *items*.

    For each ``a_i`` a query ``f_i := R_i(x, y) ⋉ S_i(x, 1)`` is created where
    ``R_i`` is empty and ``S_i`` holds ``a_i`` tuples of 1 MB each (with 0 in
    the second field so that the constant-1 condition filters everything).
    The query ``f°`` guards the empty relation ``R°`` and references every
    ``R_i`` and ``S_i``.  The cost constants are all zero except ``h_r = 1``,
    so the cost of any job collapses to the number of MB it reads from HDFS.
    """
    items = tuple(int(a) for a in items)
    if not items or any(a <= 0 for a in items):
        raise ValueError("items must be positive integers")

    x, y = Variable("x"), Variable("y")
    database = Database()
    queries: List[BSGFQuery] = []
    bytes_per_field = int(REDUCTION_TUPLE_MB * 1024 * 1024 / 2)

    conditional_atoms: List[Atom] = []
    for index, a_i in enumerate(items, start=1):
        r_name, s_name = f"R{index}", f"S{index}"
        database.ensure_relation(r_name, 2, bytes_per_field)
        s_relation = Relation(s_name, 2, bytes_per_field)
        for row_id in range(a_i):
            s_relation.add((f"s{index}_{row_id}", 0))
        database.add_relation(s_relation)
        queries.append(
            BSGFQuery(
                output=f"f{index}",
                projection=(x,),
                guard=Atom(r_name, (x, y)),
                condition=AtomCondition(Atom(s_name, (x, Constant(1)))),
            )
        )
        # Each conditional atom of f° uses its own variables so that the
        # guardedness restriction (shared variables must occur in the guard)
        # is respected; the relations referenced are what matters for the cost.
        conditional_atoms.append(
            Atom(r_name, (Variable(f"xr{index}"), Variable(f"yr{index}")))
        )
        conditional_atoms.append(Atom(s_name, (Variable(f"xs{index}"), Constant(1))))

    database.ensure_relation("Rcirc", 2, bytes_per_field)
    queries.append(
        BSGFQuery(
            output="fcirc",
            projection=(x,),
            guard=Atom("Rcirc", (x, Constant(1))),
            condition=conjunction([AtomCondition(a) for a in conditional_atoms]),
        )
    )

    query = SGFQuery(tuple(queries), name="sgf-opt-reduction")
    constants = CostConstants.reduction_values()
    return SGFReduction(
        items=items, query=query, database=database, constants=constants
    )
