"""Query plans: translating (sets of) BSGF queries into MR programs.

A *basic MR program* for a set of BSGF queries (Sections 4.4–4.5) consists of
one ``MSJ(S_i)`` job per block of a partition of the queries' semi-joins plus
a single EVAL job combining the semi-join outcomes per query.  This module
provides :class:`BasicPlan` (the partition plus bookkeeping, with a
human-readable description used by the plan-exploration example) and the
builders that turn plans into executable
:class:`~repro.mapreduce.program.MRProgram` DAGs:

* :func:`build_two_round_program` — the generic MSJ/EVAL two-round shape;
* :func:`build_one_round_program` — the fused 1-ROUND job (Section 5.1 (4));
* :func:`build_sequential_program` — the SEQ chain of semi-join reducer steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..mapreduce.program import MRProgram
from ..query.bsgf import BSGFQuery, SemiJoinSpec
from .chain import SemiJoinChainJob, UnionProjectJob, to_dnf
from .eval_job import EvalJob, EvalTarget
from .fused import FusedOneRoundJob
from .msj import MSJJob
from .options import GumboOptions


@dataclass
class BasicPlan:
    """A basic MR program for a set of BSGF queries, before materialisation.

    ``groups`` is a partition of the union of the queries' semi-join specs;
    each group becomes one MSJ job and the EVAL job combines everything.
    """

    queries: List[BSGFQuery]
    groups: List[List[SemiJoinSpec]]
    options: GumboOptions = field(default_factory=GumboOptions)
    name: str = "plan"

    def __post_init__(self) -> None:
        expected = {
            spec.output
            for query in self.queries
            for spec in query.semijoin_specs()
        }
        actual = [spec.output for group in self.groups for spec in group]
        if sorted(actual) != sorted(expected):
            raise ValueError(
                "the groups do not form a partition of the queries' semi-joins"
            )

    @property
    def num_jobs(self) -> int:
        """MSJ jobs plus the EVAL job."""
        return len([g for g in self.groups if g]) + 1

    @property
    def rounds(self) -> int:
        return 2

    def to_program(self) -> MRProgram:
        return build_two_round_program(
            self.queries, self.groups, self.options, name=self.name
        )

    def describe(self) -> str:
        """A textual rendering such as ``EVAL(R, Z) <- MSJ(X1, X2) | MSJ(X3)``."""
        msj_parts = [
            "MSJ(" + ", ".join(spec.output for spec in group) + ")"
            for group in self.groups
            if group
        ]
        eval_part = "EVAL(" + ", ".join(q.output for q in self.queries) + ")"
        return eval_part + " <- " + (
            " | ".join(msj_parts) if msj_parts else "(no semi-joins)"
        )


# -- two-round (MSJ + EVAL) programs -------------------------------------------------


def eval_targets_for(queries: Sequence[BSGFQuery]) -> List[EvalTarget]:
    """The EVAL targets of a query set, using the default intermediate names."""
    return [
        EvalTarget(
            query,
            tuple(spec.output for spec in query.semijoin_specs()),
        )
        for query in queries
    ]


def build_two_round_program(
    queries: Sequence[BSGFQuery],
    groups: Sequence[Sequence[SemiJoinSpec]],
    options: Optional[GumboOptions] = None,
    name: str = "basic",
    job_prefix: str = "",
) -> MRProgram:
    """Materialise a basic MR program: one MSJ job per group plus one EVAL job."""
    options = options or GumboOptions()
    program = MRProgram(name)
    msj_ids: List[str] = []
    for index, group in enumerate(g for g in groups if g):
        job = MSJJob(
            f"{job_prefix}msj-{index}",
            list(group),
            options=options,
            emit_projection=False,
        )
        program.add_job(job)
        msj_ids.append(job.job_id)
    eval_job = EvalJob(f"{job_prefix}eval", eval_targets_for(queries), options=options)
    program.add_job(eval_job, depends_on=msj_ids)
    return program


def build_one_round_program(
    queries: Sequence[BSGFQuery],
    options: Optional[GumboOptions] = None,
    name: str = "one-round",
    job_prefix: str = "",
) -> MRProgram:
    """Materialise the fused single-job program (requires shared join keys)."""
    options = options or GumboOptions()
    program = MRProgram(name)
    program.add_job(
        FusedOneRoundJob(f"{job_prefix}fused", list(queries), options=options)
    )
    return program


# -- sequential (SEQ) programs ------------------------------------------------------------


def build_sequential_program(
    query: BSGFQuery,
    options: Optional[GumboOptions] = None,
    name: Optional[str] = None,
    job_prefix: str = "",
) -> MRProgram:
    """The SEQ plan of one BSGF query: chains of semi-join reducer steps.

    The condition is rewritten to DNF; each disjunct becomes a chain of
    filtering jobs over the guard relation (running in parallel with the other
    disjuncts' chains) and a final union/projection job combines the branches.
    A single-disjunct query skips the union job by applying the projection in
    its last chain step.
    """
    options = options or GumboOptions()
    program = MRProgram(name or f"seq-{query.output}")
    disjuncts = to_dnf(query.condition)

    if not disjuncts:
        # The condition is unsatisfiable (e.g. NOT TRUE): emit an empty output
        # by unioning over a relation that does not exist in the database.
        program.add_job(
            UnionProjectJob(
                f"{job_prefix}empty",
                [f"{query.output}__nothing"],
                query.guard,
                query.projection,
                query.output,
                options=options,
            )
        )
        return program

    if not query.has_condition or disjuncts == [[]]:
        # No WHERE clause: a single projection/deduplication job.
        program.add_job(
            UnionProjectJob(
                f"{job_prefix}project",
                [query.guard.relation],
                query.guard,
                query.projection,
                query.output,
                options=options,
            )
        )
        return program

    single_branch = len(disjuncts) == 1
    branch_outputs: List[str] = []
    for b_index, literals in enumerate(disjuncts):
        current = query.guard.relation
        previous_job: Optional[str] = None
        if not literals:
            # An always-true disjunct: the full guard survives this branch.
            branch_outputs.append(current)
            continue
        for s_index, literal in enumerate(literals):
            is_last = s_index == len(literals) - 1
            output_name = (
                query.output
                if (is_last and single_branch)
                else f"{query.output}__b{b_index}s{s_index}"
            )
            projection = query.projection if (is_last and single_branch) else None
            job = SemiJoinChainJob(
                f"{job_prefix}chain-b{b_index}-s{s_index}",
                input_name=current,
                guard_atom=query.guard,
                literal=literal,
                output_name=output_name,
                projection=projection,
                options=options,
            )
            program.add_job(job, depends_on=[previous_job] if previous_job else None)
            previous_job = job.job_id
            current = output_name
        branch_outputs.append(current)

    if not single_branch:
        chain_job_ids = [job.job_id for job in program.jobs]
        union = UnionProjectJob(
            f"{job_prefix}union",
            branch_outputs,
            query.guard,
            query.projection,
            query.output,
            options=options,
        )
        program.add_job(union, depends_on=chain_job_ids)
    return program


def build_sequential_program_for_set(
    queries: Sequence[BSGFQuery],
    options: Optional[GumboOptions] = None,
    name: str = "seq",
) -> MRProgram:
    """SEQ over a set of BSGF queries: the queries run one after the other."""
    options = options or GumboOptions()
    program: Optional[MRProgram] = None
    for index, query in enumerate(queries):
        piece = build_sequential_program(
            query, options, name=f"{name}-{query.output}", job_prefix=f"q{index}-"
        )
        program = piece if program is None else program.then(piece, name=name)
    if program is None:
        raise ValueError("no queries given")
    program.name = name
    return program
