"""Plan strategies: SEQ, PAR, GREEDY, 1-ROUND, SEQUNIT, PARUNIT, GREEDY-SGF.

These are the evaluation strategies compared throughout Section 5 of the
paper.  Each strategy is a function from a query (set) plus a cost estimator
to an executable :class:`~repro.mapreduce.program.MRProgram`:

BSGF strategies (Sections 5.2 / 5.4)
    * ``SEQ``     — classic sequential semi-join reducer chains;
    * ``PAR``     — every semi-join in its own MSJ job, all in parallel, plus
      one EVAL job (naive parallel plan, no grouping);
    * ``GREEDY``  — semi-joins grouped by ``Greedy-BSGF``;
    * ``OPTIMAL`` — semi-joins grouped by brute-force ``BSGF-Opt`` (small
      queries only);
    * ``1-ROUND`` — the fused single-job plan (requires a shared join key).

SGF strategies (Section 5.3)
    * ``SEQUNIT``    — BSGF subqueries one at a time, bottom-up, every
      semi-join in its own job;
    * ``PARUNIT``    — dependency levels bottom-up, subqueries of a level in
      parallel, every semi-join in its own job;
    * ``GREEDY-SGF`` — the greedy multiway topological sort, each group
      evaluated with ``Greedy-BSGF`` grouping;
    * ``OPTIMAL-SGF``— brute-force sort (small queries only).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..cost.estimates import RelationStats, StatisticsCatalog
from ..mapreduce.program import MRProgram
from ..query.bsgf import BSGFQuery
from ..query.dependency import DependencyGraph
from ..query.sgf import SGFQuery
from .costing import PlanCostEstimator
from .fused import one_round_applicable
from .greedy_bsgf import (
    greedy_partition,
    optimal_partition,
    single_group_partition,
    singleton_partition,
)
from .greedy_sgf import (
    greedy_multiway_sort,
    optimal_multiway_sort,
    parunit_sort,
    sequnit_sort,
)
from .messages import FIELD_BYTES
from .options import GumboOptions
from .plan import (
    BasicPlan,
    build_one_round_program,
    build_sequential_program_for_set,
    build_two_round_program,
)

#: Canonical names of the BSGF strategies.
SEQ = "seq"
PAR = "par"
GREEDY = "greedy"
OPTIMAL = "optimal"
ONE_ROUND = "1-round"

#: Canonical names of the SGF strategies.
SEQUNIT = "sequnit"
PARUNIT = "parunit"
GREEDY_SGF = "greedy-sgf"
OPTIMAL_SGF = "optimal-sgf"

#: The cost-based meta-strategy: cost every applicable strategy, keep the
#: cheapest.  Not itself a member of the applicable-strategy matrix.
AUTO = "auto"

BSGF_STRATEGIES = (SEQ, PAR, GREEDY, OPTIMAL, ONE_ROUND)
SGF_STRATEGIES = (SEQUNIT, PARUNIT, GREEDY_SGF, OPTIMAL_SGF)

_MB = 1024.0 * 1024.0


#: Accepted aliases for strategy names.
_ALIASES = {
    "one-round": ONE_ROUND,
    "oneround": ONE_ROUND,
    "1round": ONE_ROUND,
    "greedy-bsgf": GREEDY,
    "greedysgf": GREEDY_SGF,
    "sgf-greedy": GREEDY_SGF,
    "cost": AUTO,
    "best": AUTO,
}


def _normalise(strategy: str) -> str:
    name = strategy.strip().lower().replace("_", "-").replace(" ", "-")
    return _ALIASES.get(name, name)


def normalise_strategy(strategy: str) -> str:
    """Canonical form of a strategy name (aliases resolved, e.g. → ``auto``)."""
    return _normalise(strategy)


def applicable_strategies(
    query: SGFQuery,
    include_optimal: bool = True,
    max_optimal_specs: int = 6,
    max_optimal_subqueries: int = 5,
) -> List[str]:
    """Every evaluation strategy applicable to *query*, in canonical order.

    This is the strategy matrix the differential fuzzer (:mod:`repro.fuzz`)
    sweeps: nested queries (with dependencies between subqueries) get the SGF
    strategies, flat query sets get the BSGF strategies.  The brute-force
    OPTIMAL variants enumerate set partitions / topological sorts, so they are
    only included below the given size bounds (or never, when
    *include_optimal* is false); 1-ROUND is included only when every subquery
    satisfies the shared-join-key condition of Section 5.1.
    """
    nested = bool(query.intermediate_names)
    if nested:
        names = [SEQUNIT, PARUNIT, GREEDY_SGF]
        if include_optimal and len(query) <= max_optimal_subqueries:
            names.append(OPTIMAL_SGF)
        return names
    names = [SEQ, PAR, GREEDY]
    total_specs = sum(len(q.conditional_atoms) for q in query)
    if include_optimal and total_specs <= max_optimal_specs:
        names.append(OPTIMAL)
    if all(one_round_applicable(q) for q in query):
        names.append(ONE_ROUND)
    return names


# -- BSGF query sets ---------------------------------------------------------------


def all_semijoin_specs(queries: Sequence[BSGFQuery]):
    specs = []
    for query in queries:
        specs.extend(query.semijoin_specs())
    return specs


def build_bsgf_program(
    queries: Sequence[BSGFQuery],
    strategy: str,
    estimator: Optional[PlanCostEstimator] = None,
    options: Optional[GumboOptions] = None,
    name: Optional[str] = None,
) -> MRProgram:
    """Build the MR program evaluating a set of BSGF queries under *strategy*."""
    queries = list(queries)
    if not queries:
        raise ValueError("no queries given")
    options = options or GumboOptions()
    strategy = _normalise(strategy)
    name = name or f"{strategy}:{'+'.join(q.output for q in queries)}"

    if strategy == SEQ:
        return build_sequential_program_for_set(queries, options, name=name)

    if strategy == ONE_ROUND:
        for query in queries:
            if not one_round_applicable(query):
                raise ValueError(
                    f"1-ROUND is not applicable to query {query.output!r} "
                    f"(conditional atoms use different join keys)"
                )
        return build_one_round_program(queries, options, name=name)

    specs = all_semijoin_specs(queries)
    if strategy == PAR:
        groups = singleton_partition(specs)
    elif strategy == GREEDY:
        if estimator is None:
            raise ValueError("the GREEDY strategy needs a cost estimator")
        groups = greedy_partition(specs, estimator)
    elif strategy == OPTIMAL:
        if estimator is None:
            raise ValueError("the OPTIMAL strategy needs a cost estimator")
        groups, _ = optimal_partition(specs, estimator)
    else:
        raise ValueError(
            f"unknown BSGF strategy {strategy!r}; expected one of {BSGF_STRATEGIES}"
        )
    plan = BasicPlan(queries, groups, options, name=name)
    return plan.to_program()


def bsgf_plan(
    queries: Sequence[BSGFQuery],
    strategy: str,
    estimator: Optional[PlanCostEstimator] = None,
    options: Optional[GumboOptions] = None,
) -> BasicPlan:
    """The :class:`BasicPlan` (partition view) for the two-round strategies."""
    queries = list(queries)
    options = options or GumboOptions()
    strategy = _normalise(strategy)
    specs = all_semijoin_specs(queries)
    if strategy == PAR:
        groups = singleton_partition(specs)
    elif strategy == GREEDY:
        if estimator is None:
            raise ValueError("the GREEDY strategy needs a cost estimator")
        groups = greedy_partition(specs, estimator)
    elif strategy == OPTIMAL:
        if estimator is None:
            raise ValueError("the OPTIMAL strategy needs a cost estimator")
        groups, _ = optimal_partition(specs, estimator)
    elif strategy == ONE_ROUND:
        groups = single_group_partition(specs)
    else:
        raise ValueError(f"strategy {strategy!r} has no BasicPlan representation")
    return BasicPlan(queries, groups, options, name=strategy)


# -- SGF queries ---------------------------------------------------------------------------


def register_intermediate_estimates(
    query: SGFQuery, catalog: StatisticsCatalog
) -> None:
    """Register upper-bound size estimates for every subquery output.

    Later subqueries of an SGF query reference the outputs of earlier ones
    before they exist; the planner therefore seeds the statistics catalog with
    the paper's upper bound (every conforming guard fact survives), computed
    bottom-up so that estimates may themselves build on estimates.
    """
    for subquery in query:
        if catalog.has_relation(subquery.output):
            continue
        guard_count = catalog.atom_count(subquery.guard)
        arity = max(1, len(subquery.projection))
        size_mb = guard_count * arity * FIELD_BYTES / _MB
        catalog.register_estimate(
            RelationStats(
                name=subquery.output,
                tuples=int(guard_count),
                arity=arity,
                size_mb=size_mb,
                bytes_per_field=FIELD_BYTES,
            )
        )


def build_sgf_program(
    query: SGFQuery,
    strategy: str,
    estimator: Optional[PlanCostEstimator] = None,
    options: Optional[GumboOptions] = None,
    name: Optional[str] = None,
) -> MRProgram:
    """Build the MR program evaluating an SGF query under *strategy*."""
    options = options or GumboOptions()
    strategy = _normalise(strategy)
    name = name or f"{strategy}:{query.name}"
    graph = DependencyGraph(query)

    if estimator is not None:
        register_intermediate_estimates(query, estimator.catalog)

    if strategy == SEQUNIT:
        groups = sequnit_sort(graph)
        grouping = PAR
    elif strategy == PARUNIT:
        groups = parunit_sort(graph)
        grouping = PAR
    elif strategy == GREEDY_SGF:
        groups = greedy_multiway_sort(graph)
        grouping = GREEDY
    elif strategy == OPTIMAL_SGF:
        if estimator is None:
            raise ValueError("the OPTIMAL-SGF strategy needs a cost estimator")
        groups, _ = optimal_multiway_sort(
            graph,
            lambda queries: _group_cost(queries, estimator),
        )
        grouping = GREEDY
    else:
        raise ValueError(
            f"unknown SGF strategy {strategy!r}; expected one of {SGF_STRATEGIES}"
        )

    program: Optional[MRProgram] = None
    for stage_index, group in enumerate(groups):
        stage_queries = [graph.subquery(q) for q in group]
        if grouping == PAR:
            stage_program = _ungrouped_stage_program(
                stage_queries, options, prefix=f"s{stage_index}-"
            )
        else:
            specs = all_semijoin_specs(stage_queries)
            if estimator is None:
                raise ValueError("the GREEDY-SGF strategy needs a cost estimator")
            stage_groups = greedy_partition(specs, estimator)
            stage_program = build_two_round_program(
                stage_queries,
                stage_groups,
                options,
                name=f"{name}-stage{stage_index}",
                job_prefix=f"s{stage_index}-",
            )
        program = (
            stage_program
            if program is None
            else program.then(stage_program, name=name)
        )
    assert program is not None
    program.name = name
    return program


def _ungrouped_stage_program(
    queries: Sequence[BSGFQuery],
    options: GumboOptions,
    prefix: str,
) -> MRProgram:
    """One stage of SEQUNIT/PARUNIT: per query, singleton MSJ jobs + its own EVAL."""
    program = MRProgram(f"{prefix}stage")
    for q_index, query in enumerate(queries):
        specs = query.semijoin_specs()
        groups = singleton_partition(specs)
        piece = build_two_round_program(
            [query],
            groups,
            options,
            name=f"{prefix}{query.output}",
            job_prefix=f"{prefix}q{q_index}-",
        )
        for job in piece.jobs:
            program.add_job(job, piece.dependencies_of(job.job_id))
    return program


def _group_cost(
    queries: Sequence[BSGFQuery], estimator: PlanCostEstimator
) -> float:
    """cost(GOPT(F_i)): greedy grouping cost of one multiway-sort group."""
    specs = all_semijoin_specs(queries)
    groups = greedy_partition(specs, estimator)
    return estimator.basic_program_cost(queries, groups)


def sgf_group_cost(
    queries: Sequence[BSGFQuery], estimator: PlanCostEstimator
) -> float:
    """Public alias of the per-group cost used by Greedy-SGF / SGF-Opt."""
    return _group_cost(queries, estimator)


# -- AUTO: cost-based strategy selection ------------------------------------------------


@dataclass(frozen=True)
class StrategyChoice:
    """Outcome of cost-based strategy selection for one query.

    ``strategy``/``program``/``cost`` describe the winner; ``costs`` has the
    estimated cost of *every* candidate that planned successfully (the chosen
    strategy's cost is the minimum by construction) and ``errors`` the
    candidates that could not be planned (message keyed by strategy name).
    """

    strategy: str
    program: MRProgram
    cost: float
    costs: Dict[str, float]
    errors: Dict[str, str]

    def describe(self) -> str:
        lines = [f"AUTO chose {self.strategy!r} (estimated cost {self.cost:.1f} s)"]
        for name in sorted(self.costs, key=self.costs.get):
            marker = "*" if name == self.strategy else " "
            lines.append(f"  {marker} {name:<12} {self.costs[name]:>12.1f} s")
        for name, message in sorted(self.errors.items()):
            lines.append(f"    {name:<12} failed: {message}")
        return "\n".join(lines)


def choose_strategy(
    query: SGFQuery,
    estimator: PlanCostEstimator,
    options: Optional[GumboOptions] = None,
    include_optimal: bool = True,
) -> StrategyChoice:
    """Cost every applicable strategy for *query* and return the cheapest.

    Every candidate of :func:`applicable_strategies` is planned into an
    executable :class:`~repro.mapreduce.program.MRProgram` and costed with
    :meth:`PlanCostEstimator.program_cost` — the same estimator that drives
    the greedy optimizers, so the comparison is apples to apples.  Ties keep
    the earlier candidate in canonical order; a candidate whose planner
    raises is recorded in ``errors`` and skipped.  At least one candidate
    always plans (SEQ / SEQUNIT have no applicability precondition).
    """
    options = options or GumboOptions()
    nested = bool(query.intermediate_names)
    register_intermediate_estimates(query, estimator.catalog)
    costs: Dict[str, float] = {}
    errors: Dict[str, str] = {}
    best: Optional[Tuple[float, str, MRProgram]] = None
    for name in applicable_strategies(query, include_optimal=include_optimal):
        try:
            if nested:
                program = build_sgf_program(query, name, estimator, options)
            else:
                program = build_bsgf_program(
                    list(query.subqueries), name, estimator, options
                )
            cost = estimator.program_cost(program)
        except Exception as exc:  # noqa: BLE001 - a failing candidate is skipped
            errors[name] = f"{type(exc).__name__}: {exc}"
            continue
        costs[name] = cost
        if best is None or cost < best[0]:
            best = (cost, name, program)
    if best is None:
        raise ValueError(
            f"no applicable strategy could be planned for query {query.name!r}: "
            + "; ".join(f"{n}: {m}" for n, m in errors.items())
        )
    cost, name, program = best
    return StrategyChoice(
        strategy=name, program=program, cost=cost, costs=costs, errors=errors
    )
