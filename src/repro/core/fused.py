"""The fused 1-ROUND job: MSJ and EVAL combined into a single MapReduce job.

Section 5.1, optimisation (4): when all conditional atoms of a BSGF query
share the same join key with the guard, the semi-join evaluation and the
Boolean combination can be performed by one job — every guard fact and every
relevant conditional fact meet at the reducer responsible for the shared key,
so the reducer can evaluate the full condition and emit the output directly.
The same fusion applies to several BSGF queries at once (each query keeps its
own key space via a target index in the key).

Queries A3 and B2 of the paper's experiments are evaluated this way by the
1-ROUND strategy.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..mapreduce.job import (
    Key,
    MapReduceJob,
    OutputFact,
    REDUCERS_BY_INPUT,
    REDUCERS_BY_INTERMEDIATE,
)
from ..model.atoms import Atom
from ..model.terms import Variable
from ..query.bsgf import BSGFQuery
from .messages import AssertMessage, RequestMessage, pack_messages, unpack_messages
from .options import GumboOptions


class OneRoundNotApplicableError(ValueError):
    """Raised when a query does not satisfy the shared-join-key requirement."""


def one_round_applicable(query: BSGFQuery) -> bool:
    """True when the query can be evaluated by the fused 1-ROUND job.

    The requirement implemented here is the shared-join-key condition of
    Section 5.1 (all conditional atoms agree on the join key with the guard).
    Queries without any conditional atom are trivially applicable.
    """
    return query.shares_join_key()


class FusedOneRoundJob(MapReduceJob):
    """A single job evaluating one or more shared-key BSGF queries end to end."""

    def __init__(
        self,
        job_id: str,
        queries: Sequence[BSGFQuery],
        options: Optional[GumboOptions] = None,
    ) -> None:
        super().__init__(job_id)
        queries = list(queries)
        if not queries:
            raise ValueError("the fused job needs at least one query")
        for query in queries:
            if not one_round_applicable(query):
                raise OneRoundNotApplicableError(
                    f"query {query.output!r} has conditional atoms with "
                    f"different join keys; 1-ROUND evaluation is not applicable"
                )
        outputs = [q.output for q in queries]
        if len(set(outputs)) != len(outputs):
            raise ValueError("query outputs must be pairwise distinct")
        self.queries: List[BSGFQuery] = queries
        self.options = options or GumboOptions()
        self.reducer_allocation = (
            REDUCERS_BY_INTERMEDIATE
            if self.options.reducers_by_intermediate
            else REDUCERS_BY_INPUT
        )
        # Per query: the shared join key (guard-variable order) and, per
        # conditional atom, its global assert tag.
        self._join_keys: List[Tuple[Variable, ...]] = []
        self._atom_tags: List[Dict[Atom, int]] = []
        self._tags: List[Tuple[int, Atom, Tuple[Variable, ...]]] = []
        for q_index, query in enumerate(queries):
            specs = query.semijoin_specs()
            join_key = specs[0].join_key if specs else ()
            self._join_keys.append(join_key)
            tags: Dict[Atom, int] = {}
            for atom in query.conditional_atoms:
                tag = len(self._tags)
                tags[atom] = tag
                self._tags.append((q_index, atom, join_key))
            self._atom_tags.append(tags)

    # -- schema -------------------------------------------------------------------

    def input_relations(self) -> Sequence[str]:
        seen: List[str] = []
        for query in self.queries:
            if query.guard.relation not in seen:
                seen.append(query.guard.relation)
            for atom in query.conditional_atoms:
                if atom.relation not in seen:
                    seen.append(atom.relation)
        return seen

    def output_schema(self) -> Dict[str, int]:
        return {
            query.output: max(1, len(query.projection)) for query in self.queries
        }

    # -- map / combine / reduce -------------------------------------------------------

    def map(self, relation: str, row: Tuple[object, ...]) -> Iterable[
        Tuple[Key, object]
    ]:
        pairs: List[Tuple[Key, object]] = []
        for q_index, query in enumerate(self.queries):
            if query.guard.relation == relation:
                binding = query.guard.match(row)
                if binding is not None:
                    key_values = tuple(
                        binding[v] for v in self._join_keys[q_index]
                    )
                    pairs.append(
                        (
                            (q_index,) + key_values,
                            RequestMessage(
                                index=q_index,
                                payload=tuple(row),
                                by_reference=self.options.tuple_reference,
                            ),
                        )
                    )
        for tag, (q_index, atom, join_key) in enumerate(self._tags):
            if atom.relation != relation:
                continue
            binding = atom.match(row)
            if binding is None:
                continue
            key_values = tuple(binding[v] for v in join_key)
            pairs.append(((q_index,) + key_values, AssertMessage(tag)))
        return pairs

    def uses_combiner(self) -> bool:
        return self.options.message_packing

    def combine(self, key: Key, values: List[object]) -> List[object]:
        return pack_messages(values)

    def reduce(self, key: Key, values: List[object]) -> Iterable[OutputFact]:
        messages = list(unpack_messages(values))
        asserted = {m.tag for m in messages if isinstance(m, AssertMessage)}
        for message in messages:
            if not isinstance(message, RequestMessage):
                continue
            q_index = message.index
            query = self.queries[q_index]
            tags = self._atom_tags[q_index]
            holds = query.condition.evaluate(lambda atom: tags[atom] in asserted)
            if not holds:
                continue
            binding = query.guard.match(message.payload)
            if binding is None:  # pragma: no cover - defensive
                continue
            projected = tuple(binding[v] for v in query.projection)
            yield (query.output, projected if projected else (message.payload[0],))

    def __repr__(self) -> str:
        inner = ", ".join(q.output for q in self.queries)
        return f"FusedOneRoundJob({self.job_id!r}: {inner})"
