"""The fused 1-ROUND job: MSJ and EVAL combined into a single MapReduce job.

Section 5.1, optimisation (4): when all conditional atoms of a BSGF query
share the same join key with the guard, the semi-join evaluation and the
Boolean combination can be performed by one job — every guard fact and every
relevant conditional fact meet at the reducer responsible for the shared key,
so the reducer can evaluate the full condition and emit the output directly.
The same fusion applies to several BSGF queries at once (each query keeps its
own key space via a target index in the key).

Queries A3 and B2 of the paper's experiments are evaluated this way by the
1-ROUND strategy.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..mapreduce.job import (
    Key,
    MapReduceJob,
    OutputFact,
    REDUCERS_BY_INPUT,
    REDUCERS_BY_INTERMEDIATE,
)
from collections import Counter

from ..mapreduce.kernels import (
    MapBatch,
    PackedChunkAccumulator,
    PlainPairAccumulator,
    as_column_block,
)
from ..model.atoms import Atom
from ..model.terms import Variable
from ..query.bsgf import BSGFQuery
from .messages import (
    AssertMessage,
    FIELD_BYTES,
    RequestMessage,
    TAG_BYTES,
    TUPLE_REFERENCE_BYTES,
    pack_messages,
    unpack_messages,
)
from .options import GumboOptions


class OneRoundNotApplicableError(ValueError):
    """Raised when a query does not satisfy the shared-join-key requirement."""


def one_round_applicable(query: BSGFQuery) -> bool:
    """True when the query can be evaluated by the fused 1-ROUND job.

    The requirement implemented here is the shared-join-key condition of
    Section 5.1 (all conditional atoms agree on the join key with the guard).
    Queries without any conditional atom are trivially applicable.
    """
    return query.shares_join_key()


class FusedOneRoundJob(MapReduceJob):
    """A single job evaluating one or more shared-key BSGF queries end to end."""

    def __init__(
        self,
        job_id: str,
        queries: Sequence[BSGFQuery],
        options: Optional[GumboOptions] = None,
    ) -> None:
        super().__init__(job_id)
        queries = list(queries)
        if not queries:
            raise ValueError("the fused job needs at least one query")
        for query in queries:
            if not one_round_applicable(query):
                raise OneRoundNotApplicableError(
                    f"query {query.output!r} has conditional atoms with "
                    f"different join keys; 1-ROUND evaluation is not applicable"
                )
        outputs = [q.output for q in queries]
        if len(set(outputs)) != len(outputs):
            raise ValueError("query outputs must be pairwise distinct")
        self.queries: List[BSGFQuery] = queries
        self.options = options or GumboOptions()
        self.reducer_allocation = (
            REDUCERS_BY_INTERMEDIATE
            if self.options.reducers_by_intermediate
            else REDUCERS_BY_INPUT
        )
        # Per query: the shared join key (guard-variable order) and, per
        # conditional atom, its global assert tag.
        self._join_keys: List[Tuple[Variable, ...]] = []
        self._atom_tags: List[Dict[Atom, int]] = []
        self._tags: List[Tuple[int, Atom, Tuple[Variable, ...]]] = []
        for q_index, query in enumerate(queries):
            specs = query.semijoin_specs()
            join_key = specs[0].join_key if specs else ()
            self._join_keys.append(join_key)
            tags: Dict[Atom, int] = {}
            for atom in query.conditional_atoms:
                tag = len(self._tags)
                tags[atom] = tag
                self._tags.append((q_index, atom, join_key))
            self._atom_tags.append(tags)

    # -- schema -------------------------------------------------------------------

    def input_relations(self) -> Sequence[str]:
        seen: List[str] = []
        for query in self.queries:
            if query.guard.relation not in seen:
                seen.append(query.guard.relation)
            for atom in query.conditional_atoms:
                if atom.relation not in seen:
                    seen.append(atom.relation)
        return seen

    def output_schema(self) -> Dict[str, int]:
        return {
            query.output: max(1, len(query.projection)) for query in self.queries
        }

    # -- map / combine / reduce -------------------------------------------------------

    def map(self, relation: str, row: Tuple[object, ...]) -> Iterable[
        Tuple[Key, object]
    ]:
        pairs: List[Tuple[Key, object]] = []
        for q_index, query in enumerate(self.queries):
            if query.guard.relation == relation:
                binding = query.guard.match(row)
                if binding is not None:
                    key_values = tuple(
                        binding[v] for v in self._join_keys[q_index]
                    )
                    pairs.append(
                        (
                            (q_index,) + key_values,
                            RequestMessage(
                                index=q_index,
                                payload=tuple(row),
                                by_reference=self.options.tuple_reference,
                            ),
                        )
                    )
        for tag, (q_index, atom, join_key) in enumerate(self._tags):
            if atom.relation != relation:
                continue
            binding = atom.match(row)
            if binding is None:
                continue
            key_values = tuple(binding[v] for v in join_key)
            pairs.append(((q_index,) + key_values, AssertMessage(tag)))
        return pairs

    def uses_combiner(self) -> bool:
        return self.options.message_packing

    def combine(self, key: Key, values: List[object]) -> List[object]:
        return pack_messages(values)

    def reduce(self, key: Key, values: List[object]) -> Iterable[OutputFact]:
        messages = list(unpack_messages(values))
        asserted = {m.tag for m in messages if isinstance(m, AssertMessage)}
        for message in messages:
            if not isinstance(message, RequestMessage):
                continue
            q_index = message.index
            query = self.queries[q_index]
            tags = self._atom_tags[q_index]
            holds = query.condition.evaluate(lambda atom: tags[atom] in asserted)
            if not holds:
                continue
            binding = query.guard.match(message.payload)
            if binding is None:  # pragma: no cover - defensive
                continue
            projected = tuple(binding[v] for v in query.projection)
            yield (query.output, projected if projected else (message.payload[0],))

    # -- batch kernel ----------------------------------------------------------------

    def supports_kernel(self) -> bool:
        return True

    def _kernel(self) -> "_FusedKernel":
        kernel = self.__dict__.get("_kernel_cache")
        if kernel is None:
            kernel = self.__dict__["_kernel_cache"] = _FusedKernel(self)
        return kernel

    # -- SQL compilation -------------------------------------------------------------

    def supports_sql(self) -> bool:
        return True

    def to_sql(self):
        plan = self.__dict__.get("_sql_cache")
        if plan is None:
            from ..exec.sql.compiler import FusedPlan

            plan = self.__dict__["_sql_cache"] = FusedPlan(self)
        return plan

    def map_batch(self, relation: str, chunks) -> MapBatch:
        return self._kernel().map_batch(relation, chunks)

    def reduce_batch(self, batches) -> Dict[str, Iterable[Tuple[object, ...]]]:
        return self._kernel().reduce_batch(batches)

    def __repr__(self) -> str:
        inner = ", ".join(q.output for q in self.queries)
        return f"FusedOneRoundJob({self.job_id!r}: {inner})"


class _FusedKernel:
    """Set-based evaluation plan for one :class:`FusedOneRoundJob`.

    The shared join key means every query can be evaluated as: build one key
    set per conditional atom tag, compute per guard row its membership
    bitmask over the query's atoms, and evaluate the Boolean condition once
    per distinct mask (memoised).  Pair accounting mirrors the interpreted
    map+combiner exactly: keys are ``(query index,) + join-key values``,
    requests carry the full guard row, asserts deduplicate per chunk-key
    under message packing.
    """

    def __init__(self, job: FusedOneRoundJob) -> None:
        self.job = job
        by_reference = job.options.tuple_reference
        #: relation -> [(q index, arity, matcher, key positions, key extractor,
        #:               req size)]
        self.guards: Dict[str, List[tuple]] = {}
        #: relation -> [(tag, q index, arity, matcher, key positions,
        #:               key extractor)]
        self.tags: Dict[str, List[tuple]] = {}
        for q_index, query in enumerate(job.queries):
            compiled = query.guard.compile()
            request_size = TAG_BYTES + (
                TUPLE_REFERENCE_BYTES
                if by_reference
                else max(1, query.guard.arity) * FIELD_BYTES
            )
            self.guards.setdefault(query.guard.relation, []).append(
                (
                    q_index,
                    compiled.arity,
                    compiled.matcher,
                    compiled.positions(job._join_keys[q_index]),
                    compiled.extractor(job._join_keys[q_index]),
                    request_size,
                )
            )
        for tag, (q_index, atom, join_key) in enumerate(job._tags):
            compiled = atom.compile()
            self.tags.setdefault(atom.relation, []).append(
                (
                    tag,
                    q_index,
                    compiled.arity,
                    compiled.matcher,
                    compiled.positions(join_key),
                    compiled.extractor(join_key),
                )
            )

    def map_batch(self, relation: str, chunks) -> MapBatch:
        job = self.job
        blocks = [as_column_block(chunk) for chunk in chunks]
        row_len = next((b.arity for b in blocks if b.length), None)
        guards = [g for g in self.guards.get(relation, ()) if g[1] == row_len]
        tags = [t for t in self.tags.get(relation, ()) if t[2] == row_len]
        probe: Dict[int, List[tuple]] = {g[0]: [] for g in guards}
        build: Dict[int, set] = {t[0]: set() for t in tags}
        packed = job.uses_combiner()
        acc = (
            PackedChunkAccumulator(job, TAG_BYTES)
            if packed
            else PlainPairAccumulator(job)
        )
        for block in blocks:
            if not block.length:
                continue
            for q_index, _, matcher, key_positions, key_of, request_size in guards:
                if matcher is None:
                    key_values = block.key_tuples(key_positions)
                    rows = block.rows()
                else:
                    rows = [r for r in block.rows() if matcher(r)]
                    if not rows:
                        continue
                    key_values = [key_of(r) for r in rows]
                probe[q_index].append((key_values, rows))
                counts = Counter([(q_index,) + kv for kv in key_values])
                if packed:
                    acc.add_request_counts(counts, request_size)
                else:
                    acc.add_key_counts(counts, request_size)
            for tag, q_index, _, matcher, key_positions, key_of in tags:
                if matcher is None:
                    key_values = block.key_tuples(key_positions)
                else:
                    key_values = [
                        key_of(r) for r in block.rows() if matcher(r)
                    ]
                if not key_values:
                    continue
                if packed:
                    distinct = set(key_values)
                    build[tag].update(distinct)
                    acc.add_assert_keys(
                        [(q_index,) + kv for kv in distinct], tag
                    )
                else:
                    build[tag].update(key_values)
                    acc.add_key_counts(
                        Counter([(q_index,) + kv for kv in key_values]),
                        TAG_BYTES,
                    )
            acc.flush()
        return MapBatch(
            relation=relation,
            intermediate_bytes=acc.intermediate_bytes,
            output_records=acc.records,
            key_bytes=acc.key_bytes,
            data=(probe, build),
        )

    def reduce_batch(self, batches) -> Dict[str, Iterable[Tuple[object, ...]]]:
        job = self.job
        asserted: Dict[int, set] = {}
        for batch in batches:
            for tag, keys in batch.data[1].items():
                existing = asserted.get(tag)
                if existing is None:
                    asserted[tag] = set(keys)
                else:
                    existing.update(keys)
        guard_segments: Dict[int, List[tuple]] = {}
        for batch in batches:
            for q_index, segments in batch.data[0].items():
                guard_segments.setdefault(q_index, []).extend(segments)
        outputs: Dict[str, set] = {q.output: set() for q in job.queries}
        for q_index, query in enumerate(job.queries):
            segments = guard_segments.get(q_index)
            if not segments:
                continue
            atom_tags = job._atom_tags[q_index]
            tag_list = list(atom_tags.items())  # (atom, tag) in atom order
            bit_of = {atom: i for i, (atom, _) in enumerate(tag_list)}
            sets = [asserted.get(tag, frozenset()) for _, tag in tag_list]
            condition = query.condition
            project = query.guard.compile().extractor(query.projection)
            projects = bool(query.projection)
            sink = outputs[query.output]

            def holds(mask: int) -> bool:
                return condition.evaluate(
                    lambda atom: mask >> bit_of[atom] & 1 == 1
                )

            # Mask per distinct join-key value (guard rows sharing a key share
            # their conditional memberships), assembled via set intersections.
            all_keys: set = set()
            for key_values, _ in segments:
                all_keys.update(key_values)
            masks: Counter = Counter()
            for i, keys in enumerate(sets):
                hit = all_keys & keys
                if hit:
                    masks.update(dict.fromkeys(hit, 1 << i))
            true_masks = {m for m in set(masks.values()) if holds(m)}
            if holds(0):
                true_masks.add(0)
            if not true_masks:
                continue
            get_mask = masks.get
            for key_values, rows in segments:
                selected = [
                    row
                    for kv, row in zip(key_values, rows)
                    if get_mask(kv, 0) in true_masks
                ]
                if selected:
                    sink.update(
                        map(project, selected)
                        if projects
                        else [(row[0],) for row in selected]
                    )
        return outputs
