"""Jobs used by sequential (SEQ) query plans.

The paper's SEQ strategy evaluates a BSGF query as a chain of classic
semi-join / anti-join reducer steps: each step filters the current guard
relation against one conditional atom in a dedicated MapReduce job, and the
output of one step is the (smaller) input of the next.  Conditions that are
not pure conjunctions are first rewritten into disjunctive normal form; each
disjunct becomes its own chain and a final union job combines (and projects)
the branch results — this is how the paper evaluates the uniqueness query B2
sequentially, with the four conjunctive subexpressions running in parallel.

Two job classes live here:

* :class:`SemiJoinChainJob` — one filtering step ``out := guard ⋉ κ`` (or the
  anti-join ``guard ▷ κ`` for a negative literal), keeping the full guard row
  so later steps can still join on any guard variable, and optionally applying
  the final projection;
* :class:`UnionProjectJob` — deduplicating union of several branch outputs
  with projection onto the query's SELECT list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..mapreduce.job import (
    Key,
    MapReduceJob,
    OutputFact,
    REDUCERS_BY_INPUT,
    REDUCERS_BY_INTERMEDIATE,
)
from collections import Counter

from ..mapreduce.kernels import (
    MapBatch,
    PackedChunkAccumulator,
    PlainPairAccumulator,
    as_column_block,
)
from ..model.atoms import Atom
from ..model.terms import Variable
from ..query.conditions import And, AtomCondition, Condition, Not, Or, TrueCondition
from .messages import (
    AssertMessage,
    FIELD_BYTES,
    RequestMessage,
    TAG_BYTES,
    TUPLE_REFERENCE_BYTES,
    pack_messages,
    unpack_messages,
)
from .options import GumboOptions


@dataclass(frozen=True)
class Literal:
    """A positive or negated conditional atom of a DNF disjunct."""

    atom: Atom
    positive: bool = True

    def __str__(self) -> str:
        return str(self.atom) if self.positive else f"NOT {self.atom}"


def to_dnf(condition: Condition) -> List[List[Literal]]:
    """Rewrite a condition into disjunctive normal form (list of literal lists).

    Negation is pushed down to the atoms and conjunction distributed over
    disjunction.  The empty condition yields a single empty disjunct (always
    true).  The rewriting is exponential in the worst case, which is
    acceptable for query-plan construction on the paper's query shapes.
    """
    return _dnf(condition, negated=False)


def _dnf(condition: Condition, negated: bool) -> List[List[Literal]]:
    if isinstance(condition, TrueCondition):
        return [] if negated else [[]]
    if isinstance(condition, AtomCondition):
        return [[Literal(condition.atom, positive=not negated)]]
    if isinstance(condition, Not):
        return _dnf(condition.operand, not negated)
    if isinstance(condition, And):
        if negated:
            return _dnf(Or(Not(condition.left), Not(condition.right)), False)
        left = _dnf(condition.left, False)
        right = _dnf(condition.right, False)
        return [lhs + rhs for lhs in left for rhs in right]
    if isinstance(condition, Or):
        if negated:
            return _dnf(And(Not(condition.left), Not(condition.right)), False)
        return _dnf(condition.left, False) + _dnf(condition.right, False)
    raise TypeError(f"unknown condition node {type(condition).__name__}")


class SemiJoinChainJob(MapReduceJob):
    """One step of a sequential plan: filter the current guard relation.

    Parameters
    ----------
    input_name:
        Relation holding the current (partially filtered) guard tuples.  Its
        rows must conform to *guard_atom* (they are full guard rows).
    guard_atom:
        The original guard atom, used to bind variables of the rows.
    literal:
        The conditional literal to filter by (anti-join when negative).
    output_name:
        Name of the produced relation.
    projection:
        When given, the output rows are projected onto these variables
        (used by the final step of a single-disjunct chain); otherwise the
        full guard rows are kept.
    """

    def __init__(
        self,
        job_id: str,
        input_name: str,
        guard_atom: Atom,
        literal: Literal,
        output_name: str,
        projection: Optional[Tuple[Variable, ...]] = None,
        options: Optional[GumboOptions] = None,
    ) -> None:
        super().__init__(job_id)
        self.input_name = input_name
        self.guard_atom = guard_atom
        self.literal = literal
        self.output_name = output_name
        self.projection = tuple(projection) if projection is not None else None
        self.options = options or GumboOptions()
        self.reducer_allocation = (
            REDUCERS_BY_INTERMEDIATE
            if self.options.reducers_by_intermediate
            else REDUCERS_BY_INPUT
        )
        shared = guard_atom.shared_variables(literal.atom)
        self.join_key: Tuple[Variable, ...] = tuple(
            v for v in guard_atom.variables if v in shared
        )

    def input_relations(self) -> Sequence[str]:
        names = [self.input_name]
        if self.literal.atom.relation not in names:
            names.append(self.literal.atom.relation)
        return names

    def output_schema(self) -> Dict[str, int]:
        arity = (
            max(1, len(self.projection))
            if self.projection is not None
            else self.guard_atom.arity
        )
        return {self.output_name: arity}

    def map(self, relation: str, row: Tuple[object, ...]) -> Iterable[
        Tuple[Key, object]
    ]:
        pairs: List[Tuple[Key, object]] = []
        if relation == self.input_name:
            binding = self.guard_atom.match(row)
            if binding is not None:
                key = tuple(binding[v] for v in self.join_key)
                pairs.append(
                    (key, RequestMessage(0, tuple(row), self.options.tuple_reference))
                )
        # Note: when the conditional relation coincides with the input relation
        # (self-joins), the same row is also probed as a conditional fact.
        if relation == self.literal.atom.relation:
            binding = self.literal.atom.match(row)
            if binding is not None:
                key = tuple(binding[v] for v in self.join_key)
                pairs.append((key, AssertMessage(0)))
        return pairs

    def uses_combiner(self) -> bool:
        return self.options.message_packing

    def combine(self, key: Key, values: List[object]) -> List[object]:
        return pack_messages(values)

    def reduce(self, key: Key, values: List[object]) -> Iterable[OutputFact]:
        messages = list(unpack_messages(values))
        asserted = any(isinstance(m, AssertMessage) for m in messages)
        keep = asserted if self.literal.positive else not asserted
        if not keep:
            return
        for message in messages:
            if not isinstance(message, RequestMessage):
                continue
            row = message.payload
            if self.projection is None:
                yield (self.output_name, row)
            else:
                binding = self.guard_atom.match(row)
                if binding is None:  # pragma: no cover - defensive
                    continue
                projected = tuple(binding[v] for v in self.projection)
                yield (self.output_name, projected if projected else (row[0],))

    # -- batch kernel ----------------------------------------------------------------

    def supports_kernel(self) -> bool:
        return True

    def supports_sql(self) -> bool:
        return True

    def to_sql(self):
        plan = self.__dict__.get("_sql_cache")
        if plan is None:
            from ..exec.sql.compiler import ChainPlan

            plan = self.__dict__["_sql_cache"] = ChainPlan(self)
        return plan

    def map_batch(self, relation: str, chunks) -> MapBatch:
        """Kernelised map: collect request rows / assert keys with exact pair
        accounting (the chain job packs messages like the MSJ job does).
        Unrestricted atoms read their join keys as column slices."""
        blocks = [as_column_block(chunk) for chunk in chunks]
        row_len = next((b.arity for b in blocks if b.length), None)
        guard = None
        if relation == self.input_name:
            compiled = self.guard_atom.compile()
            if compiled.arity == row_len:
                guard = (
                    compiled.matcher,
                    compiled.positions(self.join_key),
                    compiled.extractor(self.join_key),
                    TAG_BYTES
                    + (
                        TUPLE_REFERENCE_BYTES
                        if self.options.tuple_reference
                        else max(1, self.guard_atom.arity) * FIELD_BYTES
                    ),
                )
        literal = None
        if relation == self.literal.atom.relation:
            compiled = self.literal.atom.compile()
            if compiled.arity == row_len:
                literal = (
                    compiled.matcher,
                    compiled.positions(self.join_key),
                    compiled.extractor(self.join_key),
                )
        requests: List[tuple] = []
        asserted: set = set()
        packed = self.uses_combiner()
        acc = (
            PackedChunkAccumulator(self, TAG_BYTES)
            if packed
            else PlainPairAccumulator(self)
        )
        for block in blocks:
            if not block.length:
                continue
            if guard is not None:
                matcher, key_positions, key_of, request_size = guard
                if matcher is None:
                    keys = block.key_tuples(key_positions)
                    rows = block.rows()
                else:
                    rows = [r for r in block.rows() if matcher(r)]
                    keys = [key_of(r) for r in rows]
                if keys:
                    requests.append((keys, rows))
                    counts = Counter(keys)
                    if packed:
                        acc.add_request_counts(counts, request_size)
                    else:
                        acc.add_key_counts(counts, request_size)
            if literal is not None:
                matcher, key_positions, key_of = literal
                if matcher is None:
                    keys = block.key_tuples(key_positions)
                else:
                    keys = [key_of(r) for r in block.rows() if matcher(r)]
                if keys:
                    if packed:
                        distinct = set(keys)
                        asserted.update(distinct)
                        acc.add_assert_keys(distinct, 0)
                    else:
                        counts = Counter(keys)
                        asserted.update(counts)
                        acc.add_key_counts(counts, TAG_BYTES)
            acc.flush()
        return MapBatch(
            relation=relation,
            intermediate_bytes=acc.intermediate_bytes,
            output_records=acc.records,
            key_bytes=acc.key_bytes,
            data=(requests, asserted),
        )

    def reduce_batch(self, batches) -> Dict[str, Iterable[Tuple[object, ...]]]:
        """Kernelised reduce: one hash semi-join (anti-join when negative)."""
        asserted: set = set()
        for batch in batches:
            asserted.update(batch.data[1])
        positive = self.literal.positive
        rows: set = set()
        if self.projection is not None:
            project = self.guard_atom.compile().extractor(self.projection)
            projects = bool(self.projection)
        else:
            project = None
            projects = False
        for batch in batches:
            for keys, request_rows in batch.data[0]:
                if positive:
                    kept = [
                        row
                        for key, row in zip(keys, request_rows)
                        if key in asserted
                    ]
                else:
                    kept = [
                        row
                        for key, row in zip(keys, request_rows)
                        if key not in asserted
                    ]
                if not kept:
                    continue
                if project is None:
                    rows.update(kept)
                elif projects:
                    rows.update(map(project, kept))
                else:
                    rows.update([(row[0],) for row in kept])
        return {self.output_name: rows}

    def __repr__(self) -> str:
        return (
            f"SemiJoinChainJob({self.job_id!r}: {self.input_name} "
            f"{'⋉' if self.literal.positive else '▷'} {self.literal.atom} "
            f"-> {self.output_name})"
        )


class UnionProjectJob(MapReduceJob):
    """Deduplicating union of branch outputs, with projection onto the SELECT list.

    The input relations hold full guard rows (one per surviving guard fact per
    branch); the output contains each projected tuple once.
    """

    def __init__(
        self,
        job_id: str,
        input_names: Sequence[str],
        guard_atom: Atom,
        projection: Tuple[Variable, ...],
        output_name: str,
        options: Optional[GumboOptions] = None,
    ) -> None:
        super().__init__(job_id)
        if not input_names:
            raise ValueError("union needs at least one input relation")
        self.input_names = list(input_names)
        self.guard_atom = guard_atom
        self.projection = tuple(projection)
        self.output_name = output_name
        self.options = options or GumboOptions()
        self.reducer_allocation = (
            REDUCERS_BY_INTERMEDIATE
            if self.options.reducers_by_intermediate
            else REDUCERS_BY_INPUT
        )

    def input_relations(self) -> Sequence[str]:
        return list(self.input_names)

    def output_schema(self) -> Dict[str, int]:
        return {self.output_name: max(1, len(self.projection))}

    def map(self, relation: str, row: Tuple[object, ...]) -> Iterable[
        Tuple[Key, object]
    ]:
        binding = self.guard_atom.match(row)
        if binding is None:
            return []
        projected = tuple(binding[v] for v in self.projection)
        key = projected if projected else (row[0],)
        return [(key, 1)]

    def reduce(self, key: Key, values: List[object]) -> Iterable[OutputFact]:
        yield (self.output_name, tuple(key))

    def value_bytes(self, value: object) -> int:
        return 1

    # -- batch kernel ----------------------------------------------------------------

    def supports_kernel(self) -> bool:
        return True

    def supports_sql(self) -> bool:
        return True

    def to_sql(self):
        plan = self.__dict__.get("_sql_cache")
        if plan is None:
            from ..exec.sql.compiler import UnionPlan

            plan = self.__dict__["_sql_cache"] = UnionPlan(self)
        return plan

    def map_batch(self, relation: str, chunks) -> MapBatch:
        """Kernelised map: project every conforming row (1-byte values, no
        combiner, so pair accounting is a straight per-row accumulation)."""
        compiled = self.guard_atom.compile()
        blocks = [as_column_block(chunk) for chunk in chunks]
        row_len = next((b.arity for b in blocks if b.length), None)
        keys: set = set()
        acc = PlainPairAccumulator(self)
        if compiled.arity == row_len:
            matcher = compiled.matcher
            positions = (
                compiled.positions(self.projection) if self.projection else (0,)
            )
            project = compiled.extractor(self.projection)
            projects = bool(self.projection)
            for block in blocks:
                if not block.length:
                    continue
                if matcher is None:
                    block_keys = block.key_tuples(positions)
                else:
                    rows = [r for r in block.rows() if matcher(r)]
                    block_keys = [
                        project(r) if projects else (r[0],) for r in rows
                    ]
                if not block_keys:
                    continue
                keys.update(block_keys)
                acc.add_key_counts(Counter(block_keys), 1)
        return MapBatch(
            relation=relation,
            intermediate_bytes=acc.intermediate_bytes,
            output_records=acc.records,
            key_bytes=acc.key_bytes,
            data=keys,
        )

    def reduce_batch(self, batches) -> Dict[str, Iterable[Tuple[object, ...]]]:
        """Kernelised reduce: the deduplicating union is a set union."""
        rows: set = set()
        for batch in batches:
            rows.update(batch.data)
        return {self.output_name: rows}

    def __repr__(self) -> str:
        return f"UnionProjectJob({self.job_id!r}: {self.input_names} -> {self.output_name})"
