"""Dynamic (re-planning) evaluation of SGF queries.

Section 4.6 of the paper notes that "a naive dynamic evaluation strategy may
consist of re-running Greedy-SGF after each BSGF evaluation in order to obtain
an updated MR query plan".  The static strategies plan once, using upper-bound
estimates for the sizes of intermediate relations; the dynamic executor
implemented here instead

1. runs ``Greedy-SGF`` over the not-yet-evaluated subqueries,
2. executes only the *first* group of the resulting multiway topological sort
   (with ``Greedy-BSGF`` grouping, i.e. ``GOPT``),
3. adds the materialised outputs to the working database, refreshes the
   statistics catalog (so later planning decisions see the intermediates'
   *actual* sizes instead of upper bounds), and repeats until every subquery
   has been evaluated.

The price is one planning pass per stage; the benefit is that grouping and
ordering decisions for the upper levels of the query are based on measured
rather than estimated sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..cost.estimates import StatisticsCatalog
from ..cost.models import CostModel, make_cost_model
from ..exec.base import ExecutionBackend, make_backend
from ..mapreduce.counters import ProgramMetrics
from ..mapreduce.engine import MapReduceEngine
from ..model.database import Database
from ..model.relation import Relation
from ..query.bsgf import BSGFQuery
from ..query.dependency import DependencyGraph
from ..query.sgf import SGFQuery
from .costing import PlanCostEstimator
from .greedy_bsgf import greedy_partition
from .greedy_sgf import greedy_multiway_sort
from .options import GumboOptions
from .plan import build_two_round_program
from .strategies import all_semijoin_specs, register_intermediate_estimates


@dataclass
class DynamicStage:
    """One stage of the dynamic evaluation: the group evaluated and its metrics."""

    index: int
    subqueries: List[str]
    msj_groups: int
    metrics: ProgramMetrics


@dataclass
class DynamicResult:
    """Outcome of a dynamic SGF evaluation."""

    query: SGFQuery
    outputs: Dict[str, Relation]
    stages: List[DynamicStage] = field(default_factory=list)

    @property
    def metrics(self) -> ProgramMetrics:
        """Aggregated metrics over all stages (net time adds up across stages)."""
        combined = ProgramMetrics()
        for stage in self.stages:
            combined = combined.merge(stage.metrics)
        return combined

    def output(self, name: Optional[str] = None) -> Relation:
        return self.outputs[name or self.query.output]


class DynamicSGFExecutor:
    """Evaluates an SGF query stage by stage, re-planning after every stage."""

    def __init__(
        self,
        engine: Optional[MapReduceEngine] = None,
        cost_model: Union[str, CostModel] = "gumbo",
        options: Optional[GumboOptions] = None,
        sample_size: int = 1000,
        backend: Union[str, ExecutionBackend, None] = None,
        workers: Optional[int] = None,
    ) -> None:
        self.options = options or GumboOptions()
        if isinstance(backend, ExecutionBackend):
            # Validates that engine=/workers= do not conflict with the instance.
            self.backend = make_backend(backend, engine=engine, workers=workers)
            self.engine = backend.engine
        else:
            self.engine = engine or MapReduceEngine()
            self.backend = make_backend(
                backend if backend is not None else self.options.backend,
                engine=self.engine,
                workers=workers if workers is not None else self.options.workers,
                sql_db=self.options.sql_db,
            )
        if isinstance(cost_model, CostModel):
            self.cost_model = cost_model
        else:
            self.cost_model = make_cost_model(cost_model, self.engine.constants)
        self.sample_size = sample_size

    def close(self) -> None:
        """Release the backend's resources (the parallel worker pool)."""
        self.backend.close()

    def __enter__(self) -> "DynamicSGFExecutor":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False

    # -- planning helpers ---------------------------------------------------------

    def _estimator(self, database: Database, remaining: SGFQuery) -> PlanCostEstimator:
        catalog = StatisticsCatalog(database, sample_size=self.sample_size)
        estimator = PlanCostEstimator(
            catalog,
            self.cost_model,
            self.options,
            split_mb=self.engine.cluster.split_mb,
            mb_per_reducer=self.engine.mb_per_reducer_intermediate,
            mb_per_reducer_input=self.engine.mb_per_reducer_input,
        )
        # Outputs of *remaining* subqueries still need upper-bound estimates;
        # already-evaluated outputs are in the database with their true sizes.
        register_intermediate_estimates(remaining, catalog)
        return estimator

    # -- execution ------------------------------------------------------------------

    def execute(self, query: SGFQuery, database: Database) -> DynamicResult:
        """Evaluate *query*, re-planning after every evaluated group."""
        working = database.copy()
        outputs: Dict[str, Relation] = {}
        stages: List[DynamicStage] = []
        remaining: List[BSGFQuery] = list(query.subqueries)

        stage_index = 0
        while remaining:
            remaining_query = SGFQuery(
                tuple(remaining), name=f"{query.name}@{stage_index}"
            )
            estimator = self._estimator(working, remaining_query)
            graph = DependencyGraph(remaining_query)
            groups = greedy_multiway_sort(graph)
            first_group = groups[0]
            stage_queries = [graph.subquery(name) for name in first_group]

            specs = all_semijoin_specs(stage_queries)
            msj_groups = greedy_partition(specs, estimator)
            program = build_two_round_program(
                stage_queries,
                msj_groups,
                self.options,
                name=f"dynamic-stage-{stage_index}",
                job_prefix=f"d{stage_index}-",
            )
            result = self.backend.run_program(program, working)
            for name, relation in result.outputs.items():
                if name in {q.output for q in stage_queries}:
                    outputs[name] = relation
                working.add_relation(relation)

            stages.append(
                DynamicStage(
                    index=stage_index,
                    subqueries=[q.output for q in stage_queries],
                    msj_groups=len([g for g in msj_groups if g]),
                    metrics=result.metrics,
                )
            )
            evaluated = {q.output for q in stage_queries}
            remaining = [q for q in remaining if q.output not in evaluated]
            stage_index += 1

        return DynamicResult(query=query, outputs=outputs, stages=stages)
