"""The EVAL MapReduce job (Section 4.3): Boolean combination of semi-join results.

After the MSJ jobs have computed, for every semi-join ``X_i``, which guard
facts satisfy it, the EVAL job combines those outcomes according to the
query's Boolean condition.  Conceptually it evaluates ``X_0 ∧ φ`` where
``X_0`` is the guard relation and ``φ`` the Boolean formula over the ``X_i``:
the mapper tags every fact with the relation it came from, the reducer
receives — per guard fact — the set of ``X_i`` containing it, and outputs the
(projected) fact when the formula evaluates to true.

Several Boolean formulas (one per BSGF query of a query set) are evaluated in
one EVAL job, as in ``EVAL(R_1, φ_1, ..., R_n, φ_n)`` of Section 4.5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..mapreduce.job import (
    Key,
    MapReduceJob,
    OutputFact,
    REDUCERS_BY_INPUT,
    REDUCERS_BY_INTERMEDIATE,
)
from collections import Counter

from ..mapreduce.kernels import MapBatch, PlainPairAccumulator, as_column_block
from ..model.atoms import Atom
from ..query.bsgf import BSGFQuery
from .messages import (
    FIELD_BYTES,
    GuardMessage,
    MembershipMessage,
    TAG_BYTES,
    TUPLE_REFERENCE_BYTES,
)
from .options import GumboOptions


@dataclass(frozen=True)
class EvalTarget:
    """One Boolean combination to evaluate: a BSGF query plus the names of the
    intermediate relations holding its semi-join results.

    ``intermediates[i]`` is the relation produced by the MSJ job for the
    query's ``i``-th conditional atom (the order of
    :attr:`~repro.query.bsgf.BSGFQuery.conditional_atoms`).
    """

    query: BSGFQuery
    intermediates: Tuple[str, ...]

    def __post_init__(self) -> None:
        expected = len(self.query.conditional_atoms)
        if len(self.intermediates) != expected:
            raise ValueError(
                f"query {self.query.output!r} has {expected} conditional atoms "
                f"but {len(self.intermediates)} intermediate names were given"
            )

    @property
    def output(self) -> str:
        return self.query.output

    @property
    def guard(self) -> Atom:
        return self.query.guard


class EvalJob(MapReduceJob):
    """The EVAL job combining semi-join memberships per guard fact."""

    def __init__(
        self,
        job_id: str,
        targets: Sequence[EvalTarget],
        options: Optional[GumboOptions] = None,
    ) -> None:
        super().__init__(job_id)
        targets = list(targets)
        if not targets:
            raise ValueError("EVAL needs at least one target")
        outputs = [t.output for t in targets]
        if len(set(outputs)) != len(outputs):
            raise ValueError("EVAL target outputs must be pairwise distinct")
        self.targets: List[EvalTarget] = targets
        self.options = options or GumboOptions()
        self.reducer_allocation = (
            REDUCERS_BY_INTERMEDIATE
            if self.options.reducers_by_intermediate
            else REDUCERS_BY_INPUT
        )
        # Map intermediate relation name -> (target index, conditional index).
        self._membership: Dict[str, Tuple[int, int]] = {}
        for t_index, target in enumerate(targets):
            for c_index, name in enumerate(target.intermediates):
                if name in self._membership:
                    raise ValueError(
                        f"intermediate relation {name!r} is used by two targets"
                    )
                self._membership[name] = (t_index, c_index)

    # -- schema --------------------------------------------------------------

    def input_relations(self) -> Sequence[str]:
        seen: List[str] = []
        for target in self.targets:
            if target.guard.relation not in seen:
                seen.append(target.guard.relation)
        for name in self._membership:
            if name not in seen:
                seen.append(name)
        return seen

    def output_schema(self) -> Dict[str, int]:
        return {
            target.output: max(1, len(target.query.projection))
            for target in self.targets
        }

    # -- map / reduce -----------------------------------------------------------

    def map(self, relation: str, row: Tuple[object, ...]) -> Iterable[
        Tuple[Key, object]
    ]:
        pairs: List[Tuple[Key, object]] = []
        membership = self._membership.get(relation)
        if membership is not None:
            t_index, c_index = membership
            pairs.append(((t_index,) + tuple(row), MembershipMessage(t_index, c_index)))
            return pairs
        for t_index, target in enumerate(self.targets):
            if target.guard.relation != relation:
                continue
            if target.guard.conforms(row):
                pairs.append(((t_index,) + tuple(row), GuardMessage(t_index)))
        return pairs

    def reduce(self, key: Key, values: List[object]) -> Iterable[OutputFact]:
        t_index = key[0]
        row = tuple(key[1:])
        target = self.targets[t_index]
        present = {
            v.index for v in values if isinstance(v, MembershipMessage)
        }
        has_guard = any(isinstance(v, GuardMessage) for v in values)
        if not has_guard:
            return
        atoms = target.query.conditional_atoms
        index_of = {atom: i for i, atom in enumerate(atoms)}
        holds = target.query.condition.evaluate(lambda atom: index_of[atom] in present)
        if not holds:
            return
        binding = target.guard.match(row)
        if binding is None:  # pragma: no cover - defensive
            return
        projected = tuple(binding[v] for v in target.query.projection)
        yield (target.output, projected if projected else (row[0],))

    # -- byte accounting ------------------------------------------------------------

    def key_bytes(self, key: Key) -> int:
        """Keys are (target index, guard tuple); guard tuples may be shipped by id."""
        fields = max(0, len(key) - 1)
        if self.options.tuple_reference:
            return TAG_BYTES + TUPLE_REFERENCE_BYTES
        return TAG_BYTES + fields * FIELD_BYTES

    # -- batch kernel ----------------------------------------------------------------

    def supports_kernel(self) -> bool:
        return True

    def supports_sql(self) -> bool:
        return True

    def to_sql(self):
        plan = self.__dict__.get("_sql_cache")
        if plan is None:
            from ..exec.sql.compiler import EvalPlan

            plan = self.__dict__["_sql_cache"] = EvalPlan(self)
        return plan

    def map_batch(self, relation: str, chunks) -> MapBatch:
        """Kernelised map: count the pairs, collect rows for the set-probe.

        Intermediate relations contribute one membership message per row;
        guard relations one guard message per (target, conforming row).  Both
        message kinds serialise to ``TAG_BYTES``; keys are ``(target,) +
        row``, so the pair accounting is a straight per-row accumulation (the
        EVAL job uses no combiner).
        """
        acc = PlainPairAccumulator(self)
        blocks = [as_column_block(chunk) for chunk in chunks]
        membership = self._membership.get(relation)
        if membership is not None:
            t_index = membership[0]
            rows: set = set()
            keys: List[tuple] = []
            for block in blocks:
                if not block.length:
                    continue
                block_rows = block.rows()
                keys.extend([(t_index,) + row for row in block_rows])
                rows.update(block_rows)
            # Key size depends only on the key length, identical for the
            # whole relation; rows are set-deduplicated, so the keys are
            # distinct and one uniform charge per key is exact.
            if keys:
                acc.add_uniform_pairs(keys, self.key_bytes(keys[0]) + TAG_BYTES)
            return MapBatch(
                relation=relation,
                intermediate_bytes=acc.intermediate_bytes,
                output_records=acc.records,
                key_bytes=acc.key_bytes,
                data=("member", membership, rows),
            )
        guards = []
        row_len = next((b.arity for b in blocks if b.length), None)
        for t_index, target in enumerate(self.targets):
            if target.guard.relation != relation:
                continue
            compiled = target.guard.compile()
            if compiled.arity == row_len:
                guards.append((t_index, compiled.matcher))
        conforming: Dict[int, List[Tuple[object, ...]]] = {t: [] for t, _ in guards}
        for block in blocks:
            if not block.length:
                continue
            block_rows = block.rows()
            for t_index, matcher in guards:
                rows_for_target = (
                    block_rows
                    if matcher is None
                    else [r for r in block_rows if matcher(r)]
                )
                if rows_for_target:
                    conforming[t_index].extend(rows_for_target)
        for t_index, _ in guards:
            rows_for_target = conforming[t_index]
            if not rows_for_target:
                continue
            keys = [(t_index,) + row for row in rows_for_target]
            acc.add_uniform_pairs(keys, self.key_bytes(keys[0]) + TAG_BYTES)
        return MapBatch(
            relation=relation,
            intermediate_bytes=acc.intermediate_bytes,
            output_records=acc.records,
            key_bytes=acc.key_bytes,
            data=("guard", conforming),
        )

    def reduce_batch(self, batches) -> Dict[str, Iterable[Tuple[object, ...]]]:
        """Kernelised reduce: per guard row a membership bitmask, memoised
        Boolean evaluation per distinct mask, projection via compiled
        extractors."""
        members: Dict[Tuple[int, int], set] = {}
        guard_rows: Dict[int, List[Tuple[object, ...]]] = {}
        for batch in batches:
            kind = batch.data[0]
            if kind == "member":
                members[batch.data[1]] = batch.data[2]
            else:
                for t_index, rows in batch.data[1].items():
                    guard_rows.setdefault(t_index, []).extend(rows)
        outputs: Dict[str, set] = {t.output: set() for t in self.targets}
        for t_index, target in enumerate(self.targets):
            rows = guard_rows.get(t_index)
            if not rows:
                continue
            atoms = target.query.conditional_atoms
            index_of = {atom: i for i, atom in enumerate(atoms)}
            sets = [members.get((t_index, i), frozenset()) for i in range(len(atoms))]
            condition = target.query.condition
            project = target.guard.compile().extractor(target.query.projection)
            projects = bool(target.query.projection)
            sink = outputs[target.output]

            def holds(mask: int) -> bool:
                return condition.evaluate(
                    lambda atom: mask >> index_of[atom] & 1 == 1
                )

            # Membership bitmask per guard row, assembled set-at-a-time: each
            # conditional's intersection with the guard rows contributes its
            # bit through one Counter merge (bits are powers of two, so the
            # Counter's sums equal the bitwise OR).
            row_set = set(rows)
            masks: Counter = Counter()
            for i, present in enumerate(sets):
                hit = row_set & present
                if hit:
                    masks.update(dict.fromkeys(hit, 1 << i))
            true_masks = {m for m in set(masks.values()) if holds(m)}
            if true_masks:
                selected = [row for row, mask in masks.items() if mask in true_masks]
                sink.update(
                    map(project, selected)
                    if projects
                    else [(row[0],) for row in selected]
                )
            if len(masks) < len(row_set) and holds(0):
                zero_rows = row_set.difference(masks.keys())
                sink.update(
                    map(project, zero_rows)
                    if projects
                    else [(row[0],) for row in zero_rows]
                )
        return outputs

    def __repr__(self) -> str:
        inner = ", ".join(t.output for t in self.targets)
        return f"EvalJob({self.job_id!r}: {inner})"
