"""Ordering the subqueries of an SGF query: ``Greedy-SGF``.

Section 4.6: an SGF query is evaluated group by group along a *multiway
topological sort* of its dependency graph, each group being evaluated with
the (greedy) basic MR program of Section 4.5.  Choosing the sort with minimal
total cost (``SGF-Opt``) is NP-hard (Theorem 2); the paper proposes a greedy
heuristic that repeatedly places a ready subquery into the existing group with
which it shares the most relations (the *overlap*), creating a new group only
when no overlap exists.

This module implements the greedy heuristic (:func:`greedy_multiway_sort`),
the brute-force exact solver used on small instances
(:func:`optimal_multiway_sort`), and the helper computing the cost of a given
sort (Equation (10)).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from ..query.bsgf import BSGFQuery
from ..query.dependency import DependencyGraph
from ..query.sgf import SGFQuery

#: A multiway topological sort represented as ordered groups of subquery names.
Groups = List[List[str]]

#: Cost of evaluating one group of BSGF queries (typically cost(GOPT(F_i))).
GroupCostFn = Callable[[Sequence[BSGFQuery]], float]


def greedy_multiway_sort(graph: DependencyGraph) -> Groups:
    """The ``Greedy-SGF`` heuristic.

    Maintains the invariant that the current sequence ``X`` is a multiway
    topological sort of the already-placed ("red") vertices.  At every step the
    ready vertices (all parents placed) are candidates; the candidate/group
    pair with the largest positive overlap is chosen (ties broken towards the
    earliest group and the earliest vertex in definition order); when no
    placement with positive overlap is valid, a new group is appended.
    """
    order_index = {name: i for i, name in enumerate(graph.nodes)}
    placed: set = set()
    group_of: dict = {}
    groups: Groups = []

    while len(placed) < len(graph.nodes):
        ready = [
            name
            for name in graph.nodes
            if name not in placed and graph.parents[name] <= placed
        ]
        best: Optional[Tuple[int, int, str]] = None  # (overlap, -group, name)
        for name in ready:
            # The vertex may join group i only if all its parents live in
            # strictly earlier groups.
            parent_groups = [group_of[p] for p in graph.parents[name]]
            min_group = (max(parent_groups) + 1) if parent_groups else 0
            for index in range(min_group, len(groups)):
                overlap = graph.overlap(name, groups[index])
                if overlap <= 0:
                    continue
                candidate = (overlap, index, name)
                if best is None or _better(candidate, best, order_index):
                    best = candidate
        if best is not None:
            _, index, name = best
            groups[index].append(name)
        else:
            name = min(ready, key=lambda n: order_index[n])
            groups.append([name])
            index = len(groups) - 1
        group_of[name] = index
        placed.add(name)
    return groups


def _better(
    candidate: Tuple[int, int, str],
    incumbent: Tuple[int, int, str],
    order_index: dict,
) -> bool:
    """Deterministic comparison: larger overlap, then earlier group, then earlier vertex."""
    c_overlap, c_group, c_name = candidate
    i_overlap, i_group, i_name = incumbent
    if c_overlap != i_overlap:
        return c_overlap > i_overlap
    if c_group != i_group:
        return c_group < i_group
    return order_index[c_name] < order_index[i_name]


def sort_cost(
    graph: DependencyGraph,
    groups: Sequence[Sequence[str]],
    group_cost: GroupCostFn,
) -> float:
    """Equation (10): the total cost of evaluating the groups in sequence."""
    total = 0.0
    for group in groups:
        queries = [graph.subquery(name) for name in group]
        total += group_cost(queries)
    return total


def optimal_multiway_sort(
    graph: DependencyGraph,
    group_cost: GroupCostFn,
    max_nodes: int = 8,
) -> Tuple[Groups, float]:
    """Brute-force ``SGF-Opt``: enumerate every multiway topological sort.

    Only feasible for small dependency graphs; refuses larger ones via the
    *max_nodes* guard of the underlying enumeration.
    """
    best: Optional[Groups] = None
    best_cost = float("inf")
    for sort in graph.all_multiway_sorts(max_nodes=max_nodes):
        groups = [list(group) for group in sort]
        cost = sort_cost(graph, groups, group_cost)
        if cost < best_cost - 1e-12:
            best_cost = cost
            best = groups
    assert best is not None
    return best, best_cost


def sequnit_sort(graph: DependencyGraph) -> Groups:
    """The SEQUNIT ordering: one subquery per group, in a topological order."""
    return [[name] for name in graph.topological_order()]


def parunit_sort(graph: DependencyGraph) -> Groups:
    """The PARUNIT ordering: dependency levels evaluated bottom-up."""
    return [list(level) for level in graph.levels()]


def validate_sort(graph: DependencyGraph, groups: Sequence[Sequence[str]]) -> None:
    """Raise ``ValueError`` when *groups* is not a valid multiway topological sort."""
    if not graph.is_valid_multiway_sort(groups):
        raise ValueError(f"{groups!r} is not a multiway topological sort")


def sort_for_query(query: SGFQuery) -> Groups:
    """Convenience wrapper: the greedy sort of an SGF query's dependency graph."""
    return greedy_multiway_sort(DependencyGraph(query))
