"""The multi-semi-join operator ``⋉·(S)`` and its MapReduce job ``MSJ(S)``.

This is Algorithm 1 of the paper.  The operator takes a set of semi-join
equations ``S = {X_1 := π_x̄1(α_1 ⋉ κ_1), ..., X_n := π_x̄n(α_n ⋉ κ_n)}`` and
evaluates all of them in a single MapReduce job:

* the mapper emits, for every fact conforming to some guard ``α_i``, a request
  message keyed by the semi-join's join key, and, for every fact conforming to
  some conditional ``κ_i``, an assert message keyed by the conditional's join
  key;
* the reducer outputs a request's payload to ``X_i`` whenever an assert for
  the matching conditional arrived at the same key.

Two execution modes are supported:

* *standalone* mode (``emit_projection=True``, the literal Algorithm 1): the
  payload and the output tuples are the projections ``π_x̄i`` of the guard
  facts;
* *pipeline* mode (``emit_projection=False``), used inside BSGF query plans:
  the payload is the full guard row, which plays the role of the guard-tuple
  id so that the downstream EVAL job can combine semi-join outcomes
  *per guard fact* (this is what Gumbo's tuple-reference optimisation does,
  and it is required for correct Boolean combination when the projection is
  not injective on the guard).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..mapreduce.job import (
    Key,
    MapReduceJob,
    OutputFact,
    REDUCERS_BY_INPUT,
    REDUCERS_BY_INTERMEDIATE,
)
from ..model.atoms import Atom
from ..model.terms import Variable
from ..query.bsgf import SemiJoinSpec
from .messages import (
    AssertMessage,
    FIELD_BYTES,
    RequestMessage,
    TUPLE_REFERENCE_BYTES,
    pack_messages,
    unpack_messages,
)
from .options import GumboOptions

#: A conditional tag: (conditional atom, ordered join-key variables).  Assert
#: messages are emitted once per distinct tag a fact conforms to, so identical
#: conditionals shared by several semi-joins are asserted only once.
ConditionalTag = Tuple[Atom, Tuple[Variable, ...]]


class MSJJob(MapReduceJob):
    """The single-job MapReduce implementation of the multi-semi-join operator."""

    def __init__(
        self,
        job_id: str,
        specs: Sequence[SemiJoinSpec],
        options: Optional[GumboOptions] = None,
        emit_projection: bool = True,
    ) -> None:
        super().__init__(job_id)
        specs = list(specs)
        if not specs:
            raise ValueError("MSJ needs at least one semi-join equation")
        outputs = [spec.output for spec in specs]
        if len(set(outputs)) != len(outputs):
            raise ValueError("semi-join output names must be pairwise distinct")
        self.specs: List[SemiJoinSpec] = specs
        self.options = options or GumboOptions()
        self.emit_projection = emit_projection
        self.reducer_allocation = (
            REDUCERS_BY_INTERMEDIATE
            if self.options.reducers_by_intermediate
            else REDUCERS_BY_INPUT
        )

        # Distinct conditional tags and the tag index of every semi-join.
        self._tags: List[ConditionalTag] = []
        self._tag_index: Dict[ConditionalTag, int] = {}
        self._spec_tag: List[int] = []
        for spec in specs:
            tag: ConditionalTag = (spec.conditional, spec.join_key)
            if tag not in self._tag_index:
                self._tag_index[tag] = len(self._tags)
                self._tags.append(tag)
            self._spec_tag.append(self._tag_index[tag])

    # -- structural accessors ----------------------------------------------------

    @property
    def guard_relations(self) -> List[str]:
        seen: List[str] = []
        for spec in self.specs:
            if spec.guard.relation not in seen:
                seen.append(spec.guard.relation)
        return seen

    @property
    def conditional_relations(self) -> List[str]:
        seen: List[str] = []
        for spec in self.specs:
            if spec.conditional.relation not in seen:
                seen.append(spec.conditional.relation)
        return seen

    def input_relations(self) -> Sequence[str]:
        """Every relation is read exactly once, even when it occurs in several roles."""
        seen: List[str] = []
        for name in self.guard_relations + self.conditional_relations:
            if name not in seen:
                seen.append(name)
        return seen

    def output_schema(self) -> Dict[str, int]:
        schema: Dict[str, int] = {}
        for spec in self.specs:
            arity = (
                max(1, len(spec.projection))
                if self.emit_projection
                else spec.guard.arity
            )
            schema[spec.output] = arity
        return schema

    def output_tuple_bytes(self, relation: str) -> Optional[int]:
        """Intermediate relations are stored as tuple ids under optimisation (2)."""
        for spec in self.specs:
            if spec.output == relation:
                if not self.emit_projection and self.options.tuple_reference:
                    return TUPLE_REFERENCE_BYTES
                if not self.emit_projection:
                    return max(1, len(spec.projection)) * FIELD_BYTES
                return None
        return None

    # -- map / combine / reduce ------------------------------------------------------

    def map(self, relation: str, row: Tuple[object, ...]) -> Iterable[
        Tuple[Key, object]
    ]:
        pairs: List[Tuple[Key, object]] = []
        for index, spec in enumerate(self.specs):
            if spec.guard.relation != relation:
                continue
            binding = spec.guard.match(row)
            if binding is None:
                continue
            key = tuple(binding[v] for v in spec.join_key)
            if self.emit_projection:
                payload = tuple(binding[v] for v in spec.projection)
            else:
                payload = tuple(row)
            pairs.append(
                (
                    key,
                    RequestMessage(
                        index=index,
                        payload=payload,
                        by_reference=self.options.tuple_reference,
                    ),
                )
            )
        for tag_idx, (conditional, join_key) in enumerate(self._tags):
            if conditional.relation != relation:
                continue
            binding = conditional.match(row)
            if binding is None:
                continue
            key = tuple(binding[v] for v in join_key)
            pairs.append((key, AssertMessage(tag_idx)))
        return pairs

    def uses_combiner(self) -> bool:
        return self.options.message_packing

    def combine(self, key: Key, values: List[object]) -> List[object]:
        return pack_messages(values)

    def reduce(self, key: Key, values: List[object]) -> Iterable[OutputFact]:
        messages = list(unpack_messages(values))
        asserted = {m.tag for m in messages if isinstance(m, AssertMessage)}
        for message in messages:
            if not isinstance(message, RequestMessage):
                continue
            if self._spec_tag[message.index] in asserted:
                spec = self.specs[message.index]
                yield (spec.output, message.payload)

    def __repr__(self) -> str:
        inner = ", ".join(spec.output for spec in self.specs)
        return f"MSJJob({self.job_id!r}: {inner})"


def multi_semi_join(
    specs: Sequence[SemiJoinSpec],
    database,
    engine=None,
    options: Optional[GumboOptions] = None,
):
    """Evaluate the multi-semi-join operator ``⋉·(S)`` and return its relations.

    A convenience wrapper that builds a single :class:`MSJJob`, runs it on the
    given engine (a default :class:`~repro.mapreduce.engine.MapReduceEngine`
    when omitted) and returns ``{output name: Relation}``.
    """
    from ..mapreduce.engine import MapReduceEngine

    engine = engine or MapReduceEngine()
    job = MSJJob("msj", specs, options=options, emit_projection=True)
    result = engine.run_job(job, database)
    return result.outputs
