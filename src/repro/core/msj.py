"""The multi-semi-join operator ``⋉·(S)`` and its MapReduce job ``MSJ(S)``.

This is Algorithm 1 of the paper.  The operator takes a set of semi-join
equations ``S = {X_1 := π_x̄1(α_1 ⋉ κ_1), ..., X_n := π_x̄n(α_n ⋉ κ_n)}`` and
evaluates all of them in a single MapReduce job:

* the mapper emits, for every fact conforming to some guard ``α_i``, a request
  message keyed by the semi-join's join key, and, for every fact conforming to
  some conditional ``κ_i``, an assert message keyed by the conditional's join
  key;
* the reducer outputs a request's payload to ``X_i`` whenever an assert for
  the matching conditional arrived at the same key.

Two execution modes are supported:

* *standalone* mode (``emit_projection=True``, the literal Algorithm 1): the
  payload and the output tuples are the projections ``π_x̄i`` of the guard
  facts;
* *pipeline* mode (``emit_projection=False``), used inside BSGF query plans:
  the payload is the full guard row, which plays the role of the guard-tuple
  id so that the downstream EVAL job can combine semi-join outcomes
  *per guard fact* (this is what Gumbo's tuple-reference optimisation does,
  and it is required for correct Boolean combination when the projection is
  not injective on the guard).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..mapreduce.job import (
    Key,
    MapReduceJob,
    OutputFact,
    REDUCERS_BY_INPUT,
    REDUCERS_BY_INTERMEDIATE,
)
from collections import Counter

from ..mapreduce.kernels import (
    MapBatch,
    PackedChunkAccumulator,
    PlainPairAccumulator,
    as_column_block,
)
from ..model.atoms import Atom
from ..model.terms import Variable
from ..query.bsgf import SemiJoinSpec
from .messages import (
    AssertMessage,
    FIELD_BYTES,
    RequestMessage,
    TAG_BYTES,
    TUPLE_REFERENCE_BYTES,
    pack_messages,
    unpack_messages,
)
from .options import GumboOptions

#: A conditional tag: (conditional atom, ordered join-key variables).  Assert
#: messages are emitted once per distinct tag a fact conforms to, so identical
#: conditionals shared by several semi-joins are asserted only once.
ConditionalTag = Tuple[Atom, Tuple[Variable, ...]]


class MSJJob(MapReduceJob):
    """The single-job MapReduce implementation of the multi-semi-join operator."""

    def __init__(
        self,
        job_id: str,
        specs: Sequence[SemiJoinSpec],
        options: Optional[GumboOptions] = None,
        emit_projection: bool = True,
    ) -> None:
        super().__init__(job_id)
        specs = list(specs)
        if not specs:
            raise ValueError("MSJ needs at least one semi-join equation")
        outputs = [spec.output for spec in specs]
        if len(set(outputs)) != len(outputs):
            raise ValueError("semi-join output names must be pairwise distinct")
        self.specs: List[SemiJoinSpec] = specs
        self.options = options or GumboOptions()
        self.emit_projection = emit_projection
        self.reducer_allocation = (
            REDUCERS_BY_INTERMEDIATE
            if self.options.reducers_by_intermediate
            else REDUCERS_BY_INPUT
        )

        # Distinct conditional tags and the tag index of every semi-join.
        self._tags: List[ConditionalTag] = []
        self._tag_index: Dict[ConditionalTag, int] = {}
        self._spec_tag: List[int] = []
        for spec in specs:
            tag: ConditionalTag = (spec.conditional, spec.join_key)
            if tag not in self._tag_index:
                self._tag_index[tag] = len(self._tags)
                self._tags.append(tag)
            self._spec_tag.append(self._tag_index[tag])

    # -- structural accessors ----------------------------------------------------

    @property
    def guard_relations(self) -> List[str]:
        seen: List[str] = []
        for spec in self.specs:
            if spec.guard.relation not in seen:
                seen.append(spec.guard.relation)
        return seen

    @property
    def conditional_relations(self) -> List[str]:
        seen: List[str] = []
        for spec in self.specs:
            if spec.conditional.relation not in seen:
                seen.append(spec.conditional.relation)
        return seen

    def input_relations(self) -> Sequence[str]:
        """Every relation is read exactly once, even when it occurs in several roles."""
        seen: List[str] = []
        for name in self.guard_relations + self.conditional_relations:
            if name not in seen:
                seen.append(name)
        return seen

    def output_schema(self) -> Dict[str, int]:
        schema: Dict[str, int] = {}
        for spec in self.specs:
            arity = (
                max(1, len(spec.projection))
                if self.emit_projection
                else spec.guard.arity
            )
            schema[spec.output] = arity
        return schema

    def output_tuple_bytes(self, relation: str) -> Optional[int]:
        """Intermediate relations are stored as tuple ids under optimisation (2)."""
        for spec in self.specs:
            if spec.output == relation:
                if not self.emit_projection and self.options.tuple_reference:
                    return TUPLE_REFERENCE_BYTES
                if not self.emit_projection:
                    return max(1, len(spec.projection)) * FIELD_BYTES
                return None
        return None

    # -- map / combine / reduce ------------------------------------------------------

    def map(self, relation: str, row: Tuple[object, ...]) -> Iterable[
        Tuple[Key, object]
    ]:
        pairs: List[Tuple[Key, object]] = []
        for index, spec in enumerate(self.specs):
            if spec.guard.relation != relation:
                continue
            binding = spec.guard.match(row)
            if binding is None:
                continue
            key = tuple(binding[v] for v in spec.join_key)
            if self.emit_projection:
                payload = tuple(binding[v] for v in spec.projection)
            else:
                payload = tuple(row)
            pairs.append(
                (
                    key,
                    RequestMessage(
                        index=index,
                        payload=payload,
                        by_reference=self.options.tuple_reference,
                    ),
                )
            )
        for tag_idx, (conditional, join_key) in enumerate(self._tags):
            if conditional.relation != relation:
                continue
            binding = conditional.match(row)
            if binding is None:
                continue
            key = tuple(binding[v] for v in join_key)
            pairs.append((key, AssertMessage(tag_idx)))
        return pairs

    def uses_combiner(self) -> bool:
        return self.options.message_packing

    def combine(self, key: Key, values: List[object]) -> List[object]:
        return pack_messages(values)

    def reduce(self, key: Key, values: List[object]) -> Iterable[OutputFact]:
        messages = list(unpack_messages(values))
        asserted = {m.tag for m in messages if isinstance(m, AssertMessage)}
        for message in messages:
            if not isinstance(message, RequestMessage):
                continue
            if self._spec_tag[message.index] in asserted:
                spec = self.specs[message.index]
                yield (spec.output, message.payload)

    # -- batch kernel ----------------------------------------------------------------

    def supports_kernel(self) -> bool:
        return True

    def _kernel(self) -> "_MSJKernel":
        kernel = self.__dict__.get("_kernel_cache")
        if kernel is None:
            kernel = self.__dict__["_kernel_cache"] = _MSJKernel(self)
        return kernel

    # -- SQL compilation -------------------------------------------------------------

    def supports_sql(self) -> bool:
        return True

    def to_sql(self):
        plan = self.__dict__.get("_sql_cache")
        if plan is None:
            from ..exec.sql.compiler import MSJPlan

            plan = self.__dict__["_sql_cache"] = MSJPlan(self)
        return plan

    def map_batch(self, relation: str, chunks) -> MapBatch:
        return self._kernel().map_batch(relation, chunks)

    def reduce_batch(self, batches) -> Dict[str, Iterable[Tuple[object, ...]]]:
        return self._kernel().reduce_batch(batches)

    def __repr__(self) -> str:
        inner = ", ".join(spec.output for spec in self.specs)
        return f"MSJJob({self.job_id!r}: {inner})"


class _GuardSpec:
    """One guard occurrence, precompiled for columnar evaluation."""

    __slots__ = (
        "index",
        "arity",
        "matcher",
        "key_positions",
        "payload_positions",
        "key_of",
        "payload_of",
        "request_size",
    )

    def __init__(
        self,
        index,
        arity,
        matcher,
        key_positions,
        payload_positions,
        key_of,
        payload_of,
        request_size,
    ) -> None:
        self.index = index
        self.arity = arity
        self.matcher = matcher
        self.key_positions = key_positions
        #: None means "the payload is the full row" (pipeline mode).
        self.payload_positions = payload_positions
        self.key_of = key_of
        self.payload_of = payload_of
        self.request_size = request_size


class _TagSpec:
    """One conditional tag occurrence, precompiled for columnar evaluation."""

    __slots__ = ("index", "arity", "matcher", "key_positions", "key_of")

    def __init__(self, index, arity, matcher, key_positions, key_of) -> None:
        self.index = index
        self.arity = arity
        self.matcher = matcher
        self.key_positions = key_positions
        self.key_of = key_of


class _MSJKernel:
    """Set-based evaluation plan for one :class:`MSJJob`.

    Built lazily per process (and dropped when the job is pickled to parallel
    workers): per input relation, the guard specs and conditional tags that
    read it, each with a compiled matcher, the join-key/projection *column
    positions* and — for guards — the constant serialized request size.
    Unrestricted atoms (no constants, no repeated variables — the common
    case) are evaluated entirely columnar: keys and payloads are sliced out
    of the chunk's :class:`~repro.model.relation.ColumnBlock` with one
    C-level ``zip`` per batch, and the pair accounting of the interpreted
    map+combiner is reproduced from per-key ``Counter`` counts.  Restricted
    atoms fall back to per-row matching over the chunk's row view.  The
    reduce kernel is a hash semi-join: per conditional tag a set of asserted
    keys, probed segment-at-a-time by the guard-side key/payload slices.
    """

    def __init__(self, job: MSJJob) -> None:
        self.job = job
        #: relation -> [_GuardSpec, ...]
        self.guards: Dict[str, List[_GuardSpec]] = {}
        #: relation -> [_TagSpec, ...]
        self.tags: Dict[str, List[_TagSpec]] = {}
        by_reference = job.options.tuple_reference
        for index, spec in enumerate(job.specs):
            compiled = spec.guard.compile()
            if job.emit_projection:
                payload_positions = compiled.positions(spec.projection)
                payload_of = compiled.extractor(spec.projection)
                payload_len = len(spec.projection)
            else:
                payload_positions = None
                payload_of = None
                payload_len = spec.guard.arity
            request_size = TAG_BYTES + (
                TUPLE_REFERENCE_BYTES
                if by_reference
                else max(1, payload_len) * FIELD_BYTES
            )
            self.guards.setdefault(spec.guard.relation, []).append(
                _GuardSpec(
                    index,
                    compiled.arity,
                    compiled.matcher,
                    compiled.positions(spec.join_key),
                    payload_positions,
                    compiled.extractor(spec.join_key),
                    payload_of,
                    request_size,
                )
            )
        for tag_index, (conditional, join_key) in enumerate(job._tags):
            compiled = conditional.compile()
            self.tags.setdefault(conditional.relation, []).append(
                _TagSpec(
                    tag_index,
                    compiled.arity,
                    compiled.matcher,
                    compiled.positions(join_key),
                    compiled.extractor(join_key),
                )
            )

    def map_batch(self, relation: str, chunks) -> MapBatch:
        job = self.job
        blocks = [as_column_block(chunk) for chunk in chunks]
        row_len = next((b.arity for b in blocks if b.length), None)
        guards = [g for g in self.guards.get(relation, ()) if g.arity == row_len]
        tags = [t for t in self.tags.get(relation, ()) if t.arity == row_len]
        probe: Dict[int, List[tuple]] = {g.index: [] for g in guards}
        build: Dict[int, set] = {t.index: set() for t in tags}
        packed = job.uses_combiner()
        acc = (
            PackedChunkAccumulator(job, TAG_BYTES)
            if packed
            else PlainPairAccumulator(job)
        )
        for block in blocks:
            if not block.length:
                continue
            for guard in guards:
                if guard.matcher is None:
                    keys = block.key_tuples(guard.key_positions)
                    if guard.payload_positions is None:
                        payloads = block.rows()
                    else:
                        payloads = block.key_tuples(guard.payload_positions)
                else:
                    rows = [r for r in block.rows() if guard.matcher(r)]
                    if not rows:
                        continue
                    key_of = guard.key_of
                    keys = [key_of(r) for r in rows]
                    if guard.payload_of is None:
                        payloads = rows
                    else:
                        payload_of = guard.payload_of
                        payloads = [payload_of(r) for r in rows]
                probe[guard.index].append((keys, payloads))
                counts = Counter(keys)
                if packed:
                    acc.add_request_counts(counts, guard.request_size)
                else:
                    acc.add_key_counts(counts, guard.request_size)
            for tag in tags:
                if tag.matcher is None:
                    if packed:
                        distinct = block.distinct_keys(tag.key_positions)
                        build[tag.index].update(distinct)
                        acc.add_assert_keys(distinct, tag.index)
                        continue
                    keys = block.key_tuples(tag.key_positions)
                else:
                    key_of = tag.key_of
                    keys = [key_of(r) for r in block.rows() if tag.matcher(r)]
                if not keys:
                    continue
                if packed:
                    distinct = set(keys)
                    build[tag.index].update(distinct)
                    acc.add_assert_keys(distinct, tag.index)
                else:
                    counts = Counter(keys)
                    build[tag.index].update(counts)
                    acc.add_key_counts(counts, TAG_BYTES)
            acc.flush()
        return MapBatch(
            relation=relation,
            intermediate_bytes=acc.intermediate_bytes,
            output_records=acc.records,
            key_bytes=acc.key_bytes,
            data=(probe, build),
        )

    def reduce_batch(self, batches) -> Dict[str, Iterable[Tuple[object, ...]]]:
        job = self.job
        asserted: Dict[int, set] = {}
        for batch in batches:
            for tag_index, keys in batch.data[1].items():
                existing = asserted.get(tag_index)
                if existing is None:
                    # A tag spec reads exactly one input relation, so this is
                    # normally the only contributor: alias, don't copy.
                    asserted[tag_index] = keys
                else:
                    merged = set(existing)
                    merged.update(keys)
                    asserted[tag_index] = merged
        outputs: Dict[str, set] = {spec.output: set() for spec in job.specs}
        for batch in batches:
            for index, segments in batch.data[0].items():
                keyset = asserted.get(job._spec_tag[index])
                if not keyset:
                    continue
                sink = outputs[job.specs[index].output]
                for keys, payloads in segments:
                    sink.update(
                        [p for k, p in zip(keys, payloads) if k in keyset]
                    )
        return outputs


def multi_semi_join(
    specs: Sequence[SemiJoinSpec],
    database,
    engine=None,
    options: Optional[GumboOptions] = None,
):
    """Evaluate the multi-semi-join operator ``⋉·(S)`` and return its relations.

    A convenience wrapper that builds a single :class:`MSJJob`, runs it on the
    given engine (a default :class:`~repro.mapreduce.engine.MapReduceEngine`
    when omitted) and returns ``{output name: Relation}``.
    """
    from ..mapreduce.engine import MapReduceEngine

    engine = engine or MapReduceEngine()
    job = MSJJob("msj", specs, options=options, emit_projection=True)
    result = engine.run_job(job, database)
    return result.outputs
