"""Request / assert messages exchanged by the MSJ operator (Algorithm 1).

The repartition-join encoding of a semi-join (Section 4.1) has guard facts
send *request* messages ("does a conditional fact with this join key exist?
if so, output this tuple") and conditional facts send *assert* messages
("a conditional fact with this join key exists").  The MSJ operator of
Section 4.2 multiplexes the messages of many semi-joins into one job, tagging
each message with the semi-join / conditional atom it belongs to.

Message objects know their serialised size (``size_bytes``) so the simulator
can charge communication faithfully, including the two Gumbo optimisations of
Section 5.1:

* *tuple references* (optimisation 2): a request carries an 8-byte tuple id
  instead of the output tuple itself;
* *message packing* (optimisation 1): all messages sharing a key are packed
  into one list value, so the key is shipped once and duplicate asserts are
  collapsed — see :class:`PackedMessages` and :func:`pack_messages`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

#: Serialised size of a message tag (semi-join index / conditional-atom id).
TAG_BYTES = 4

#: Serialised size of a tuple-id reference (optimisation 2).
TUPLE_REFERENCE_BYTES = 8

#: Serialised size of one field of a shipped tuple.
FIELD_BYTES = 10


@dataclass(frozen=True)
class RequestMessage:
    """``[Req (κ_i, i); Out ā]`` — sent by a guard fact for semi-join *index*.

    ``payload`` is the tuple to output should the semi-join succeed (the
    projected guard tuple, or the full guard row when the MSJ job runs in
    pipeline mode).  When *by_reference* is true the payload is accounted as
    an 8-byte tuple id (Gumbo optimisation 2); the actual values are still
    carried so the simulation remains executable.
    """

    index: int
    payload: Tuple[object, ...]
    by_reference: bool = False

    def size_bytes(self) -> int:
        payload = (
            TUPLE_REFERENCE_BYTES
            if self.by_reference
            else max(1, len(self.payload)) * FIELD_BYTES
        )
        return TAG_BYTES + payload

    def __str__(self) -> str:
        return f"Req({self.index}; Out {self.payload!r})"


@dataclass(frozen=True)
class AssertMessage:
    """``[Assert κ]`` — sent by a conditional fact for conditional tag *tag*."""

    tag: int

    def size_bytes(self) -> int:
        return TAG_BYTES

    def __str__(self) -> str:
        return f"Assert({self.tag})"


@dataclass(frozen=True)
class GuardMessage:
    """EVAL-job marker: "this key is a guard tuple of target *target*"."""

    target: int

    def size_bytes(self) -> int:
        return TAG_BYTES

    def __str__(self) -> str:
        return f"Guard({self.target})"


@dataclass(frozen=True)
class MembershipMessage:
    """EVAL-job marker: "this key belongs to intermediate relation *index*"."""

    target: int
    index: int

    def size_bytes(self) -> int:
        return TAG_BYTES

    def __str__(self) -> str:
        return f"Member({self.target}, {self.index})"


class PackedMessages:
    """A list of messages shipped under a single key (message packing).

    Duplicate assert messages are collapsed; requests are preserved.  The
    packed value's size is the sum of its members' sizes — the per-message key
    repetition that unpacked shipping would incur is avoided because the
    simulator charges the key once per *value* and packing produces exactly
    one value per key.
    """

    __slots__ = ("messages",)

    def __init__(self, messages: Sequence[object]) -> None:
        asserts_seen = set()
        packed: List[object] = []
        for message in messages:
            if isinstance(message, AssertMessage):
                if message.tag in asserts_seen:
                    continue
                asserts_seen.add(message.tag)
            packed.append(message)
        self.messages = tuple(packed)

    def size_bytes(self) -> int:
        return sum(m.size_bytes() for m in self.messages)

    def __iter__(self):
        return iter(self.messages)

    def __len__(self) -> int:
        return len(self.messages)

    def __repr__(self) -> str:
        return f"PackedMessages({list(self.messages)!r})"


def pack_messages(values: Sequence[object]) -> List[object]:
    """Combine a key's message list into a single packed value."""
    return [PackedMessages(values)]


def unpack_messages(values: Sequence[object]):
    """Yield the individual messages of a (possibly packed) value list."""
    for value in values:
        if isinstance(value, PackedMessages):
            yield from value
        else:
            yield value
