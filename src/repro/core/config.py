"""One validated execution configuration, shared by every entry point.

Backend choice and its knobs (worker counts, shard counts, the sqlite
scratch path, the kernel mode, tracing, the optimisation switches) used to
be assembled ad hoc by each consumer — the CLI built a
:class:`~repro.core.options.GumboOptions` from argparse attributes, the
query service took loose keyword arguments, the fuzzer oracle took another
subset.  :class:`ExecutionConfig` is the single validated bundle they all
share now:

* :meth:`ExecutionConfig.from_cli_args` lifts an ``argparse.Namespace``
  (any of the CLI subcommands' — missing attributes fall back to the
  defaults) into a validated config;
* :meth:`ExecutionConfig.to_options` lowers it to the
  :class:`~repro.core.options.GumboOptions` the planning layers consume;
* :meth:`ExecutionConfig.make_backend` builds the configured
  :class:`~repro.exec.base.ExecutionBackend` directly (used by the fuzzer
  oracle, which shares one engine across several backends).

Validation happens at construction: unknown backends, non-positive worker/
shard/node counts and unknown kernel modes all raise ``ValueError`` here,
before any engine or process pool exists.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional

from ..exec.base import SERIAL, make_backend, normalise_backend
from ..exec.shm import normalise_data_plane
from ..mapreduce.kernels import KERNEL_AUTO, KERNEL_MODES
from .options import GumboOptions

if TYPE_CHECKING:  # pragma: no cover - types only
    from ..exec.base import ExecutionBackend
    from ..mapreduce.engine import MapReduceEngine


@dataclass(frozen=True)
class ExecutionConfig:
    """The validated execution configuration of one run/service/campaign.

    Attributes
    ----------
    backend:
        Canonical backend name (aliases like ``"mp"`` or ``"sqlite3"`` are
        normalised at construction).
    workers:
        Worker-pool size for the parallel backend (None → CPU count).
    shards:
        Persistent worker count for the sharded backend (None → its
        default of 2).
    sql_db:
        On-disk scratch-database path for the SQL backend (None → memory).
    data_plane:
        How chunk payloads cross process boundaries on the parallel and
        sharded backends (``"auto"``/``"shm"``/``"pickle"``, see
        :mod:`repro.exec.shm`).
    kernel_mode:
        Batch-kernel path selector (``"auto"``/``"on"``/``"off"``).
    strategy:
        The default plan strategy (``"auto"`` for cost-based selection).
    nodes:
        Simulated cluster size (drives mapper/reducer allocation).
    message_packing / tuple_reference / reducers_by_intermediate /
    fuse_one_round:
        The Section 5.1 optimisation switches, as in
        :class:`~repro.core.options.GumboOptions`.
    trace:
        Record runtime spans (see :mod:`repro.obs`).
    """

    backend: str = SERIAL
    workers: Optional[int] = None
    shards: Optional[int] = None
    sql_db: Optional[str] = None
    data_plane: str = "auto"
    kernel_mode: str = KERNEL_AUTO
    strategy: str = "auto"
    nodes: int = 10
    message_packing: bool = True
    tuple_reference: bool = True
    reducers_by_intermediate: bool = True
    fuse_one_round: bool = True
    trace: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "backend", normalise_backend(self.backend))
        object.__setattr__(
            self, "data_plane", normalise_data_plane(self.data_plane)
        )
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.shards is not None and self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {self.nodes}")
        if self.kernel_mode not in KERNEL_MODES:
            raise ValueError(
                f"unknown kernel_mode {self.kernel_mode!r}; "
                f"expected one of {KERNEL_MODES}"
            )

    @classmethod
    def from_cli_args(cls, args: argparse.Namespace) -> "ExecutionConfig":
        """Lift an argparse namespace into a validated config.

        Works with any subcommand's namespace: attributes a subcommand does
        not define fall back to the dataclass defaults, so one lifting
        covers ``query``, ``serve``, ``delta``, ``trace`` and ``fuzz``.
        """
        trace = bool(
            getattr(args, "trace", False) or getattr(args, "trace_out", None)
        )
        return cls(
            backend=getattr(args, "backend", None) or SERIAL,
            workers=getattr(args, "workers", None),
            shards=getattr(args, "shards", None),
            sql_db=getattr(args, "sql_db", None),
            data_plane=getattr(args, "data_plane", None) or "auto",
            kernel_mode=getattr(args, "kernel_mode", None) or KERNEL_AUTO,
            strategy=getattr(args, "strategy", None) or "auto",
            nodes=getattr(args, "nodes", 10),
            message_packing=not getattr(args, "no_packing", False),
            tuple_reference=not getattr(args, "no_tuple_reference", False),
            trace=trace,
        )

    def to_options(self) -> GumboOptions:
        """Lower to the :class:`GumboOptions` the planning layers consume."""
        return GumboOptions(
            message_packing=self.message_packing,
            tuple_reference=self.tuple_reference,
            reducers_by_intermediate=self.reducers_by_intermediate,
            fuse_one_round=self.fuse_one_round,
            backend=self.backend,
            workers=self.workers,
            shards=self.shards,
            sql_db=self.sql_db,
            data_plane=self.data_plane,
            default_strategy=self.strategy,
            kernel_mode=self.kernel_mode,
            trace=self.trace,
        )

    def make_backend(
        self, engine: Optional["MapReduceEngine"] = None
    ) -> "ExecutionBackend":
        """Build the configured execution backend (see
        :func:`repro.exec.base.make_backend`)."""
        return make_backend(
            self.backend,
            engine=engine,
            workers=self.workers,
            sql_db=self.sql_db,
            shards=self.shards,
            data_plane=self.data_plane,
        )

    def with_backend(self, backend: str) -> "ExecutionConfig":
        """A copy selecting a different backend (same knobs)."""
        return replace(self, backend=backend)
