"""Greedy test-case shrinking for fuzzer counterexamples.

Given a failing (program, database) pair and a predicate that re-checks the
failure, :func:`shrink_case` repeatedly applies the three reductions the
issue tracker wants minimal counterexamples for — in this order, until a
fixed point:

1. **drop statements** — remove one subquery plus (transitively) every later
   subquery that references its output, so the program stays a valid SGF
   query;
2. **drop atoms** — one-step condition simplifications per statement:
   ``And(l, r) → l`` / ``→ r``, ``Or(l, r) → l`` / ``→ r``, ``Not(c) → c``,
   and finally ``condition → TRUE``.  Removing atoms can never violate
   guardedness, so every candidate is again a valid BSGF query;
3. **drop tuples** — per relation, first try removing the relation
   entirely, then emptying it, then removing single tuples greedily.

Every accepted reduction strictly decreases the case's size (statements +
condition nodes + tuples), so the process terminates; a pass cap bounds the
worst case.  The predicate is re-evaluated on every candidate, so the
returned pair still exhibits the original failure.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Set, Tuple

from ..model.database import Database
from ..model.relation import Relation
from ..query.bsgf import BSGFQuery
from ..query.conditions import And, Condition, Not, Or, TRUE
from ..query.sgf import SGFQuery

#: Re-checks the failure on a candidate (program, database) pair.
Predicate = Callable[[SGFQuery, Database], bool]


def case_size(program: SGFQuery, database: Database) -> int:
    """Shrinking progress measure: statements + condition nodes + tuples."""
    nodes = sum(len(list(q.condition.walk())) for q in program)
    tuples = sum(len(relation) for relation in database)
    return len(program) + nodes + tuples


def shrink_case(
    program: SGFQuery,
    database: Database,
    is_interesting: Predicate,
    max_passes: int = 25,
) -> Tuple[SGFQuery, Database]:
    """Greedily minimise a failing case while *is_interesting* stays true.

    The initial pair is assumed interesting (the caller observed the
    failure); the returned pair is interesting and locally minimal under the
    three reductions.
    """
    for _ in range(max_passes):
        changed = False
        program, stmt_changed = _shrink_statements(program, database, is_interesting)
        changed |= stmt_changed
        program, cond_changed = _shrink_conditions(program, database, is_interesting)
        changed |= cond_changed
        database, data_changed = _shrink_tuples(program, database, is_interesting)
        changed |= data_changed
        if not changed:
            break
    return program, database


# -- statements ---------------------------------------------------------------------


def _shrink_statements(
    program: SGFQuery, database: Database, is_interesting: Predicate
) -> Tuple[SGFQuery, bool]:
    changed = False
    progress = True
    while progress and len(program) > 1:
        progress = False
        # Try dropping later statements first: they are more likely to be
        # dead weight (nothing else can depend on the last one).
        for index in reversed(range(len(program))):
            candidate = _without_statement(program, index)
            if candidate is None:
                continue
            if is_interesting(candidate, database):
                program = candidate
                changed = progress = True
                break
    return program, changed


def _without_statement(program: SGFQuery, index: int) -> Optional[SGFQuery]:
    """Drop statement *index* and, transitively, its dependents."""
    removed: Set[str] = {program[index].output}
    kept: List[BSGFQuery] = []
    for position, query in enumerate(program):
        if position == index or query.relation_names & removed:
            removed.add(query.output)
            continue
        kept.append(query)
    if not kept:
        return None
    return SGFQuery(tuple(kept), name=program.name)


# -- conditions ---------------------------------------------------------------------


def _shrink_conditions(
    program: SGFQuery, database: Database, is_interesting: Predicate
) -> Tuple[SGFQuery, bool]:
    changed = False
    progress = True
    while progress:
        progress = False
        for index, query in enumerate(program):
            for simpler in _condition_reductions(query.condition):
                candidate = _with_condition(program, index, simpler)
                if candidate is None:
                    continue
                if is_interesting(candidate, database):
                    program = candidate
                    changed = progress = True
                    break
            if progress:
                break
    return program, changed


def _condition_reductions(condition: Condition) -> Iterator[Condition]:
    """One-step simplifications of *condition*, largest-first."""
    yield from _reduce_node(condition)
    if condition is not TRUE:
        yield TRUE


def _reduce_node(node: Condition) -> Iterator[Condition]:
    """Replace any one internal node by one of its children."""
    if isinstance(node, Not):
        yield node.operand
        for reduced in _reduce_node(node.operand):
            yield Not(reduced)
    elif isinstance(node, (And, Or)):
        yield node.left
        yield node.right
        rebuild = And if isinstance(node, And) else Or
        for reduced in _reduce_node(node.left):
            yield rebuild(reduced, node.right)
        for reduced in _reduce_node(node.right):
            yield rebuild(node.left, reduced)


def _with_condition(
    program: SGFQuery, index: int, condition: Condition
) -> Optional[SGFQuery]:
    """Rebuild the program with statement *index*'s condition replaced.

    Removing atoms may orphan an earlier statement only in the sense that its
    output becomes unreferenced — still a valid SGF query — so the only
    failure mode is construction raising, which is treated as "no candidate".
    """
    try:
        old = program[index]
        new_query = BSGFQuery(old.output, old.projection, old.guard, condition)
        statements = list(program.subqueries)
        statements[index] = new_query
        return SGFQuery(tuple(statements), name=program.name)
    except ValueError:
        return None


# -- tuples -------------------------------------------------------------------------


def _shrink_tuples(
    program: SGFQuery, database: Database, is_interesting: Predicate
) -> Tuple[Database, bool]:
    changed = False
    referenced = set()
    for query in program:
        referenced |= query.relation_names
    for name in database.relation_names():
        relation = database[name]
        # Cheapest first: does the failure survive without the relation at
        # all?  (Dropping relations the shrunk program no longer mentions —
        # leftovers of removed statements — always lands here.)
        if name not in referenced:
            dropped = _without_relation(database, name)
            if is_interesting(program, dropped):
                database = dropped
                changed = True
                continue
        if len(relation) == 0:
            continue
        # Next: does it survive without the relation's data?
        empty = _with_rows(database, name, [])
        if is_interesting(program, empty):
            database = empty
            changed = True
            continue
        rows = relation.sorted_tuples()
        position = 0
        while position < len(rows):
            candidate_rows = rows[:position] + rows[position + 1 :]
            candidate = _with_rows(database, name, candidate_rows)
            if is_interesting(program, candidate):
                database = candidate
                rows = candidate_rows
                changed = True
            else:
                position += 1
    return database, changed


def _without_relation(database: Database, name: str) -> Database:
    """A copy of *database* with relation *name* removed entirely."""
    return Database(
        relation.copy() for relation in database if relation.name != name
    )


def _with_rows(
    database: Database, name: str, rows: List[Tuple[object, ...]]
) -> Database:
    """A copy of *database* with relation *name* holding exactly *rows*."""
    copy = database.copy()
    original = database[name]
    replacement = Relation(name, original.arity, original.bytes_per_field)
    for row in rows:
        replacement.add(row)
    copy.add_relation(replacement)
    return copy
