"""Randomized differential testing of (B)SGF evaluation (``repro fuzz``).

The paper's experiments exercise 13 hand-picked queries; this package earns
breadth by generating random guardedness-respecting SGF programs and random
databases, evaluating every case with the reference evaluator (the semantics
by definition of Section 3.1) and with every applicable evaluation strategy
on every execution backend — including the dynamic re-planning executor —
and reporting any disagreement, greedily shrunk to a minimal counterexample.

The moving parts:

* :mod:`repro.fuzz.generator` — seeded program/database generation
  (:class:`FuzzConfig`, :func:`generate_case`);
* :mod:`repro.fuzz.profiles`  — pluggable data-value profiles
  (uniform / zipf / correlated / degenerate / mixed);
* :mod:`repro.fuzz.oracle`    — the :class:`DifferentialOracle`;
* :mod:`repro.fuzz.shrink`    — greedy counterexample minimisation;
* :mod:`repro.fuzz.runner`    — the campaign driver (:func:`run_fuzz`),
  reporting and standalone repro-script emission.

Quick start::

    from repro.fuzz import FuzzOptions, run_fuzz
    report = run_fuzz(FuzzOptions(seed=7, iterations=50))
    assert report.ok, report.counterexamples[0].script()
"""

from .generator import (
    FuzzCase,
    FuzzConfig,
    case_rng,
    generate_case,
    generate_database,
    generate_insert_batch,
    generate_program,
)
from .oracle import DIRECT, DYNAMIC, DifferentialOracle, Divergence
from .profiles import (
    PROFILE_NAMES,
    PROFILES,
    CorrelatedProfile,
    DegenerateProfile,
    MixedProfile,
    UniformProfile,
    ValueProfile,
    ZipfProfile,
    make_profile,
)
from .runner import Counterexample, FuzzOptions, FuzzReport, repro_script, run_fuzz
from .shrink import case_size, shrink_case

__all__ = [
    "DIRECT",
    "DYNAMIC",
    "PROFILES",
    "PROFILE_NAMES",
    "CorrelatedProfile",
    "Counterexample",
    "DegenerateProfile",
    "DifferentialOracle",
    "Divergence",
    "FuzzCase",
    "FuzzConfig",
    "FuzzOptions",
    "FuzzReport",
    "MixedProfile",
    "UniformProfile",
    "ValueProfile",
    "ZipfProfile",
    "case_rng",
    "case_size",
    "generate_case",
    "generate_database",
    "generate_insert_batch",
    "generate_program",
    "make_profile",
    "repro_script",
    "run_fuzz",
    "shrink_case",
]
