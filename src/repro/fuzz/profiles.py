"""Pluggable value profiles for the workload fuzzer's random databases.

A :class:`ValueProfile` decides what the *data* of a generated database looks
like: how many tuples a relation gets and how its values are distributed.
Different profiles push the evaluation strategies into different regimes:

* ``uniform``     — independent uniform values, the paper's default setup
  (reusing the domain-scaling convention of :mod:`repro.workloads.generator`);
* ``zipf``        — Zipf-skewed values (heavy hitters on small values, via the
  shared :func:`repro.workloads.generator.zipf_values` sampler), stressing the
  hash-partitioned shuffle and the skew-aware MSJ assumptions;
* ``correlated``  — all columns of a tuple derive from one seed value, so
  join keys correlate across relations (selectivity estimates go wrong in
  interesting ways);
* ``degenerate``  — empty relations, single-tuple relations, and relations
  whose tuples all share one join-key value: the edge cases hand-written
  workloads miss;
* ``adversarial`` — mixed-type values (ints, strings, floats, ``None``) and
  occasional empty relations, stressing the columnar kernels' type handling
  and the type-tagged sort order;
* ``mixed``       — picks one of the above per relation (the fuzzing
  default: one database exercises several regimes at once).

Profiles are looked up by name through :func:`make_profile` and the
``PROFILES`` registry, mirroring how execution backends are selected.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Tuple

from ..workloads.generator import zipf_values

#: Tuple rows produced for one relation.
Rows = List[Tuple[object, ...]]


class ValueProfile:
    """Base class: decides cardinality and values of generated relations.

    The unit of generation is one relation, produced by :meth:`generate`.
    :meth:`cardinality` and :meth:`rows` are the two halves of that template:
    stateful profiles (``mixed``, ``degenerate``) pick their per-relation
    shape in :meth:`cardinality` and have :meth:`rows` honour it, so a
    :meth:`rows` call is only meaningful after the :meth:`cardinality` call
    for the same relation — callers wanting one-shot generation should use
    :meth:`generate`.
    """

    #: Registry name of the profile.
    name: str = "abstract"

    def generate(
        self, rng: random.Random, arity: int, max_tuples: int, domain: int
    ) -> Rows:
        """Produce one relation's rows: cardinality choice, then values."""
        count = self.cardinality(rng, max_tuples)
        return self.rows(rng, arity, count, domain)

    def cardinality(self, rng: random.Random, max_tuples: int) -> int:
        """How many tuples a relation receives (before set-deduplication)."""
        return rng.randint(0, max_tuples) if max_tuples > 0 else 0

    def rows(
        self, rng: random.Random, arity: int, count: int, domain: int
    ) -> Rows:
        """Generate *count* rows of the given *arity* over ``range(domain)``.

        Must be preceded by the relation's :meth:`cardinality` call for
        stateful profiles (see the class docstring).
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class UniformProfile(ValueProfile):
    """Independent uniform values — the paper's experimental setup in miniature."""

    name = "uniform"

    def rows(self, rng: random.Random, arity: int, count: int, domain: int) -> Rows:
        return [
            tuple(rng.randrange(domain) for _ in range(arity)) for _ in range(count)
        ]


class ZipfProfile(ValueProfile):
    """Zipf-skewed values: small values are heavy hitters."""

    name = "zipf"

    def __init__(self, skew: float = 1.2) -> None:
        self.skew = skew

    def rows(self, rng: random.Random, arity: int, count: int, domain: int) -> Rows:
        # One batched draw for all cells (the weight list is built once).
        values = zipf_values(rng, count * arity, domain, self.skew)
        return [
            tuple(values[row * arity : (row + 1) * arity]) for row in range(count)
        ]


class CorrelatedProfile(ValueProfile):
    """Columns derived from one seed value, so values correlate across columns
    and (because every relation shares the construction) across relations."""

    name = "correlated"

    def rows(self, rng: random.Random, arity: int, count: int, domain: int) -> Rows:
        rows: Rows = []
        for _ in range(count):
            seed = rng.randrange(domain)
            rows.append(tuple((seed + column) % domain for column in range(arity)))
        return rows


class DegenerateProfile(ValueProfile):
    """Empty relations, singletons, and single-join-key relations.

    Three per-relation shapes: *empty*, a *singleton* tuple ``(v, ..., v)``,
    and a *constant-key* relation whose first column holds one fixed value
    while the remaining columns vary — many tuples all hashing to the same
    join key (relations are sets, so repeating one identical tuple would
    silently collapse to a singleton).
    """

    name = "degenerate"

    def __init__(self) -> None:
        self._shape = 0

    def cardinality(self, rng: random.Random, max_tuples: int) -> int:
        self._shape = rng.randrange(3)
        if self._shape == 0:
            return 0
        if self._shape == 1:
            return 1
        return rng.randint(0, max_tuples) if max_tuples > 0 else 0

    def rows(self, rng: random.Random, arity: int, count: int, domain: int) -> Rows:
        value = rng.randrange(domain)
        if self._shape == 1 or arity == 1:
            # A single repeated value; for arity 1 the constant-key shape
            # would dedup to this anyway.
            return [tuple(value for _ in range(arity)) for _ in range(count)]
        return [
            (value, *(rng.randrange(domain) for _ in range(arity - 1)))
            for _ in range(count)
        ]


def _adversarial_value(draw: int) -> object:
    """Map a domain draw to a typed value, deterministically.

    The mapping is a pure function of the draw, so equal draws produce equal
    values in every relation — join keys stay joinable across the mixed-type
    columns.  NaN is deliberately absent: the parallel backend pickles rows
    per task, which clones a NaN into distinct objects that no longer compare
    equal anywhere (a genuine property of ``float("nan")``, not a bug), so
    NaN parity is covered by in-process unit tests instead
    (``tests/test_kernels.py``).
    """
    kind = draw % 4
    if kind == 0:
        return draw
    if kind == 1:
        return f"s{draw}"
    if kind == 2:
        return draw + 0.5
    return None


class AdversarialProfile(ValueProfile):
    """Mixed-type columns and occasional empty relations.

    Exercises the columnar kernel path where typed-array packing must fall
    back to object columns, ``_naturally_sortable`` must reject the column,
    and the type-tagged sort order decides determinism.
    """

    name = "adversarial"

    def cardinality(self, rng: random.Random, max_tuples: int) -> int:
        if rng.random() < 0.15:
            return 0
        return rng.randint(0, max_tuples) if max_tuples > 0 else 0

    def rows(self, rng: random.Random, arity: int, count: int, domain: int) -> Rows:
        return [
            tuple(_adversarial_value(rng.randrange(domain)) for _ in range(arity))
            for _ in range(count)
        ]


class MixedProfile(ValueProfile):
    """Per-relation random choice among the other profiles (the default)."""

    name = "mixed"

    def __init__(self) -> None:
        self._choices: List[ValueProfile] = [
            UniformProfile(),
            ZipfProfile(),
            CorrelatedProfile(),
            DegenerateProfile(),
            AdversarialProfile(),
        ]
        self._active: ValueProfile = self._choices[0]

    def cardinality(self, rng: random.Random, max_tuples: int) -> int:
        # cardinality() is called once per relation, before rows(): pick the
        # per-relation profile here so both decisions come from one profile.
        self._active = rng.choice(self._choices)
        return self._active.cardinality(rng, max_tuples)

    def rows(self, rng: random.Random, arity: int, count: int, domain: int) -> Rows:
        return self._active.rows(rng, arity, count, domain)


#: Profile registry: name -> factory.
PROFILES: Dict[str, Callable[[], ValueProfile]] = {
    UniformProfile.name: UniformProfile,
    ZipfProfile.name: ZipfProfile,
    CorrelatedProfile.name: CorrelatedProfile,
    DegenerateProfile.name: DegenerateProfile,
    AdversarialProfile.name: AdversarialProfile,
    MixedProfile.name: MixedProfile,
}

#: Names accepted by ``repro fuzz --profile``.
PROFILE_NAMES = tuple(sorted(PROFILES))


def make_profile(name: str) -> ValueProfile:
    """Instantiate a profile by registry name."""
    try:
        factory = PROFILES[name.strip().lower()]
    except KeyError:
        raise ValueError(
            f"unknown value profile {name!r}; expected one of {PROFILE_NAMES}"
        ) from None
    return factory()
