"""The fuzzing campaign driver: generate, check, shrink, report.

:func:`run_fuzz` runs a seeded campaign of random (program, database) cases
through the :class:`~repro.fuzz.oracle.DifferentialOracle`; every divergence
is greedily shrunk (:mod:`repro.fuzz.shrink`) and packaged as a
:class:`Counterexample` carrying a standalone reproduction script — plain
query text plus data literals, no fuzzer state needed — so a failure seen in
CI can be replayed from the log alone.  Campaigns are reproducible from
``(seed, index, FuzzConfig)``: case *i* is always
:func:`repro.fuzz.generator.generate_case(seed, i, config)`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..model.database import Database
from ..query.sgf import SGFQuery
from .generator import FuzzCase, FuzzConfig, generate_case, generate_insert_batch
from .oracle import DifferentialOracle, Divergence
from .shrink import shrink_case

#: An insert batch: relation name -> rows.
InsertBatch = Dict[str, List[Tuple[object, ...]]]


@dataclass(frozen=True)
class FuzzOptions:
    """Campaign-level switches (the generator's knobs live in FuzzConfig)."""

    seed: int = 0
    iterations: int = 100
    config: FuzzConfig = field(default_factory=FuzzConfig)
    backends: Sequence[str] = ("serial", "parallel", "sql")
    workers: Optional[int] = None
    #: Persistent worker count for a ``sharded`` axis (None = its default).
    shards: Optional[int] = None
    #: sqlite database file backing the ``sql`` axis (None = in-memory).
    sql_db: Optional[str] = None
    #: Data plane for the parallel/sharded axes (``"shm"``/``"pickle"``/
    #: ``"auto"``; None keeps the ``"auto"`` default) — the dedicated shm
    #: fuzz axis pins ``"shm"`` and requires zero divergence and zero
    #: leaked ``/dev/shm/repro_*`` segments.
    data_plane: Optional[str] = None
    shrink: bool = True
    stop_on_failure: bool = True
    include_dynamic: bool = True
    include_optimal: bool = True
    include_auto: bool = True
    check_metrics: bool = True
    #: Also sweep every backend with the batch-kernel path forced on (the
    #: ``<backend>+kernel`` axes); outputs *and* simulated metrics must match
    #: the interpreted axes exactly.
    kernel_axis: bool = True
    #: Incremental oracle mode: every case additionally gets a random insert
    #: batch, and the incremental refresh of every strategy × backend (plus
    #: the index-based direct mode) must equal a full recompute.
    incremental: bool = False


@dataclass
class Counterexample:
    """A divergence, its provenance, and the shrunk minimal repro."""

    case: FuzzCase
    divergences: List[Divergence]
    program: SGFQuery  # shrunk (== case.program when shrinking is off)
    database: Database  # shrunk
    shrunk_divergences: List[Divergence]
    #: The insert batch of an incremental-mode divergence (None otherwise).
    inserts: Optional[InsertBatch] = None

    def script(self) -> str:
        """A standalone Python script reproducing the divergence."""
        return repro_script(self)

    def describe(self) -> str:
        lines = [f"counterexample ({self.case.case_id}):"]
        for divergence in self.shrunk_divergences or self.divergences:
            lines.append(f"  {divergence}")
        lines.append("shrunk program:")
        for statement in self.program.unparse().splitlines():
            lines.append(f"  {statement}")
        lines.append("shrunk database:")
        for relation in self.database:
            rows = ", ".join(repr(t) for t in relation.sorted_tuples()[:8])
            suffix = " ..." if len(relation) > 8 else ""
            lines.append(
                f"  {relation.name}/{relation.arity}: "
                f"{rows or '(empty)'}{suffix}"
            )
        if self.inserts is not None:
            lines.append("insert batch:")
            for name in sorted(self.inserts):
                rows = ", ".join(repr(t) for t in self.inserts[name][:8])
                suffix = " ..." if len(self.inserts[name]) > 8 else ""
                lines.append(f"  {name}: {rows or '(empty)'}{suffix}")
        return "\n".join(lines)


@dataclass
class FuzzReport:
    """Summary of one fuzzing campaign."""

    seed: int
    iterations: int
    cases_run: int = 0
    statements_generated: int = 0
    combinations_checked: int = 0
    counterexamples: List[Counterexample] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.counterexamples

    @property
    def programs_per_second(self) -> float:
        return self.cases_run / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def format(self) -> str:
        lines = [
            f"fuzz campaign: seed={self.seed} cases={self.cases_run}/{self.iterations}",
            f"  statements generated:   {self.statements_generated}",
            f"  combinations checked:   {self.combinations_checked}",
            f"  divergences:            {len(self.counterexamples)}",
            f"  elapsed:                {self.elapsed_s:.2f}s "
            f"({self.programs_per_second:.1f} programs/s)",
        ]
        return "\n".join(lines)


def run_fuzz(
    options: Optional[FuzzOptions] = None,
    oracle: Optional[DifferentialOracle] = None,
    on_case: Optional[Callable[[FuzzCase], None]] = None,
) -> FuzzReport:
    """Run a seeded differential-fuzzing campaign.

    An externally supplied *oracle* is reused (and not closed); otherwise one
    is created from the options and closed before returning.  *on_case* is a
    progress hook called with every generated case before it is checked.
    """
    options = options or FuzzOptions()
    own_oracle = oracle is None
    if oracle is None:
        oracle = DifferentialOracle(
            backends=options.backends,
            workers=options.workers,
            shards=options.shards,
            sql_db=options.sql_db,
            data_plane=options.data_plane,
            include_dynamic=options.include_dynamic,
            include_optimal=options.include_optimal,
            include_auto=options.include_auto,
            check_metrics=options.check_metrics,
            kernel_axis=options.kernel_axis,
        )
    report = FuzzReport(seed=options.seed, iterations=options.iterations)
    start = perf_counter()
    try:
        for index in range(options.iterations):
            case = generate_case(options.seed, index, options.config)
            if on_case is not None:
                on_case(case)
            report.cases_run += 1
            report.statements_generated += len(case.program)
            inserts: Optional[InsertBatch] = None
            if options.incremental:
                inserts = generate_insert_batch(
                    options.seed, index, case.program, options.config
                )
                report.combinations_checked += len(
                    oracle.incremental_combinations(case.program)
                )
                divergences = oracle.check_incremental(
                    case.program, case.database, inserts
                )
            else:
                report.combinations_checked += len(oracle.combinations(case.program))
                divergences = oracle.check(case.program, case.database)
            if not divergences:
                continue
            report.counterexamples.append(
                _build_counterexample(case, divergences, oracle, options, inserts)
            )
            if options.stop_on_failure:
                break
    finally:
        if own_oracle:
            oracle.close()
        report.elapsed_s = perf_counter() - start
    return report


def _build_counterexample(
    case: FuzzCase,
    divergences: List[Divergence],
    oracle: DifferentialOracle,
    options: FuzzOptions,
    inserts: Optional[InsertBatch] = None,
) -> Counterexample:
    program, database = case.program, case.database
    shrunk_divergences = divergences
    if options.shrink:
        # Each shrink probe re-checks only the combinations that originally
        # diverged (stopping at the first hit), not the full matrix — this
        # also keeps the shrinker anchored to the *same* bug.
        targets = frozenset(
            (divergence.strategy, backend)
            for divergence in divergences
            # Metric-parity divergences need every backend of the strategy
            # re-run to be observable; mismatches/errors only need their own.
            for backend in (
                oracle.backend_names
                if divergence.kind == "metrics"
                else (divergence.backend,)
            )
        )
        if inserts is not None:
            # Incremental mode: the insert batch is held fixed while the
            # program/database shrink (inserts into dropped relations simply
            # recreate them, which preserves the check's semantics).
            def probe(p: SGFQuery, d: Database) -> bool:
                return bool(
                    oracle.check_incremental(
                        p, d, inserts, only=targets, stop_at_first=True
                    )
                )

        else:

            def probe(p: SGFQuery, d: Database) -> bool:
                return bool(oracle.check(p, d, only=targets, stop_at_first=True))

        program, database = shrink_case(program, database, probe)
        if inserts is not None:
            shrunk_divergences = oracle.check_incremental(program, database, inserts)
        else:
            shrunk_divergences = oracle.check(program, database)
    return Counterexample(
        case=case,
        divergences=divergences,
        program=program,
        database=database,
        shrunk_divergences=shrunk_divergences,
        inserts=inserts,
    )


# -- repro scripts ------------------------------------------------------------------


def repro_script(counterexample: Counterexample) -> str:
    """A standalone script replaying the (shrunk) divergence.

    The script depends only on the installed ``repro`` package: the program
    is embedded as concrete syntax, the database as plain literals.  The
    original case can also be regenerated from its seed (see the header
    comment in the emitted script).
    """
    case = counterexample.case
    # Embedded via repr(), not a triple-quoted block: string constants may
    # contain backslashes or quote runs that would break a plain literal.
    program_text = counterexample.program.unparse()
    relation_literals = ",\n".join(
        f"    ({relation.name!r}, {relation.arity}, "
        f"{relation.sorted_tuples()!r})"
        for relation in counterexample.database
    )
    config = case.config
    if counterexample.inserts is not None:
        check_block = (
            f"inserts = {counterexample.inserts!r}\n\n"
            "with DifferentialOracle() as oracle:\n"
            "    divergences = oracle.check_incremental(program, database, inserts)"
        )
    else:
        check_block = (
            "with DifferentialOracle() as oracle:\n"
            "    divergences = oracle.check(program, database)"
        )
    return f'''"""Fuzzer counterexample: {case.case_id}.

Regenerate the unshrunk case with:

    from repro.fuzz import FuzzConfig, generate_case
    case = generate_case({case.seed}, {case.index}, {config!r})
"""

from repro import Database, Relation
from repro.fuzz import DifferentialOracle
from repro.query.parser import parse_sgf

program = parse_sgf({program_text!r})

database = Database()
for name, arity, rows in [
{relation_literals}
]:
    relation = Relation(name, arity)
    for row in rows:
        relation.add(row)
    database.add_relation(relation)

{check_block}
for divergence in divergences:
    print(divergence)
if not divergences:
    print("no divergence reproduced (fixed?)")
'''
