"""Seeded random generation of (B)SGF programs and matching databases.

The generator is *guardedness-respecting by construction*: conditional atoms
draw their variables from the guard atom's variables, from constants, and
from atom-local fresh variables that are never shared between two distinct
conditional atoms — exactly the strictly-guarded fragment of Section 3.1.
Constructing :class:`~repro.query.bsgf.BSGFQuery` /
:class:`~repro.query.sgf.SGFQuery` re-validates every invariant, so a
generator bug can never silently produce an out-of-fragment program.

What the generated space covers (all driven by :class:`FuzzConfig`
probabilities from one seeded :class:`random.Random`):

* guard arities 1..``max_guard_arity`` with repeated variables and constants
  (both numeric and string constants, which never match the integer data —
  deliberately, so constant-pruned paths are exercised);
* nested AND/OR/NOT conditions over 1..``max_conditional_atoms`` conditional
  atoms, including duplicated atoms and queries without a WHERE clause;
* conditional relations shared across statements, conditional atoms over
  earlier outputs, and guards over earlier outputs — multi-level dependency
  chains as in the paper's C-queries;
* databases drawn through a pluggable :class:`~repro.fuzz.profiles.ValueProfile`
  (uniform / Zipf-skewed / correlated / degenerate / mixed), including empty
  relations.

Every generated program round-trips through the concrete syntax
(:mod:`repro.query.unparse` + :mod:`repro.query.parser`), which is asserted
at generation time so repro scripts can always carry plain query text.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..model.atoms import Atom
from ..model.database import Database
from ..model.relation import Relation
from ..model.terms import Constant, Term, Variable
from ..query.bsgf import BSGFQuery
from ..query.conditions import And, AtomCondition, Condition, Not, Or, TRUE
from ..query.parser import parse_sgf
from ..query.sgf import SGFQuery
from .profiles import ValueProfile, make_profile


@dataclass(frozen=True)
class FuzzConfig:
    """Knobs of the random program/database generator.

    All sizes are upper bounds; the generator draws uniformly (or by the
    stated probabilities) below them.  The defaults keep individual cases
    small enough that a full strategy × backend differential sweep of one
    case stays in the tens of milliseconds.
    """

    max_statements: int = 4
    max_guard_arity: int = 4
    max_conditional_atoms: int = 4
    max_conditional_arity: int = 3
    max_tuples: int = 12
    domain: int = 8
    profile: str = "mixed"

    #: Probability that a guard / conditional term position is a constant.
    p_constant: float = 0.15
    #: Probability that a constant is a string (never matches integer data).
    p_string_constant: float = 0.1
    #: Probability that a guard position repeats an earlier guard variable.
    p_repeat_variable: float = 0.15
    #: Probability that a statement has no WHERE clause.
    p_no_condition: float = 0.1
    #: Probability that a condition node is negated.
    p_not: float = 0.25
    #: Probability that a binary condition node is OR (vs AND).
    p_or: float = 0.4
    #: Probability that a guard reads an earlier output (dependency chain).
    p_dependent_guard: float = 0.35
    #: Probability that a conditional atom reads an earlier output.
    p_dependent_conditional: float = 0.25
    #: Probability that a conditional atom reuses an already-seen base
    #: relation (shared conditionals across statements).
    p_shared_relation: float = 0.5
    #: Probability that a conditional atom term is an atom-local fresh
    #: variable (existentially quantified, never shared between atoms).
    p_fresh_variable: float = 0.15

    def with_overrides(self, **changes: object) -> "FuzzConfig":
        return replace(self, **changes)


@dataclass
class FuzzCase:
    """One generated (program, database) pair plus its reproduction key."""

    seed: int
    index: int
    config: FuzzConfig
    program: SGFQuery
    database: Database

    @property
    def case_id(self) -> str:
        return f"seed={self.seed} index={self.index}"


def case_rng(seed: int, index: int) -> random.Random:
    """The deterministic RNG of case *index* under *seed*."""
    return random.Random(f"repro-fuzz:{seed}:{index}")


class _ProgramBuilder:
    """Builds one random SGF program, tracking the evolving schema."""

    def __init__(self, rng: random.Random, config: FuzzConfig) -> None:
        self.rng = rng
        self.config = config
        #: relation name -> arity, for base relations and outputs alike.
        self.schema: Dict[str, int] = {}
        self.base_names: List[str] = []
        self.outputs: List[str] = []
        self._base_counter = 0

    # -- relation symbols ---------------------------------------------------------

    def _new_base_relation(self, arity: int) -> str:
        name = f"R{self._base_counter}"
        self._base_counter += 1
        self.schema[name] = arity
        self.base_names.append(name)
        return name

    def _pick_base_relation(self, max_arity: int) -> str:
        reusable = [n for n in self.base_names if self.schema[n] <= max_arity]
        if reusable and self.rng.random() < self.config.p_shared_relation:
            return self.rng.choice(reusable)
        return self._new_base_relation(self.rng.randint(1, max_arity))

    # -- terms --------------------------------------------------------------------

    def _constant(self) -> Constant:
        if self.rng.random() < self.config.p_string_constant:
            return Constant(f"s{self.rng.randrange(self.config.domain)}")
        return Constant(self.rng.randrange(self.config.domain))

    def _guard_terms(self, arity: int) -> Tuple[Term, ...]:
        terms: List[Term] = []
        used: List[Variable] = []
        for position in range(arity):
            roll = self.rng.random()
            if roll < self.config.p_constant:
                terms.append(self._constant())
            elif used and roll < self.config.p_constant + self.config.p_repeat_variable:
                terms.append(self.rng.choice(used))
            else:
                variable = Variable(f"x{position}")
                used.append(variable)
                terms.append(variable)
        if not used:
            # A guard needs at least one variable (the SELECT list must be
            # non-empty and all its variables must occur in the guard).
            variable = Variable("x0")
            terms[0] = variable
        return tuple(terms)

    # -- statements ---------------------------------------------------------------

    def build_statement(self, index: int) -> BSGFQuery:
        rng, config = self.rng, self.config
        output = f"Z{index + 1}"

        # Guard: an earlier output (dependency chain) or a base relation.
        if self.outputs and rng.random() < config.p_dependent_guard:
            guard_name = rng.choice(self.outputs)
        else:
            guard_name = self._pick_base_relation(config.max_guard_arity)
        guard = Atom(guard_name, self._guard_terms(self.schema[guard_name]))
        guard_variables = list(guard.variables)

        # Projection: a non-empty draw (with replacement, so duplicates and
        # reorderings occur) from the guard's variables.
        width = rng.randint(1, len(guard_variables))
        if rng.random() < 0.5:
            projection = tuple(rng.sample(guard_variables, width))
        else:
            projection = tuple(rng.choice(guard_variables) for _ in range(width))

        condition: Condition = TRUE
        if rng.random() >= config.p_no_condition:
            atom_count = rng.randint(1, config.max_conditional_atoms)
            fresh_counter = [0]
            leaves = [
                self._conditional_atom(guard_variables, fresh_counter)
                for _ in range(atom_count)
            ]
            condition = self._condition_tree(leaves)

        query = BSGFQuery(output, projection, guard, condition)
        self.schema[output] = len(projection)
        self.outputs.append(output)
        return query

    def _conditional_atom(
        self, guard_variables: Sequence[Variable], fresh_counter: List[int]
    ) -> Condition:
        rng, config = self.rng, self.config
        if self.outputs and rng.random() < config.p_dependent_conditional:
            name = rng.choice(self.outputs)
        else:
            name = self._pick_base_relation(config.max_conditional_arity)
        arity = self.schema[name]
        terms: List[Term] = []
        for _ in range(arity):
            roll = rng.random()
            if roll < config.p_constant:
                terms.append(self._constant())
            elif roll < config.p_constant + config.p_fresh_variable:
                # Atom-local fresh variable: the counter is per statement and
                # every draw is unique, so no two conditional atoms can share
                # a non-guard variable (the guardedness requirement).
                terms.append(Variable(f"f{fresh_counter[0]}"))
                fresh_counter[0] += 1
            else:
                terms.append(rng.choice(list(guard_variables)))
        return AtomCondition(Atom(name, tuple(terms)))

    def _condition_tree(self, leaves: List[Condition]) -> Condition:
        """Combine *leaves* into a random AND/OR/NOT tree (random shape)."""
        rng, config = self.rng, self.config
        nodes = list(leaves)
        while len(nodes) > 1:
            right = nodes.pop(rng.randrange(len(nodes)))
            left = nodes.pop(rng.randrange(len(nodes)))
            joined: Condition = (
                Or(left, right) if rng.random() < config.p_or else And(left, right)
            )
            if rng.random() < config.p_not:
                joined = Not(joined)
            nodes.append(joined)
        root = nodes[0]
        if rng.random() < config.p_not:
            root = Not(root)
        return root


def generate_program(
    rng: random.Random, config: Optional[FuzzConfig] = None
) -> SGFQuery:
    """Generate one random SGF program (1..``max_statements`` statements)."""
    config = config or FuzzConfig()
    builder = _ProgramBuilder(rng, config)
    count = rng.randint(1, max(1, config.max_statements))
    statements = [builder.build_statement(i) for i in range(count)]
    program = SGFQuery(tuple(statements))
    # The fuzzer's contract: every generated program lives inside the
    # concrete syntax.  Round-trip through the parser to enforce it (a real
    # raise, not an assert, so the check survives ``python -O``).
    if parse_sgf(program.unparse()) != program:
        raise ValueError(
            f"unparse/parse round-trip changed the program:\n{program.unparse()}"
        )
    return program


def generate_database(
    rng: random.Random,
    program: SGFQuery,
    config: Optional[FuzzConfig] = None,
    profile: Optional[ValueProfile] = None,
) -> Database:
    """Generate a database for *program*'s base relations under a profile.

    Every base relation the program mentions is materialised (possibly
    empty), with its arity inferred from the program's atoms; values come
    from the profile.  Relations are generated in sorted-name order so the
    result is a pure function of the RNG state.
    """
    config = config or FuzzConfig()
    profile = profile or make_profile(config.profile)
    arities = _base_arities(program)
    database = Database()
    for name in sorted(arities):
        arity = arities[name]
        relation = Relation(name, arity)
        for row in profile.generate(rng, arity, config.max_tuples, config.domain):
            relation.add(row)
        database.add_relation(relation)
    return database


def _base_arities(program: SGFQuery) -> Dict[str, int]:
    """Arity of every base (non-output) relation mentioned by *program*."""
    outputs = set(program.output_names)
    arities: Dict[str, int] = {}
    for query in program:
        for atom in (query.guard, *query.conditional_atoms):
            if atom.relation in outputs:
                continue
            existing = arities.get(atom.relation)
            if existing is not None and existing != atom.arity:
                raise ValueError(
                    f"relation {atom.relation!r} used with arities "
                    f"{existing} and {atom.arity}"
                )
            arities[atom.relation] = atom.arity
    return arities


def generate_insert_batch(
    seed: int,
    index: int,
    program: SGFQuery,
    config: Optional[FuzzConfig] = None,
) -> Dict[str, List[Tuple[object, ...]]]:
    """A deterministic random insert batch for the incremental oracle mode.

    Rows are drawn for a random subset of the program's base relations, with
    values slightly *beyond* the generation domain as well as inside it — so
    batches both create fresh join keys (new guard tuples, new conditional
    keys) and hit existing ones (truth flips for already-stored guard
    tuples).  The batch RNG is independent of the case RNG: the same
    ``(seed, index)`` always yields the same (program, database, batch)
    triple without perturbing ordinary case generation.
    """
    config = config or FuzzConfig()
    rng = random.Random(f"repro-fuzz-delta:{seed}:{index}")
    arities = _base_arities(program)
    names = sorted(arities)
    if not names:
        return {}
    chosen = rng.sample(names, rng.randint(1, len(names)))
    batch: Dict[str, List[Tuple[object, ...]]] = {}
    for name in sorted(chosen):
        count = rng.randint(1, max(1, config.max_tuples // 2))
        rows = {
            tuple(rng.randrange(config.domain + 2) for _ in range(arities[name]))
            for _ in range(count)
        }
        batch[name] = sorted(rows)
    return batch


def generate_case(
    seed: int, index: int, config: Optional[FuzzConfig] = None
) -> FuzzCase:
    """Deterministically generate case *index* of the campaign under *seed*."""
    config = config or FuzzConfig()
    rng = case_rng(seed, index)
    program = generate_program(rng, config)
    database = generate_database(rng, program, config)
    return FuzzCase(
        seed=seed, index=index, config=config, program=program, database=database
    )
