"""The differential oracle: reference semantics vs every strategy × backend.

For a given (program, database) pair the oracle computes the expected answer
with the reference evaluator of Section 3.1 (:func:`repro.query.reference.
evaluate_sgf` — the semantics *by definition*) and then executes the program
under every applicable evaluation strategy on every configured execution
backend, plus the dynamic re-planning executor.  Three kinds of divergence
are reported:

* ``mismatch`` — an output relation differs from the reference answer
  (missing and/or extra tuples);
* ``error``    — a strategy/backend raised instead of producing an answer;
* ``metrics``  — the *simulated* Hadoop metrics differ between two backends
  for the same strategy (they are documented to be bit-identical).

The oracle owns its execution backends (one engine shared by all of them, so
simulated metrics are comparable) and reuses them across checks — the
multiprocessing pool of the parallel backend is started once per campaign,
not once per case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..core.config import ExecutionConfig
from ..core.dynamic import DynamicSGFExecutor
from ..core.gumbo import Gumbo
from ..core.options import GumboOptions
from ..core.strategies import AUTO, applicable_strategies
from ..mapreduce.engine import MapReduceEngine
from ..mapreduce.kernels import KERNEL_OFF, KERNEL_ON
from ..model.database import Database
from ..query.reference import evaluate_sgf
from ..query.sgf import SGFQuery
from ..exec.base import normalise_backend

#: Pseudo-strategy name under which the dynamic executor is reported.
DYNAMIC = "dynamic"

#: Suffix of the axes that run the batch-kernel execution path.
KERNEL_SUFFIX = "+kernel"

#: Pseudo-backend name under which the index-based ("direct") refresh mode of
#: the incremental oracle is reported.
DIRECT = "direct"

#: Tuples of one output relation.
Answer = FrozenSet[Tuple[object, ...]]

#: One per-output mismatch: (output name, missing tuples, extra tuples).
Mismatch = Tuple[str, Tuple[Tuple[object, ...], ...], Tuple[Tuple[object, ...], ...]]


@dataclass(frozen=True)
class Divergence:
    """One disagreement between an execution and the reference answer."""

    kind: str  # "mismatch" | "error" | "metrics" | "incremental"
    strategy: str
    backend: str
    detail: str
    #: For mismatches: output name -> (missing tuples, extra tuples).
    outputs: Tuple[Mismatch, ...] = ()

    def __str__(self) -> str:
        return (
            f"[{self.kind}] strategy={self.strategy} backend={self.backend}: "
            f"{self.detail}"
        )


class DifferentialOracle:
    """Compares every strategy × backend combination against the reference.

    Parameters
    ----------
    backends:
        Backend names to execute on (default: serial, parallel and sql, so
        every campaign cross-checks all three executors; add ``"sharded"``
        for the persistent worker-shard tier as a fourth axis).
    workers:
        Worker-pool size for the parallel backend (None → CPU count).
    shards:
        Persistent worker count for the sharded backend (None → its default).
    sql_db:
        On-disk scratch-database path for the sql backend (None → in-memory).
    data_plane:
        How chunk payloads reach parallel/sharded workers
        (``"shm"``/``"pickle"``/``"auto"``, see :mod:`repro.exec.shm`) —
        the shm fuzz axis pins ``"shm"`` here and must diverge nowhere.
    engine:
        The shared MapReduce engine (paper-cluster default when omitted).
    include_dynamic:
        Also run the dynamic re-planning executor on every backend.
    include_optimal:
        Include the brute-force OPTIMAL / OPTIMAL-SGF strategies (within the
        size bounds of :func:`repro.core.strategies.applicable_strategies`).
    include_auto:
        Also run the cost-based AUTO meta-strategy on every backend — its
        winner must agree with the reference like any fixed strategy.
    check_metrics:
        Also require bit-identical simulated metrics across backends.
    kernel_axis:
        Also run every backend with the batch-kernel execution path forced on
        (``kernel_mode="on"``), reported as ``"<backend>+kernel"`` axes.  The
        plain axes pin ``kernel_mode="off"``, so kernel-vs-interpreted output
        *and* simulated-metric parity is checked alongside the cross-backend
        parity (both funnel through the same metric comparison).
    """

    def __init__(
        self,
        backends: Sequence[str] = ("serial", "parallel", "sql"),
        workers: Optional[int] = None,
        engine: Optional[MapReduceEngine] = None,
        include_dynamic: bool = True,
        include_optimal: bool = True,
        include_auto: bool = True,
        check_metrics: bool = True,
        kernel_axis: bool = True,
        sql_db: Optional[str] = None,
        shards: Optional[int] = None,
        data_plane: Optional[str] = None,
    ) -> None:
        if not backends:
            raise ValueError("the oracle needs at least one backend")
        self.engine = engine or MapReduceEngine()
        self.include_dynamic = include_dynamic
        self.include_optimal = include_optimal
        self.include_auto = include_auto
        self.check_metrics = check_metrics
        self.kernel_axis = kernel_axis
        config = ExecutionConfig(
            workers=workers,
            sql_db=sql_db,
            shards=shards,
            data_plane=data_plane or "auto",
        )
        names = [normalise_backend(name) for name in backends]
        self._physical = {
            name: config.with_backend(name).make_backend(engine=self.engine)
            for name in dict.fromkeys(names)  # dedupe, keep order
        }
        # One axis per (backend, kernel mode): the plain axes pin the
        # interpreted path, the +kernel axes force the batch path; both share
        # the physical backend (and thus one parallel worker pool).
        axes = [
            (name, backend, GumboOptions(kernel_mode=KERNEL_OFF))
            for name, backend in self._physical.items()
        ]
        if kernel_axis:
            axes.extend(
                (name + KERNEL_SUFFIX, backend, GumboOptions(kernel_mode=KERNEL_ON))
                for name, backend in self._physical.items()
            )
        self._backends = {name: backend for name, backend, _ in axes}
        self._gumbos = {
            name: Gumbo(backend=backend, options=options)
            for name, backend, options in axes
        }
        self._dynamics = {
            name: DynamicSGFExecutor(backend=backend, options=options)
            for name, backend, options in axes
        }

    @property
    def backend_names(self) -> Tuple[str, ...]:
        return tuple(self._backends)

    def close(self) -> None:
        """Release backend resources (the parallel worker pool)."""
        for backend in self._physical.values():
            backend.close()

    def __enter__(self) -> "DifferentialOracle":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False

    # -- combinations -------------------------------------------------------------

    def strategies(self, program: SGFQuery) -> List[str]:
        """The strategies swept for *program* (AUTO and dynamic appended last)."""
        names = list(
            applicable_strategies(program, include_optimal=self.include_optimal)
        )
        if self.include_auto:
            names.append(AUTO)
        if self.include_dynamic:
            names.append(DYNAMIC)
        return names

    def combinations(self, program: SGFQuery) -> List[Tuple[str, str]]:
        """Every (strategy, backend) pair checked for *program*."""
        return [
            (strategy, backend)
            for strategy in self.strategies(program)
            for backend in self._backends
        ]

    # -- checking -----------------------------------------------------------------

    def check(
        self,
        program: SGFQuery,
        database: Database,
        only: Optional[FrozenSet[Tuple[str, str]]] = None,
        stop_at_first: bool = False,
    ) -> List[Divergence]:
        """All divergences of *program* over *database* (empty = agreement).

        *only* restricts the sweep to the given (strategy, backend) pairs and
        *stop_at_first* returns as soon as one divergence is found — the
        shrinker uses both so each shrink probe re-runs just the combination
        that originally diverged instead of the full matrix.  Note that
        restricting the backends also restricts the cross-backend metric
        parity check to the backends still swept.
        """
        expected = {
            name: frozenset(relation.tuples())
            for name, relation in evaluate_sgf(program, database).items()
        }
        divergences: List[Divergence] = []
        for strategy in self.strategies(program):
            if stop_at_first and divergences:
                break
            if only is not None and all(s != strategy for s, _ in only):
                continue
            reference_summary: Optional[Dict[str, float]] = None
            reference_backend: Optional[str] = None
            for backend_name in self._backends:
                if stop_at_first and divergences:
                    break
                if only is not None and (strategy, backend_name) not in only:
                    continue
                try:
                    answers, summary = self._run(
                        strategy, backend_name, program, database
                    )
                except Exception as exc:  # a crashing strategy is a finding
                    divergences.append(
                        Divergence(
                            kind="error",
                            strategy=strategy,
                            backend=backend_name,
                            detail=f"{type(exc).__name__}: {exc}",
                        )
                    )
                    continue
                mismatch = _diff_answers(expected, answers)
                if mismatch:
                    divergences.append(
                        Divergence(
                            kind="mismatch",
                            strategy=strategy,
                            backend=backend_name,
                            detail=_describe_mismatch(mismatch),
                            outputs=mismatch,
                        )
                    )
                if self.check_metrics:
                    if reference_summary is None:
                        reference_summary, reference_backend = summary, backend_name
                    elif summary != reference_summary:
                        divergences.append(
                            Divergence(
                                kind="metrics",
                                strategy=strategy,
                                backend=backend_name,
                                detail=(
                                    f"simulated metrics differ from backend "
                                    f"{reference_backend!r}: {summary} vs "
                                    f"{reference_summary}"
                                ),
                            )
                        )
        return divergences

    # -- incremental checking -----------------------------------------------------

    def incremental_strategies(self, program: SGFQuery) -> List[str]:
        """Strategies swept by the incremental oracle (no dynamic executor).

        The dynamic executor re-plans mid-flight and has no materialization
        notion; every plannable strategy — including AUTO — must however
        produce a materialization whose incremental refresh matches a full
        recompute.
        """
        names = list(
            applicable_strategies(program, include_optimal=self.include_optimal)
        )
        if self.include_auto:
            names.append(AUTO)
        return names

    def incremental_combinations(
        self, program: SGFQuery
    ) -> List[Tuple[str, str]]:
        """Every (strategy, backend-or-direct) pair the incremental check runs."""
        return [
            (strategy, mode)
            for strategy in self.incremental_strategies(program)
            for mode in (*self._backends, DIRECT)
        ]

    def check_incremental(
        self,
        program: SGFQuery,
        database: Database,
        inserts: Dict[str, Sequence[Tuple[object, ...]]],
        only: Optional[FrozenSet[Tuple[str, str]]] = None,
        stop_at_first: bool = False,
    ) -> List[Divergence]:
        """Divergences of incremental refresh vs full recompute (empty = agreement).

        For every applicable strategy the program is materialized over
        *database*, the insert batch is applied through
        :meth:`Gumbo.execute_delta <repro.core.gumbo.Gumbo.execute_delta>`,
        and the refreshed outputs are compared against the reference
        evaluator over the fully rebuilt database.  Engine-mode refreshes run
        on every configured backend; one extra sweep uses the index-based
        ``"direct"`` mode (reported under backend :data:`DIRECT`).  *only* /
        *stop_at_first* mirror :meth:`check` for the shrinker.
        """
        from ..incremental import apply_inserts, dedupe_inserts

        mutated = database.copy()
        apply_inserts(mutated, dedupe_inserts(mutated, inserts))
        expected = {
            name: frozenset(relation.tuples())
            for name, relation in evaluate_sgf(program, mutated).items()
        }
        divergences: List[Divergence] = []
        for strategy in self.incremental_strategies(program):
            if stop_at_first and divergences:
                break
            if only is not None and all(s != strategy for s, _ in only):
                continue
            for mode in (*self._backends, DIRECT):
                if stop_at_first and divergences:
                    break
                if only is not None and (strategy, mode) not in only:
                    continue
                gumbo = self._gumbos[self.backend_names[0] if mode == DIRECT else mode]
                try:
                    materialization = gumbo.materialize(
                        program, database.copy(), strategy
                    )
                    gumbo.execute_delta(
                        materialization,
                        inserts,
                        mode="direct" if mode == DIRECT else "engine",
                    )
                    answers = materialization.answers()
                except Exception as exc:  # a crashing refresh is a finding
                    divergences.append(
                        Divergence(
                            kind="error",
                            strategy=strategy,
                            backend=mode,
                            detail=f"{type(exc).__name__}: {exc}",
                        )
                    )
                    continue
                mismatch = _diff_answers(expected, answers)
                if mismatch:
                    divergences.append(
                        Divergence(
                            kind="incremental",
                            strategy=strategy,
                            backend=mode,
                            detail=_describe_mismatch(mismatch),
                            outputs=mismatch,
                        )
                    )
        return divergences

    def _run(
        self,
        strategy: str,
        backend_name: str,
        program: SGFQuery,
        database: Database,
    ) -> Tuple[Dict[str, Answer], Dict[str, float]]:
        """Execute one combination, returning answers and the simulated summary."""
        if strategy == DYNAMIC:
            result = self._dynamics[backend_name].execute(program, database)
            answers = {
                name: frozenset(relation.tuples())
                for name, relation in result.outputs.items()
            }
            return answers, result.metrics.summary()
        result = self._gumbos[backend_name].execute(program, database, strategy)
        answers = {
            name: frozenset(relation.tuples())
            for name, relation in result.all_outputs.items()
        }
        return answers, result.summary()


def _diff_answers(
    expected: Dict[str, Answer], actual: Dict[str, Answer]
) -> Tuple[Mismatch, ...]:
    """Per-output (missing, extra) tuples, for outputs that disagree."""
    mismatches = []
    for name in sorted(expected):
        got = actual.get(name, frozenset())
        missing = expected[name] - got
        extra = got - expected[name]
        if missing or extra:
            mismatches.append(
                (
                    name,
                    tuple(sorted(missing, key=repr)),
                    tuple(sorted(extra, key=repr)),
                )
            )
    return tuple(mismatches)


def _describe_mismatch(
    mismatch: Tuple[Tuple[str, Tuple, Tuple], ...], limit: int = 4
) -> str:
    parts = []
    for name, missing, extra in mismatch:
        bits = []
        if missing:
            shown = ", ".join(repr(t) for t in missing[:limit])
            more = f" (+{len(missing) - limit} more)" if len(missing) > limit else ""
            bits.append(f"missing {shown}{more}")
        if extra:
            shown = ", ".join(repr(t) for t in extra[:limit])
            more = f" (+{len(extra) - limit} more)" if len(extra) > limit else ""
            bits.append(f"extra {shown}{more}")
        parts.append(f"{name}: {'; '.join(bits)}")
    return " | ".join(parts)
