"""Experiment E4 — Figure 5: SGF queries C1–C4 under SEQUNIT / PARUNIT / GREEDY-SGF.

Reproduces the relative-to-SEQUNIT comparison of Section 5.3.  Expected shape:
PARUNIT has the lowest net times but (for C1 and C2, whose levels share
little) clearly higher total times; GREEDY-SGF sits between the two on net
time while reducing the total time below both, especially when subqueries
share atoms.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..workloads.queries import database_for, sgf_query
from ..workloads.scaling import ScaledEnvironment
from .results import ExperimentResult
from .runner import ExperimentRunner

FIGURE5_STRATEGIES = ("sequnit", "parunit", "greedy-sgf")
FIGURE5_QUERIES = ("C1", "C2", "C3", "C4")


def run_figure5(
    environment: Optional[ScaledEnvironment] = None,
    query_ids: Sequence[str] = FIGURE5_QUERIES,
    strategies: Sequence[str] = FIGURE5_STRATEGIES,
    selectivity: float = 0.5,
    seed: int = 3,
    runner: Optional[ExperimentRunner] = None,
) -> ExperimentResult:
    """Run the Figure 5 experiment and return its records."""
    runner = runner or ExperimentRunner(environment)
    env = runner.environment
    result = ExperimentResult(
        name="Figure 5",
        description="SGF queries C1-C4 under SEQUNIT/PARUNIT/GREEDY-SGF",
        baseline_strategy="sequnit",
    )
    for query_id in query_ids:
        query = sgf_query(query_id)
        database = database_for(
            query,
            guard_tuples=env.workload.guard_tuples,
            conditional_tuples=env.workload.conditional_tuples,
            selectivity=selectivity,
            seed=seed,
        )
        result.extend(runner.run_matrix(query_id, query, strategies, database))
    return result
