"""Experiment result containers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .report import averages_by_strategy, records_table, relative_table
from .runner import RunRecord


@dataclass
class ExperimentResult:
    """Records of one experiment (one figure or table of the paper)."""

    name: str
    description: str
    records: List[RunRecord] = field(default_factory=list)
    baseline_strategy: Optional[str] = None

    def add(self, record: RunRecord) -> None:
        self.records.append(record)

    def extend(self, records: Sequence[RunRecord]) -> None:
        self.records.extend(records)

    def by_strategy(self, strategy: str) -> List[RunRecord]:
        strategy = strategy.upper()
        return [r for r in self.records if r.strategy == strategy]

    def by_query(self, query_id: str) -> List[RunRecord]:
        return [r for r in self.records if r.query_id == query_id]

    def record(self, query_id: str, strategy: str) -> RunRecord:
        strategy = strategy.upper()
        for candidate in self.records:
            if candidate.query_id == query_id and candidate.strategy == strategy:
                return candidate
        raise KeyError((query_id, strategy))

    def averages(self) -> Dict[str, Dict[str, float]]:
        if self.baseline_strategy is None:
            return {}
        return averages_by_strategy(self.records, self.baseline_strategy)

    def format(self) -> str:
        """Absolute table plus (when a baseline is set) the relative table."""
        parts = [records_table(self.records, title=f"{self.name}: {self.description}")]
        if self.baseline_strategy is not None:
            parts.append(
                relative_table(
                    self.records,
                    self.baseline_strategy,
                    title=f"{self.name}: values relative to {self.baseline_strategy.upper()}",
                )
            )
        return "\n".join(parts)

    def __str__(self) -> str:
        return self.format()
