"""Experiment E3 — Section 5.2 "Cost Model": Gumbo's model vs Wang & Chan's.

Two sub-experiments:

1. *Plan quality on the stress query.*  The query of Section 5.2 probes every
   guard attribute against conditionals that a constant filters away
   completely, so the guard contributes a huge map output while the
   conditionals contribute almost none.  The aggregate Wang model averages
   this out and groups too aggressively; the per-partition Gumbo model keeps
   the guard's merge cost visible.  We run GREEDY with each model driving the
   grouping and compare the *measured* net and total times of the resulting
   plans (the paper reports a 43 % total-time and 71 % net-time reduction for
   cost_gumbo).

2. *Pairwise ranking accuracy.*  For the A-queries, both models estimate the
   cost of candidate MSJ jobs (singleton groups and pairs); each candidate is
   also executed in isolation to obtain its measured cost.  The fraction of
   job pairs whose ordering a model predicts correctly mirrors the paper's
   72.28 % (Gumbo) vs 69.37 % (Wang) comparison.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.costing import PlanCostEstimator
from ..core.msj import MSJJob
from ..core.options import GumboOptions
from ..cost.estimates import StatisticsCatalog
from ..cost.models import GumboCostModel, WangCostModel
from ..workloads.queries import bsgf_query_set, cost_model_stress_query, database_for
from ..workloads.scaling import ScaledEnvironment
from .report import format_table
from .results import ExperimentResult
from .runner import ExperimentRunner


@dataclass
class CostModelComparison:
    """Outcome of the cost-model experiment."""

    stress_records: ExperimentResult
    ranking_accuracy: Dict[str, float] = field(default_factory=dict)
    candidate_jobs: int = 0
    estimation_error: Dict[str, float] = field(default_factory=dict)

    def reductions(self) -> Dict[str, float]:
        """Relative reduction of GREEDY/gumbo vs GREEDY/wang on the stress query."""
        try:
            gumbo = self.stress_records.record("CM", "GREEDY[gumbo]")
            wang = self.stress_records.record("CM", "GREEDY[wang]")
        except KeyError:
            return {}
        out: Dict[str, float] = {}
        if wang.total_time > 0:
            out["total_time_reduction_pct"] = 100.0 * (
                1.0 - gumbo.total_time / wang.total_time
            )
        if wang.net_time > 0:
            out["net_time_reduction_pct"] = 100.0 * (
                1.0 - gumbo.net_time / wang.net_time
            )
        return out

    def format(self) -> str:
        parts = [self.stress_records.format()]
        reductions = self.reductions()
        if reductions:
            parts.append(
                format_table(
                    [
                        {
                            "metric": key,
                            "value": f"{value:.1f}%",
                        }
                        for key, value in reductions.items()
                    ],
                    title="Cost model: reduction of GREEDY[gumbo] w.r.t. GREEDY[wang]",
                )
            )
        if self.ranking_accuracy:
            parts.append(
                format_table(
                    [
                        {
                            "cost model": model,
                            "pairwise ranking accuracy": f"{accuracy * 100:.2f}%",
                            "candidate jobs": self.candidate_jobs,
                        }
                        for model, accuracy in self.ranking_accuracy.items()
                    ],
                    title="Cost model: pairwise job-cost ranking accuracy",
                )
            )
        if self.estimation_error:
            parts.append(
                format_table(
                    [
                        {
                            "cost model": model,
                            "relative estimation error": f"{error * 100:+.1f}%",
                        }
                        for model, error in self.estimation_error.items()
                    ],
                    title=(
                        "Cost model: estimated vs measured cost of the fully-grouped "
                        "stress-query MSJ job"
                    ),
                )
            )
        return "\n".join(parts)


def run_stress_query(
    environment: Optional[ScaledEnvironment] = None,
    selectivity: float = 0.5,
    seed: int = 11,
    groups: int = 4,
    keys: int = 12,
) -> ExperimentResult:
    """GREEDY driven by each cost model on the Section 5.2 stress query."""
    environment = environment or ScaledEnvironment()
    result = ExperimentResult(
        name="Cost model (stress query)",
        description="GREEDY plans chosen by cost_gumbo vs cost_wang",
    )
    queries = cost_model_stress_query(groups=groups, keys=keys)
    database = database_for(
        queries,
        guard_tuples=environment.workload.guard_tuples,
        conditional_tuples=environment.workload.conditional_tuples,
        selectivity=selectivity,
        seed=seed,
    )
    for model_name in ("gumbo", "wang"):
        runner = ExperimentRunner(environment, cost_model=model_name)
        record = runner.run_gumbo("CM", queries, "greedy", database)
        record.strategy = f"GREEDY[{model_name}]"
        result.add(record)
    return result


def ranking_accuracy(
    environment: Optional[ScaledEnvironment] = None,
    query_ids: Sequence[str] = ("A1", "A2", "A3"),
    selectivity: float = 0.5,
    seed: int = 11,
    max_group_size: int = 2,
) -> Tuple[Dict[str, float], int]:
    """Pairwise ordering accuracy of both cost models against measured job costs."""
    environment = environment or ScaledEnvironment()
    options = GumboOptions()
    engine = environment.engine()
    measured: List[float] = []
    estimates: Dict[str, List[float]] = {"gumbo": [], "wang": []}

    for query_id in query_ids:
        queries = bsgf_query_set(query_id)
        database = database_for(
            queries,
            guard_tuples=environment.workload.guard_tuples,
            conditional_tuples=environment.workload.conditional_tuples,
            selectivity=selectivity,
            seed=seed,
        )
        catalog = StatisticsCatalog(database, sample_size=500)
        estimators = {
            "gumbo": PlanCostEstimator(
                catalog,
                GumboCostModel(environment.constants),
                options,
                split_mb=environment.cluster.split_mb,
                mb_per_reducer=environment.mb_per_reducer_intermediate,
                mb_per_reducer_input=environment.mb_per_reducer_input,
            ),
            "wang": PlanCostEstimator(
                catalog,
                WangCostModel(environment.constants),
                options,
                split_mb=environment.cluster.split_mb,
                mb_per_reducer=environment.mb_per_reducer_intermediate,
                mb_per_reducer_input=environment.mb_per_reducer_input,
            ),
        }
        specs = [spec for query in queries for spec in query.semijoin_specs()]
        candidates: List[List] = [[spec] for spec in specs]
        if max_group_size >= 2:
            candidates.extend(
                [list(pair) for pair in itertools.combinations(specs, 2)]
            )
        for index, group in enumerate(candidates):
            job = MSJJob(
                f"{query_id}-candidate-{index}", group, options, emit_projection=False
            )
            job_result = engine.run_job(job, database)
            measured.append(job_result.metrics.total_time)
            for model_name, estimator in estimators.items():
                estimates[model_name].append(estimator.msj_cost(group))

    accuracy: Dict[str, float] = {}
    pairs = list(itertools.combinations(range(len(measured)), 2))
    comparable = [
        (i, j) for i, j in pairs if abs(measured[i] - measured[j]) > 1e-9
    ]
    for model_name, values in estimates.items():
        if not comparable:
            accuracy[model_name] = 1.0
            continue
        correct = 0
        for i, j in comparable:
            if (measured[i] < measured[j]) == (values[i] < values[j]):
                correct += 1
        accuracy[model_name] = correct / len(comparable)
    return accuracy, len(measured)


def estimation_error(
    environment: Optional[ScaledEnvironment] = None,
    selectivity: float = 0.5,
    seed: int = 11,
    groups: int = 4,
    keys: int = 12,
) -> Dict[str, float]:
    """Relative error of each model's estimate for the grouped stress-query MSJ job.

    The stress query's input relations have very different map input/output
    ratios (the guard fans out, the constant-filtered conditionals emit almost
    nothing), which is exactly the situation Equation (2) was introduced for:
    the per-partition Gumbo estimate tracks the measured cost closely while
    the aggregate Wang estimate drifts.  Returned values are
    ``(estimate - measured) / measured`` per model.
    """
    environment = environment or ScaledEnvironment()
    options = GumboOptions()
    queries = cost_model_stress_query(groups=groups, keys=keys)
    database = database_for(
        queries,
        guard_tuples=environment.workload.guard_tuples,
        conditional_tuples=environment.workload.conditional_tuples,
        selectivity=selectivity,
        seed=seed,
    )
    specs = [spec for query in queries for spec in query.semijoin_specs()]
    engine = environment.engine()
    job = MSJJob("stress-grouped", specs, options, emit_projection=False)
    measured = engine.run_job(job, database).metrics.total_time
    catalog = StatisticsCatalog(database, sample_size=500)
    errors: Dict[str, float] = {}
    for model_name, model in (
        ("gumbo", GumboCostModel(environment.constants)),
        ("wang", WangCostModel(environment.constants)),
    ):
        estimator = PlanCostEstimator(
            catalog,
            model,
            options,
            split_mb=environment.cluster.split_mb,
            mb_per_reducer=environment.mb_per_reducer_intermediate,
            mb_per_reducer_input=environment.mb_per_reducer_input,
            use_selectivity_for_outputs=True,
        )
        estimate = estimator.msj_cost(specs)
        errors[model_name] = (estimate - measured) / measured if measured else 0.0
    return errors


def run_cost_model_experiment(
    environment: Optional[ScaledEnvironment] = None,
    include_ranking: bool = True,
    include_estimation_error: bool = True,
    **stress_kwargs,
) -> CostModelComparison:
    """Run all parts of the cost-model experiment."""
    environment = environment or ScaledEnvironment()
    stress = run_stress_query(environment, **stress_kwargs)
    accuracy: Dict[str, float] = {}
    candidates = 0
    if include_ranking:
        accuracy, candidates = ranking_accuracy(environment)
    errors: Dict[str, float] = {}
    if include_estimation_error:
        errors = estimation_error(
            environment,
            groups=stress_kwargs.get("groups", 4),
            keys=stress_kwargs.get("keys", 12),
        )
    return CostModelComparison(
        stress_records=stress,
        ranking_accuracy=accuracy,
        candidate_jobs=candidates,
        estimation_error=errors,
    )
