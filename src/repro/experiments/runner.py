"""Shared machinery for the experiment drivers: running strategies, collecting records.

Every experiment of Section 5 boils down to: build a query (set), generate its
database at the chosen scale, evaluate it under several strategies, and report
the four metrics (net time, total time, HDFS input, communication).
:class:`ExperimentRunner` packages that loop; :class:`RunRecord` is one
(query, strategy) measurement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from ..baselines.plans import (
    BASELINE_STRATEGIES,
    build_baseline_program,
    reducer_mb_for,
)
from ..core.gumbo import Gumbo
from ..core.options import GumboOptions
from ..cost.models import CostModel
from ..model.database import Database
from ..query.bsgf import BSGFQuery
from ..query.sgf import SGFQuery
from ..workloads.scaling import DEFAULT_SCALE, ScaledEnvironment

QueryInput = Union[Sequence[BSGFQuery], SGFQuery]


@dataclass
class RunRecord:
    """One measured evaluation of a query under a strategy.

    Times are simulated seconds of the paper-scale system (the scaled cost
    environment preserves them); ``input_gb`` and ``communication_gb`` are
    reported at paper-equivalent volume (measured bytes divided by the
    workload scale factor) so they can be compared with Figures 3–5 directly.
    """

    query_id: str
    strategy: str
    net_time: float
    total_time: float
    input_gb: float
    communication_gb: float
    jobs: int
    rounds: int
    output_tuples: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        base = {
            "query": self.query_id,
            "strategy": self.strategy,
            "net_time_s": round(self.net_time, 1),
            "total_time_s": round(self.total_time, 1),
            "input_gb": round(self.input_gb, 2),
            "communication_gb": round(self.communication_gb, 2),
            "jobs": self.jobs,
            "rounds": self.rounds,
            "output_tuples": self.output_tuples,
        }
        base.update({k: round(v, 3) for k, v in self.extra.items()})
        return base

    def relative_to(self, baseline: "RunRecord") -> Dict[str, float]:
        """Metrics as percentages of *baseline* (the paper's Figure 3b style)."""

        def pct(value: float, reference: float) -> float:
            return 100.0 * value / reference if reference else 0.0

        return {
            "net_time_pct": pct(self.net_time, baseline.net_time),
            "total_time_pct": pct(self.total_time, baseline.total_time),
            "input_pct": pct(self.input_gb, baseline.input_gb),
            "communication_pct": pct(self.communication_gb, baseline.communication_gb),
        }


class ExperimentRunner:
    """Runs Gumbo strategies and the Pig/Hive baselines in one environment."""

    def __init__(
        self,
        environment: Optional[ScaledEnvironment] = None,
        options: Optional[GumboOptions] = None,
        cost_model: Union[str, CostModel] = "gumbo",
        sample_size: int = 500,
    ) -> None:
        self.environment = environment or ScaledEnvironment(scale=DEFAULT_SCALE)
        self.options = options or GumboOptions()
        self.cost_model = cost_model
        self.sample_size = sample_size

    # -- single runs -------------------------------------------------------------------

    def run_gumbo(
        self,
        query_id: str,
        queries: QueryInput,
        strategy: str,
        database: Database,
        environment: Optional[ScaledEnvironment] = None,
    ) -> RunRecord:
        """Evaluate *queries* with a Gumbo strategy and record the metrics."""
        env = environment or self.environment
        gumbo = Gumbo(
            engine=env.engine(),
            cost_model=self.cost_model,
            options=self.options,
            sample_size=self.sample_size,
        )
        result = gumbo.execute(queries, database, strategy)
        metrics = result.metrics
        output_tuples = sum(len(rel) for rel in result.outputs.values())
        return RunRecord(
            query_id=query_id,
            strategy=strategy.upper(),
            net_time=metrics.net_time,
            total_time=metrics.total_time,
            input_gb=metrics.input_gb / env.scale,
            communication_gb=metrics.communication_gb / env.scale,
            jobs=metrics.num_jobs,
            rounds=metrics.rounds,
            output_tuples=output_tuples,
        )

    def run_baseline(
        self,
        query_id: str,
        queries: Sequence[BSGFQuery],
        strategy: str,
        database: Database,
        environment: Optional[ScaledEnvironment] = None,
    ) -> RunRecord:
        """Evaluate a BSGF query set with one of the Pig/Hive baselines."""
        env = environment or self.environment
        program = build_baseline_program(list(queries), strategy)
        engine = env.baseline_engine(reducer_mb_for(strategy))
        result = engine.run_program(program, database)
        metrics = result.metrics
        outputs = {q.output for q in queries}
        output_tuples = sum(
            len(rel) for name, rel in result.outputs.items() if name in outputs
        )
        return RunRecord(
            query_id=query_id,
            strategy=strategy.upper(),
            net_time=metrics.net_time,
            total_time=metrics.total_time,
            input_gb=metrics.input_gb / env.scale,
            communication_gb=metrics.communication_gb / env.scale,
            jobs=metrics.num_jobs,
            rounds=metrics.rounds,
            output_tuples=output_tuples,
        )

    def run_strategy(
        self,
        query_id: str,
        queries: QueryInput,
        strategy: str,
        database: Database,
        environment: Optional[ScaledEnvironment] = None,
    ) -> RunRecord:
        """Dispatch to Gumbo or baseline execution based on the strategy name."""
        normalised = strategy.strip().lower().replace("_", "-").replace(" ", "-")
        if normalised in BASELINE_STRATEGIES:
            if isinstance(queries, SGFQuery):
                queries = list(queries.subqueries)
            return self.run_baseline(
                query_id, queries, normalised, database, environment
            )
        return self.run_gumbo(query_id, queries, normalised, database, environment)

    # -- sweeps -----------------------------------------------------------------------------

    def run_matrix(
        self,
        query_id: str,
        queries: QueryInput,
        strategies: Sequence[str],
        database: Database,
        environment: Optional[ScaledEnvironment] = None,
    ) -> List[RunRecord]:
        """Run several strategies over the same query and database."""
        return [
            self.run_strategy(query_id, queries, strategy, database, environment)
            for strategy in strategies
        ]
