"""Experiment drivers reproducing every table and figure of the paper's evaluation."""

from .ablation import run_ablation
from .costmodel import (
    CostModelComparison,
    ranking_accuracy,
    run_cost_model_experiment,
    run_stress_query,
)
from .figure3 import FIGURE3_QUERIES, FIGURE3_STRATEGIES, run_figure3
from .figure4 import FIGURE4_QUERIES, FIGURE4_STRATEGIES, run_figure4
from .figure5 import FIGURE5_QUERIES, FIGURE5_STRATEGIES, run_figure5
from .figure7 import (
    FIGURE7_STRATEGIES,
    FIGURE7A_DATA_SIZES,
    FIGURE7B_NODES,
    FIGURE7C_COMBINED,
    run_figure7a,
    run_figure7b,
    run_figure7c,
)
from .figure8 import FIGURE8_ATOM_COUNTS, FIGURE8_STRATEGIES, run_figure8
from .report import averages_by_strategy, format_table, records_table, relative_table
from .results import ExperimentResult
from .runner import ExperimentRunner, RunRecord
from .table3 import format_table3, run_table3, selectivity_increases

__all__ = [
    "CostModelComparison",
    "ExperimentResult",
    "ExperimentRunner",
    "FIGURE3_QUERIES",
    "FIGURE3_STRATEGIES",
    "FIGURE4_QUERIES",
    "FIGURE4_STRATEGIES",
    "FIGURE5_QUERIES",
    "FIGURE5_STRATEGIES",
    "FIGURE7A_DATA_SIZES",
    "FIGURE7B_NODES",
    "FIGURE7C_COMBINED",
    "FIGURE7_STRATEGIES",
    "FIGURE8_ATOM_COUNTS",
    "FIGURE8_STRATEGIES",
    "RunRecord",
    "averages_by_strategy",
    "format_table",
    "format_table3",
    "ranking_accuracy",
    "records_table",
    "relative_table",
    "run_ablation",
    "run_cost_model_experiment",
    "run_figure3",
    "run_figure4",
    "run_figure5",
    "run_figure7a",
    "run_figure7b",
    "run_figure7c",
    "run_figure8",
    "run_stress_query",
    "run_table3",
    "selectivity_increases",
]
