"""Experiment E9 — Table 3: sensitivity of the strategies to selectivity.

For queries A1–A3 the conditional relations' selectivity is varied from 0.1
(highly selective — few guard tuples survive) to 0.9 (barely selective) and
the increase of net and total time between the two extremes is reported per
strategy.  Expected shape (Section 5.4): SEQ's *total* time reacts strongly
(its per-step pruning disappears at low selectivity) while its net time
barely moves; PAR's and GREEDY's *net* times react the most; GREEDY is least
affected on the packable query A3.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..workloads.queries import bsgf_query_set, database_for
from ..workloads.scaling import ScaledEnvironment
from .report import format_table
from .results import ExperimentResult
from .runner import ExperimentRunner, RunRecord

TABLE3_STRATEGIES = ("seq", "par", "greedy")
TABLE3_QUERIES = ("A1", "A2", "A3")
TABLE3_SELECTIVITIES = (0.1, 0.9)


def run_table3(
    environment: Optional[ScaledEnvironment] = None,
    query_ids: Sequence[str] = TABLE3_QUERIES,
    strategies: Sequence[str] = TABLE3_STRATEGIES,
    selectivities: Sequence[float] = TABLE3_SELECTIVITIES,
    seed: int = 9,
    runner: Optional[ExperimentRunner] = None,
) -> ExperimentResult:
    """Run the Table 3 experiment: every (query, strategy, selectivity) cell."""
    runner = runner or ExperimentRunner(environment)
    env = runner.environment
    result = ExperimentResult(
        name="Table 3",
        description="Selectivity sensitivity of SEQ/PAR/GREEDY on A1-A3",
    )
    for query_id in query_ids:
        queries = bsgf_query_set(query_id)
        for selectivity in selectivities:
            database = database_for(
                queries,
                guard_tuples=env.workload.guard_tuples,
                conditional_tuples=env.workload.conditional_tuples,
                selectivity=selectivity,
                seed=seed,
            )
            for strategy in strategies:
                record = runner.run_strategy(
                    f"{query_id}@{selectivity:.1f}", queries, strategy, database
                )
                record.extra["selectivity"] = selectivity
                result.add(record)
    return result


def selectivity_increases(
    result: ExperimentResult,
    low: float = TABLE3_SELECTIVITIES[0],
    high: float = TABLE3_SELECTIVITIES[-1],
) -> List[Dict[str, object]]:
    """The Table 3 rows: % increase of net and total time from *low* to *high*."""
    rows: List[Dict[str, object]] = []
    queries = sorted({r.query_id.split("@")[0] for r in result.records})
    strategies = sorted({r.strategy for r in result.records})
    for strategy in strategies:
        row: Dict[str, object] = {"strategy": strategy}
        for query in queries:
            low_rec = _find(result.records, f"{query}@{low:.1f}", strategy)
            high_rec = _find(result.records, f"{query}@{high:.1f}", strategy)
            if low_rec is None or high_rec is None:
                continue
            row[f"{query}_net_increase_%"] = _increase(
                low_rec.net_time, high_rec.net_time
            )
            row[f"{query}_total_increase_%"] = _increase(
                low_rec.total_time, high_rec.total_time
            )
        rows.append(row)
    return rows


def format_table3(result: ExperimentResult) -> str:
    """Render the Table 3 summary (increase from selectivity 0.1 to 0.9)."""
    return format_table(
        selectivity_increases(result),
        title="Table 3: increase in net/total time from selectivity 0.1 to 0.9",
    )


def _find(records: Sequence[RunRecord], query_id: str, strategy: str) -> Optional[
    RunRecord
]:
    for record in records:
        if record.query_id == query_id and record.strategy == strategy:
            return record
    return None


def _increase(low: float, high: float) -> str:
    if low <= 0:
        return "n/a"
    return f"{100.0 * (high - low) / low:.0f}%"
