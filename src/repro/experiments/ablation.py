"""Ablation experiments for the design choices called out in DESIGN.md.

These are not figures of the paper but isolate the contribution of the
individual Gumbo optimisations of Section 5.1:

* message packing (optimisation 1) — expected to reduce communication,
  especially for queries whose conditional atoms share join keys (A2, A3);
* tuple references (optimisation 2) — expected to reduce communication and
  the size of the materialised intermediates;
* intermediate-size-based reducer allocation (optimisation 3) — expected to
  reduce net time by avoiding under-provisioned reduce phases;
* the cost model driving GREEDY (Equation (2) vs (3)) — see also experiment
  E3 for the dedicated stress query.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.options import GumboOptions
from ..workloads.queries import bsgf_query_set, database_for
from ..workloads.scaling import ScaledEnvironment
from .results import ExperimentResult
from .runner import ExperimentRunner

ABLATION_QUERIES = ("A2", "A3")


def _run_variant(
    result: ExperimentResult,
    environment: ScaledEnvironment,
    query_id: str,
    label: str,
    options: GumboOptions,
    database,
    queries,
    strategy: str = "greedy",
    cost_model: str = "gumbo",
) -> None:
    runner = ExperimentRunner(environment, options=options, cost_model=cost_model)
    record = runner.run_gumbo(query_id, queries, strategy, database)
    record.strategy = label
    result.add(record)


def run_ablation(
    environment: Optional[ScaledEnvironment] = None,
    query_ids: Sequence[str] = ABLATION_QUERIES,
    selectivity: float = 0.5,
    seed: int = 13,
) -> ExperimentResult:
    """Run all optimisation ablations on the sharing-heavy queries A2 and A3."""
    environment = environment or ScaledEnvironment()
    result = ExperimentResult(
        name="Ablation",
        description="Gumbo optimisations toggled individually (GREEDY strategy)",
        baseline_strategy="greedy[all-on]",
    )
    for query_id in query_ids:
        queries = bsgf_query_set(query_id)
        database = database_for(
            queries,
            guard_tuples=environment.workload.guard_tuples,
            conditional_tuples=environment.workload.conditional_tuples,
            selectivity=selectivity,
            seed=seed,
        )
        variants = [
            ("GREEDY[ALL-ON]", GumboOptions()),
            ("GREEDY[NO-PACKING]", GumboOptions().without(message_packing=False)),
            ("GREEDY[NO-TUPLE-REF]", GumboOptions().without(tuple_reference=False)),
            (
                "GREEDY[INPUT-REDUCERS]",
                GumboOptions().without(reducers_by_intermediate=False),
            ),
            ("GREEDY[ALL-OFF]", GumboOptions.all_disabled()),
        ]
        for label, options in variants:
            _run_variant(
                result, environment, query_id, label, options, database, queries
            )
        # Cost-model choice ablation (plan structure may differ).
        _run_variant(
            result,
            environment,
            query_id,
            "GREEDY[WANG-COST]",
            GumboOptions(),
            database,
            queries,
            cost_model="wang",
        )
    return result
