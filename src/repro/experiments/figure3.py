"""Experiment E1 — Figure 3: BSGF queries A1–A5 under all evaluation strategies.

Reproduces both panels of Figure 3: absolute net time, total time, HDFS input
and communication for the strategies SEQ, PAR, GREEDY, HPAR, HPARS and PPAR
on queries A1–A5, plus the 1-ROUND strategy on A3 (the only A-query where it
applies), and the same values relative to SEQ.

Expected shape (paper, Section 5.2): PAR and GREEDY have the lowest net
times; PAR pays for it with much higher total time; GREEDY recovers most of
that for the queries with sharing (A1, A2, A3, A5); Hive and Pig are worse
than Gumbo's parallel strategies on every metric; 1-ROUND dominates on A3.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.fused import one_round_applicable
from ..workloads.queries import bsgf_query_set, database_for
from ..workloads.scaling import ScaledEnvironment
from .results import ExperimentResult
from .runner import ExperimentRunner

#: Strategy line-up of Figure 3.
FIGURE3_STRATEGIES = ("seq", "par", "greedy", "hpar", "hpars", "ppar")

#: Queries of the experiment.
FIGURE3_QUERIES = ("A1", "A2", "A3", "A4", "A5")


def run_figure3(
    environment: Optional[ScaledEnvironment] = None,
    query_ids: Sequence[str] = FIGURE3_QUERIES,
    strategies: Sequence[str] = FIGURE3_STRATEGIES,
    include_one_round: bool = True,
    selectivity: float = 0.5,
    seed: int = 1,
    runner: Optional[ExperimentRunner] = None,
) -> ExperimentResult:
    """Run the Figure 3 experiment and return its records."""
    runner = runner or ExperimentRunner(environment)
    env = runner.environment
    result = ExperimentResult(
        name="Figure 3",
        description="BSGF queries A1-A5 under SEQ/PAR/GREEDY/HPAR/HPARS/PPAR (+1-ROUND)",
        baseline_strategy="seq",
    )
    for query_id in query_ids:
        queries = bsgf_query_set(query_id)
        database = database_for(
            queries,
            guard_tuples=env.workload.guard_tuples,
            conditional_tuples=env.workload.conditional_tuples,
            selectivity=selectivity,
            seed=seed,
        )
        result.extend(runner.run_matrix(query_id, queries, strategies, database))
        if include_one_round and all(one_round_applicable(q) for q in queries):
            result.add(runner.run_strategy(query_id, queries, "1-round", database))
    return result
