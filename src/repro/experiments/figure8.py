"""Experiment E8 — Figure 8: varying the number of conditional atoms (query size).

The A3-style query is grown from 2 to 16 conditional atoms, all sharing the
guard's first attribute as join key.  Expected shape (Section 5.4): SEQ's net
time grows roughly linearly with the number of atoms (one more round per
atom) while PAR, GREEDY and 1-ROUND stay nearly flat; PAR's total time grows
fastest because it cannot benefit from message packing the way GREEDY and
1-ROUND do.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..workloads.queries import a3_family, database_for
from ..workloads.scaling import ScaledEnvironment
from .results import ExperimentResult
from .runner import ExperimentRunner

FIGURE8_STRATEGIES = ("seq", "par", "greedy", "1-round")
FIGURE8_ATOM_COUNTS = (2, 4, 8, 12, 16)


def run_figure8(
    environment: Optional[ScaledEnvironment] = None,
    atom_counts: Sequence[int] = FIGURE8_ATOM_COUNTS,
    strategies: Sequence[str] = FIGURE8_STRATEGIES,
    selectivity: float = 0.5,
    seed: int = 8,
    runner: Optional[ExperimentRunner] = None,
) -> ExperimentResult:
    """Run the Figure 8 experiment and return its records."""
    runner = runner or ExperimentRunner(environment)
    env = runner.environment
    result = ExperimentResult(
        name="Figure 8",
        description="Varying the number of conditional atoms (2-16), A3-style query",
    )
    for atoms in atom_counts:
        queries = a3_family(atoms)
        database = database_for(
            queries,
            guard_tuples=env.workload.guard_tuples,
            conditional_tuples=env.workload.conditional_tuples,
            selectivity=selectivity,
            seed=seed,
        )
        label = f"{atoms}atoms"
        for strategy in strategies:
            record = runner.run_strategy(label, queries, strategy, database)
            record.extra["conditional_atoms"] = float(atoms)
            result.add(record)
    return result
