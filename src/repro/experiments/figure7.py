"""Experiments E5–E7 — Figure 7: system characteristics of Gumbo.

Three sweeps over the A3-style query (all conditional atoms on one key):

* 7a — growing data size on a fixed 10-node cluster;
* 7b — growing cluster size on a fixed 800 M-tuple dataset;
* 7c — growing data and cluster size together.

Expected shape (Section 5.4): 1-ROUND is best everywhere; PAR's lack of
grouping eventually exceeds the cluster's map capacity and its net time blows
up as data grows; adding nodes helps the parallel strategies but not SEQ;
scaling data and nodes together keeps net times flat while total time grows.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..workloads.queries import a3_family, database_for
from ..workloads.scaling import ScaledEnvironment
from .results import ExperimentResult
from .runner import ExperimentRunner

FIGURE7_STRATEGIES = ("seq", "par", "greedy", "1-round")

#: Paper data sizes, expressed in guard tuples (they are scaled by the environment).
FIGURE7A_DATA_SIZES = (200_000_000, 400_000_000, 800_000_000, 1_600_000_000)
FIGURE7B_NODES = (5, 10, 20)
FIGURE7B_DATA_SIZE = 800_000_000
FIGURE7C_COMBINED: Tuple[Tuple[int, int], ...] = (
    (200_000_000, 5),
    (400_000_000, 10),
    (800_000_000, 20),
)

#: Number of conditional atoms of the A3-style query used in the sweeps.
FIGURE7_ATOMS = 4


def _run_point(
    runner: ExperimentRunner,
    result: ExperimentResult,
    label: str,
    environment: ScaledEnvironment,
    guard_tuples: int,
    strategies: Sequence[str],
    selectivity: float,
    seed: int,
) -> None:
    queries = a3_family(FIGURE7_ATOMS)
    database = database_for(
        queries,
        guard_tuples=max(1, int(round(guard_tuples * environment.scale))),
        selectivity=selectivity,
        seed=seed,
    )
    for strategy in strategies:
        record = runner.run_strategy(
            label, queries, strategy, database, environment=environment
        )
        record.extra["nodes"] = float(environment.nodes)
        record.extra["paper_tuples_millions"] = guard_tuples / 1e6
        result.add(record)


def run_figure7a(
    environment: Optional[ScaledEnvironment] = None,
    data_sizes: Sequence[int] = FIGURE7A_DATA_SIZES,
    strategies: Sequence[str] = FIGURE7_STRATEGIES,
    selectivity: float = 0.5,
    seed: int = 7,
    runner: Optional[ExperimentRunner] = None,
) -> ExperimentResult:
    """Figure 7a: varying data size on a 10-node cluster."""
    runner = runner or ExperimentRunner(environment)
    base_env = runner.environment
    result = ExperimentResult(
        name="Figure 7a",
        description="Varying data size (10 nodes), A3-style query",
    )
    for size in data_sizes:
        label = f"{int(size / 1e6)}M"
        _run_point(runner, result, label, base_env, size, strategies, selectivity, seed)
    return result


def run_figure7b(
    environment: Optional[ScaledEnvironment] = None,
    nodes: Sequence[int] = FIGURE7B_NODES,
    data_size: int = FIGURE7B_DATA_SIZE,
    strategies: Sequence[str] = FIGURE7_STRATEGIES,
    selectivity: float = 0.5,
    seed: int = 7,
    runner: Optional[ExperimentRunner] = None,
) -> ExperimentResult:
    """Figure 7b: varying cluster size on an 800M-tuple dataset."""
    runner = runner or ExperimentRunner(environment)
    base_env = runner.environment
    result = ExperimentResult(
        name="Figure 7b",
        description="Varying cluster size (800M tuples), A3-style query",
    )
    for node_count in nodes:
        env = base_env.with_nodes(node_count)
        label = f"{node_count}nodes"
        _run_point(runner, result, label, env, data_size, strategies, selectivity, seed)
    return result


def run_figure7c(
    environment: Optional[ScaledEnvironment] = None,
    combined: Sequence[Tuple[int, int]] = FIGURE7C_COMBINED,
    strategies: Sequence[str] = FIGURE7_STRATEGIES,
    selectivity: float = 0.5,
    seed: int = 7,
    runner: Optional[ExperimentRunner] = None,
) -> ExperimentResult:
    """Figure 7c: scaling data and cluster size together."""
    runner = runner or ExperimentRunner(environment)
    base_env = runner.environment
    result = ExperimentResult(
        name="Figure 7c",
        description="Varying data and cluster size together, A3-style query",
    )
    for data_size, node_count in combined:
        env = base_env.with_nodes(node_count)
        label = f"{int(data_size / 1e6)}M/{node_count}"
        _run_point(runner, result, label, env, data_size, strategies, selectivity, seed)
    return result
