"""Textual reporting of experiment results.

The benchmark harness prints the same kinds of tables the paper's figures
show: absolute metrics per (query, strategy) and metrics relative to a
reference strategy (SEQ in Figures 3/4, SEQUNIT in Figure 5).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .runner import RunRecord


def format_table(rows: Sequence[Dict[str, object]], title: str = "") -> str:
    """Render a list of dictionaries as a fixed-width text table."""
    rows = list(rows)
    if not rows:
        return f"{title}\n(no data)\n" if title else "(no data)\n"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    widths = {
        column: max(len(str(column)), *(len(str(row.get(column, ""))) for row in rows))
        for column in columns
    }
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(str(c).ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[c] for c in columns))
    for row in rows:
        lines.append(
            " | ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns)
        )
    return "\n".join(lines) + "\n"


def records_table(records: Sequence[RunRecord], title: str = "") -> str:
    """Absolute-metrics table (Figure 3a style)."""
    return format_table([record.as_dict() for record in records], title)


def relative_table(
    records: Sequence[RunRecord],
    baseline_strategy: str,
    title: str = "",
) -> str:
    """Metrics relative to *baseline_strategy*, per query (Figure 3b style)."""
    baseline_strategy = baseline_strategy.upper()
    by_query: Dict[str, List[RunRecord]] = {}
    for record in records:
        by_query.setdefault(record.query_id, []).append(record)
    rows: List[Dict[str, object]] = []
    for query_id, group in by_query.items():
        baseline = next(
            (r for r in group if r.strategy == baseline_strategy), None
        )
        if baseline is None:
            continue
        for record in group:
            relative = record.relative_to(baseline)
            rows.append(
                {
                    "query": query_id,
                    "strategy": record.strategy,
                    "net_time_%": f"{relative['net_time_pct']:.0f}%",
                    "total_time_%": f"{relative['total_time_pct']:.0f}%",
                    "input_%": f"{relative['input_pct']:.0f}%",
                    "communication_%": f"{relative['communication_pct']:.0f}%",
                }
            )
    return format_table(rows, title)


def averages_by_strategy(
    records: Sequence[RunRecord], baseline_strategy: str
) -> Dict[str, Dict[str, float]]:
    """Average relative metrics per strategy (the paper's "on average" claims)."""
    baseline_strategy = baseline_strategy.upper()
    by_query: Dict[str, List[RunRecord]] = {}
    for record in records:
        by_query.setdefault(record.query_id, []).append(record)
    sums: Dict[str, Dict[str, float]] = {}
    counts: Dict[str, int] = {}
    for group in by_query.values():
        baseline = next((r for r in group if r.strategy == baseline_strategy), None)
        if baseline is None:
            continue
        for record in group:
            relative = record.relative_to(baseline)
            bucket = sums.setdefault(
                record.strategy,
                {key: 0.0 for key in relative},
            )
            for key, value in relative.items():
                bucket[key] += value
            counts[record.strategy] = counts.get(record.strategy, 0) + 1
    return {
        strategy: {key: value / counts[strategy] for key, value in bucket.items()}
        for strategy, bucket in sums.items()
    }
