"""Experiment E2 — Figure 4: the large BSGF queries B1 and B2.

B1 is a 16-atom conjunctive query whose deep sequential plan makes SEQ very
slow in net time; B2 is the "uniqueness" query whose disjunctive structure
lets even SEQ parallelise its four conjunctive branches.  The expected shape
(Section 5.2, "Large Queries"): PAR slashes B1's net time but multiplies its
total time; GREEDY keeps PAR's net time at roughly SEQ's total time; for B2
every parallel strategy wins on both metrics and 1-ROUND wins outright.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.fused import one_round_applicable
from ..workloads.queries import bsgf_query_set, database_for
from ..workloads.scaling import ScaledEnvironment
from .results import ExperimentResult
from .runner import ExperimentRunner

FIGURE4_STRATEGIES = ("seq", "par", "greedy", "hpar", "hpars", "ppar")
FIGURE4_QUERIES = ("B1", "B2")


def run_figure4(
    environment: Optional[ScaledEnvironment] = None,
    query_ids: Sequence[str] = FIGURE4_QUERIES,
    strategies: Sequence[str] = FIGURE4_STRATEGIES,
    include_one_round: bool = True,
    selectivity: float = 0.5,
    seed: int = 2,
    runner: Optional[ExperimentRunner] = None,
) -> ExperimentResult:
    """Run the Figure 4 experiment and return its records."""
    runner = runner or ExperimentRunner(environment)
    env = runner.environment
    result = ExperimentResult(
        name="Figure 4",
        description="Large BSGF queries B1 and B2",
        baseline_strategy="seq",
    )
    for query_id in query_ids:
        queries = bsgf_query_set(query_id)
        database = database_for(
            queries,
            guard_tuples=env.workload.guard_tuples,
            conditional_tuples=env.workload.conditional_tuples,
            selectivity=selectivity,
            seed=seed,
        )
        result.extend(runner.run_matrix(query_id, queries, strategies, database))
        if include_one_round and all(one_round_applicable(q) for q in queries):
            result.add(runner.run_strategy(query_id, queries, "1-round", database))
    return result
