"""The unified client API: ``repro.connect()`` → :class:`Connection`.

Historically each layer had its own entry point with its own result type:
:class:`~repro.core.gumbo.Gumbo` returned ``GumboResult``, the query service
returned ``ServiceResult``, incremental refreshes returned ``DeltaResult``.
:func:`connect` is the one front door now — it accepts anything that can
describe a database (a :class:`~repro.model.database.Database`, a plain
name→rows mapping, or a CSV directory path), selects any execution backend
(``serial``/``parallel``/``sql``/``sharded``) by name, and returns a
:class:`Connection` whose every query comes back as the single
:class:`Result` type::

    import repro

    with repro.connect({"R": [(1, 2)], "S": [(1,)]}) as conn:
        result = conn.execute("Z := SELECT (x, y) FROM R(x, y) WHERE S(x);")
        result.tuples()            # {(1, 2)}
        result.strategy            # "greedy"

    # The sharded persistent tier, same API:
    with repro.connect(db, backend="sharded", shards=4) as conn:
        conn.execute(query)

Under the hood a :class:`Connection` is a thin veneer over the plan-caching
:class:`~repro.service.service.QueryService`, so repeated queries hit the
plan cache, materializations are maintained incrementally by
:meth:`Connection.refresh`, and failures are counted in the service stats.
The older entry points (``Gumbo``, ``QueryService``) keep working unchanged
— see their docstrings — but new code should start here.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple, Union

from .core.config import ExecutionConfig
from .core.options import GumboOptions
from .core.strategies import AUTO
from .mapreduce.counters import ProgramMetrics
from .model.database import Database
from .model.relation import Relation
from .service.service import QueryService, ServiceResult

#: Anything :func:`connect` accepts as the database: a built Database, a
#: name→rows mapping, or a directory path of CSV/TSV files.
DatabaseLike = Union[Database, Mapping[str, Sequence[tuple]], str]


class Result:
    """The one result type of the client API.

    Wraps a served query uniformly, whatever backend or cache path produced
    it: output relations, the strategy that ran, the simulated metrics, and
    the serving-layer facts (plan-cache hit, timings, fingerprint).
    """

    def __init__(self, served: ServiceResult) -> None:
        self._served = served

    # -- outputs -----------------------------------------------------------------

    @property
    def outputs(self) -> Dict[str, Relation]:
        """All output relations, keyed by name."""
        return self._served.outputs

    def output(self, name: Optional[str] = None) -> Relation:
        """One output relation (the single output when *name* is omitted)."""
        outputs = self.outputs
        if name is None:
            if len(outputs) != 1:
                raise ValueError(
                    f"query has {len(outputs)} outputs "
                    f"({', '.join(sorted(outputs))}); pass a name"
                )
            return next(iter(outputs.values()))
        return outputs[name]

    def tuples(self, name: Optional[str] = None) -> frozenset:
        """The tuples of one output relation, as a frozenset."""
        return frozenset(self.output(name).tuples())

    # -- provenance --------------------------------------------------------------

    @property
    def strategy(self) -> str:
        """The strategy that actually ran (AUTO resolves to its winner)."""
        return self._served.strategy

    @property
    def backend(self) -> str:
        """The execution backend that produced the result."""
        return self._served.metrics.backend

    @property
    def metrics(self) -> ProgramMetrics:
        """The simulated MapReduce metrics of the execution."""
        return self._served.metrics

    @property
    def fingerprint(self) -> str:
        """The (query, schema, database-version) fingerprint served."""
        return self._served.fingerprint

    @property
    def plan_cached(self) -> bool:
        """True when planning was skipped (plan cache or materialization)."""
        return self._served.plan_cached

    @property
    def plan_s(self) -> float:
        """Planning wall time (0.0 on a cache hit)."""
        return self._served.plan_s

    @property
    def exec_s(self) -> float:
        """Execution wall time."""
        return self._served.exec_s

    @property
    def service_result(self) -> ServiceResult:
        """The underlying service-layer result (escape hatch)."""
        return self._served

    def __repr__(self) -> str:
        sizes = ", ".join(
            f"{name}={len(relation)}" for name, relation in sorted(self.outputs.items())
        )
        return (
            f"Result(strategy={self.strategy!r}, backend={self.backend!r}, "
            f"plan_cached={self.plan_cached}, outputs[{sizes}])"
        )


class Connection:
    """A connection to one database on one execution backend.

    Built by :func:`connect`; a veneer over the plan-caching
    :class:`~repro.service.service.QueryService` (available as
    :attr:`service` for anything the facade does not surface).
    """

    def __init__(self, service: QueryService, config: ExecutionConfig) -> None:
        self.service = service
        self.config = config
        self._closed = False

    # -- serving -----------------------------------------------------------------

    def execute(self, query, strategy: Optional[str] = None) -> Result:
        """Evaluate *query* (text or a parsed query) and return its Result."""
        return Result(self.service.execute(query, strategy))

    def execute_many(
        self, queries: Iterable[object], strategy: Optional[str] = None
    ) -> Tuple[Result, ...]:
        """Evaluate a batch concurrently; failures raise after the batch
        completes (see :meth:`QueryService.execute_many
        <repro.service.service.QueryService.execute_many>` for the
        failure-collecting form)."""
        batch = self.service.execute_many(queries, strategy)
        if batch.failures:
            raise batch.failures[0].exception
        return tuple(Result(served) for served in batch.results)

    def materialize(self, query, strategy: Optional[str] = None) -> Result:
        """Evaluate *query* and keep its result maintained incrementally:
        subsequent :meth:`execute` calls serve it without re-running, and
        :meth:`refresh` updates it in place."""
        return Result(self.service.materialize(query, strategy))

    def refresh(
        self, relation: str, rows: Iterable[Sequence[object]]
    ) -> int:
        """Insert *rows* into *relation* and incrementally refresh every
        materialized result (no plan/statistics invalidation).

        Returns the number of materializations refreshed.
        """
        deltas = self.service.add_tuples(relation, rows, incremental=True)
        return len(deltas or ())

    # -- introspection -----------------------------------------------------------

    @property
    def database(self) -> Database:
        """The database served by this connection."""
        return self.service.database

    @property
    def backend(self) -> str:
        """Canonical name of the execution backend."""
        return self.service.gumbo.backend.name

    def stats(self):
        """The service's serving-layer counters (ServiceStats)."""
        return self.service.stats()

    # -- lifecycle ---------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release the backend (worker pools / shard processes); idempotent."""
        if not self._closed:
            self._closed = True
            self.service.close()

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"Connection(backend={self.backend!r}, "
            f"relations={len(list(self.database))}, {state})"
        )


def connect(
    database: DatabaseLike,
    *,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    sql_db: Optional[str] = None,
    data_plane: Optional[str] = None,
    strategy: str = AUTO,
    plan_cache_size: int = 256,
    max_workers: int = 4,
    options: Optional[GumboOptions] = None,
    config: Optional[ExecutionConfig] = None,
) -> Connection:
    """Open a :class:`Connection` to *database* on the chosen backend.

    Parameters
    ----------
    database:
        A :class:`~repro.model.database.Database`, a name→rows mapping
        (built with ``Database.from_dict``), or a directory path of CSV/TSV
        files (loaded with :func:`repro.io.load_database`).
    backend:
        ``"serial"`` (default), ``"parallel"``, ``"sql"`` or ``"sharded"``
        — or any accepted alias.
    workers / shards / sql_db / data_plane:
        The backend knobs (parallel pool size, persistent shard count,
        sqlite scratch path, shared-memory vs pickle chunk shipping), as in
        :class:`~repro.core.config.ExecutionConfig`.
    strategy:
        Default plan strategy for queries that do not name one
        (default ``"auto"``: cost-based selection).
    plan_cache_size:
        Plans cached by the underlying service (0 disables caching).
    max_workers:
        Thread-pool size for concurrent :meth:`Connection.execute_many`.
    options:
        Full :class:`~repro.core.options.GumboOptions` override (mutually
        exclusive with the individual backend knobs above).
    config:
        Full :class:`~repro.core.config.ExecutionConfig` override (mutually
        exclusive with both *options* and the individual knobs).

    Returns
    -------
    Connection
        Use as a context manager so worker pools and shard processes are
        released deterministically.
    """
    if isinstance(database, str):
        from .io import load_database

        database = load_database(database)
    elif not isinstance(database, Database):
        database = Database.from_dict(database)
    if config is not None:
        if (
            options is not None
            or backend is not None
            or workers
            or shards
            or sql_db
            or data_plane
        ):
            raise ValueError(
                "pass either config= or the individual "
                "backend/workers/shards/sql_db/data_plane/options knobs, not both"
            )
    elif options is not None:
        if workers or shards or sql_db or data_plane:
            raise ValueError(
                "pass either options= or the individual "
                "workers/shards/sql_db/data_plane knobs, not both"
            )
        config = ExecutionConfig(
            backend=backend or options.backend,
            workers=options.workers,
            shards=options.shards,
            sql_db=options.sql_db,
            data_plane=options.data_plane,
            kernel_mode=options.kernel_mode,
            strategy=strategy,
            message_packing=options.message_packing,
            tuple_reference=options.tuple_reference,
            reducers_by_intermediate=options.reducers_by_intermediate,
            fuse_one_round=options.fuse_one_round,
            trace=options.trace,
        )
    else:
        config = ExecutionConfig(
            backend=backend or "serial",
            workers=workers,
            shards=shards,
            sql_db=sql_db,
            data_plane=data_plane or "auto",
            strategy=strategy,
        )
    service = QueryService(
        database,
        strategy=strategy,
        plan_cache_size=plan_cache_size,
        max_workers=max_workers,
        config=config,
    )
    return Connection(service, config)
