"""repro — a reproduction of "Parallel Evaluation of Multi-Semi-Joins" (Daenen et al., 2016).

The package implements the Gumbo system described in the paper: the
multi-semi-join MapReduce operator (MSJ), the EVAL job for Boolean
combinations, the per-partition MapReduce cost model, the greedy plan
optimisers ``Greedy-BSGF`` and ``Greedy-SGF``, the SEQ / PAR / GREEDY /
1-ROUND evaluation strategies, and simulated Pig/Hive baselines — all on top
of an in-process MapReduce simulator standing in for the paper's Hadoop
cluster.

Quick start
-----------
>>> import repro
>>> with repro.connect(
...     {"R": [(1, 2), (3, 4)], "S": [(1,)], "T": [(4,)]}
... ) as conn:
...     result = conn.execute(
...         "Z := SELECT (x, y) FROM R(x, y) WHERE S(x) OR T(y);"
...     )
...     sorted(result.tuples())
[(1, 2), (3, 4)]

:func:`connect` is the unified client API (see :mod:`repro.client`): one
``Connection`` with ``execute``/``materialize``/``refresh``/``close``, one
``Result`` type, every backend selectable by name.  The layer-specific entry
points (:class:`Gumbo`, :class:`QueryService <repro.service.QueryService>`)
remain fully supported underneath it.

Execution backends
------------------
Plans run on a pluggable execution backend (:mod:`repro.exec`): ``"serial"``
executes every task in-process on the simulator (the default), ``"parallel"``
fans map tasks and reduce partitions out across a true ``multiprocessing``
worker pool, ``"sql"`` compiles jobs to sqlite3, and ``"sharded"`` serves
from long-lived worker processes each holding a hash-partitioned shard of
the database warm (see :mod:`repro.service.sharded` and ``docs/service.md``)
— same outputs, same simulated metrics on every backend, plus measured
wall-clock times.  Select one with ``repro.connect(db, backend="sharded",
shards=4)``, per :class:`Gumbo` instance (``Gumbo(backend="parallel",
workers=4)``), through :class:`GumboOptions(backend=...) <GumboOptions>`, or
on the command line with ``repro query --backend parallel --workers 4``;
``repro bench`` compares the backends head to head.
"""

from .client import Connection, Result, connect
from .core.config import ExecutionConfig
from .core.dynamic import DynamicSGFExecutor
from .core.gumbo import Gumbo, GumboResult, PlannedQuery
from .core.msj import MSJJob, multi_semi_join
from .core.options import GumboOptions
from .core.strategies import AUTO, StrategyChoice, choose_strategy
from .core.skew import SkewAwareMSJJob, detect_heavy_hitters
from .cost.constants import CostConstants, HadoopSettings
from .cost.models import GumboCostModel, WangCostModel
from .exec import ExecutionBackend, ParallelBackend, SimulatedBackend, make_backend
from .fuzz import DifferentialOracle, FuzzConfig, FuzzOptions, run_fuzz
from .incremental import DeltaResult, IncrementalError, Materialization
from .io import load_database, load_relation, save_database, save_relation
from .mapreduce.cluster import ClusterConfig
from .mapreduce.engine import MapReduceEngine
from .model.atoms import Atom, Fact
from .model.database import Database
from .model.relation import Relation
from .model.terms import Constant, Variable
from .query.bsgf import BSGFQuery
from .query.parser import parse_bsgf, parse_sgf
from .query.reference import evaluate_bsgf, evaluate_sgf
from .query.sgf import SGFQuery
from .service import BatchResult, QueryService, ServiceResult, query_fingerprint

__version__ = "1.0.0"

__all__ = [
    "AUTO",
    "Atom",
    "BatchResult",
    "BSGFQuery",
    "ClusterConfig",
    "Connection",
    "Constant",
    "CostConstants",
    "Database",
    "ExecutionConfig",
    "DeltaResult",
    "DifferentialOracle",
    "DynamicSGFExecutor",
    "IncrementalError",
    "Materialization",
    "ExecutionBackend",
    "Fact",
    "FuzzConfig",
    "FuzzOptions",
    "Gumbo",
    "GumboCostModel",
    "GumboOptions",
    "GumboResult",
    "PlannedQuery",
    "QueryService",
    "Result",
    "ServiceResult",
    "StrategyChoice",
    "HadoopSettings",
    "MSJJob",
    "MapReduceEngine",
    "ParallelBackend",
    "Relation",
    "SGFQuery",
    "SimulatedBackend",
    "SkewAwareMSJJob",
    "Variable",
    "WangCostModel",
    "__version__",
    "choose_strategy",
    "connect",
    "detect_heavy_hitters",
    "evaluate_bsgf",
    "evaluate_sgf",
    "load_database",
    "load_relation",
    "make_backend",
    "multi_semi_join",
    "parse_bsgf",
    "parse_sgf",
    "query_fingerprint",
    "run_fuzz",
    "save_database",
    "save_relation",
]
