"""Loading and saving relations as CSV/TSV files.

The simulator operates on in-memory :class:`~repro.model.database.Database`
objects; this module provides the thin file layer a downstream user needs to
run Gumbo over their own data from the command line:

* :func:`load_relation` / :func:`save_relation` — one relation per file, one
  tuple per line;
* :func:`load_database` / :func:`save_database` — a directory with one
  ``<RelationName>.csv`` file per relation.

Values are parsed back into ``int`` / ``float`` where possible so that data
written by :func:`save_database` round-trips exactly.
"""

from __future__ import annotations

import csv
import os
from typing import Dict, Iterable, List, Optional, Tuple, Union

from .model.database import Database
from .model.relation import DEFAULT_BYTES_PER_FIELD, Relation

#: File extensions recognised by :func:`load_database`.
_EXTENSIONS = (".csv", ".tsv", ".txt")


class DataFormatError(ValueError):
    """Raised when a data file cannot be interpreted as a relation."""


def _parse_value(text: str) -> object:
    """Parse a CSV field: int if possible, else float, else the raw string."""
    stripped = text.strip()
    try:
        return int(stripped)
    except ValueError:
        pass
    try:
        return float(stripped)
    except ValueError:
        pass
    return stripped


def _delimiter_for(path: str, delimiter: Optional[str]) -> str:
    if delimiter is not None:
        return delimiter
    return "\t" if path.endswith(".tsv") else ","


def load_relation(
    path: str,
    name: Optional[str] = None,
    delimiter: Optional[str] = None,
    has_header: bool = False,
    bytes_per_field: int = DEFAULT_BYTES_PER_FIELD,
) -> Relation:
    """Load one relation from a CSV/TSV file.

    The relation name defaults to the file's base name without extension; the
    arity is inferred from the first row and every row must agree with it.
    """
    relation_name = name or os.path.splitext(os.path.basename(path))[0]
    rows: List[Tuple[object, ...]] = []
    with open(path, newline="") as handle:
        reader = csv.reader(handle, delimiter=_delimiter_for(path, delimiter))
        for index, raw in enumerate(reader):
            if not raw or all(not field.strip() for field in raw):
                continue
            if index == 0 and has_header:
                continue
            rows.append(tuple(_parse_value(field) for field in raw))
    if not rows:
        raise DataFormatError(f"{path!r} contains no data rows")
    arity = len(rows[0])
    for row in rows:
        if len(row) != arity:
            raise DataFormatError(
                f"{path!r} has rows of differing arity ({len(row)} vs {arity})"
            )
    return Relation.from_tuples(
        relation_name, rows, arity=arity, bytes_per_field=bytes_per_field
    )


def save_relation(
    relation: Relation, path: str, delimiter: Optional[str] = None
) -> None:
    """Write *relation* to *path*, one tuple per line, in a deterministic order."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle, delimiter=_delimiter_for(path, delimiter))
        for row in relation.sorted_tuples():
            writer.writerow(row)


def load_database(
    source: Union[str, Dict[str, str]],
    delimiter: Optional[str] = None,
    has_header: bool = False,
    bytes_per_field: int = DEFAULT_BYTES_PER_FIELD,
) -> Database:
    """Load a database from a directory of CSV files or a name→path mapping.

    When *source* is a directory, every file with a recognised extension
    becomes one relation named after the file.
    """
    if isinstance(source, str):
        if not os.path.isdir(source):
            raise DataFormatError(f"{source!r} is not a directory")
        mapping = {
            os.path.splitext(entry)[0]: os.path.join(source, entry)
            for entry in sorted(os.listdir(source))
            if entry.endswith(_EXTENSIONS)
        }
        if not mapping:
            raise DataFormatError(f"no data files found in {source!r}")
    else:
        mapping = dict(source)
    database = Database()
    for name, path in mapping.items():
        database.add_relation(
            load_relation(
                path,
                name=name,
                delimiter=delimiter,
                has_header=has_header,
                bytes_per_field=bytes_per_field,
            )
        )
    return database


def save_database(
    database: Database,
    directory: str,
    extension: str = ".csv",
    names: Optional[Iterable[str]] = None,
) -> List[str]:
    """Write every relation of *database* into *directory*; returns the paths."""
    os.makedirs(directory, exist_ok=True)
    selected = list(names) if names is not None else database.relation_names()
    paths = []
    for name in selected:
        path = os.path.join(directory, f"{name}{extension}")
        save_relation(database[name], path)
        paths.append(path)
    return paths
