"""The MapReduce job abstraction executed by the simulator.

An MR job is a pair (map, reduce) of functions (Section 3.2).  Concrete jobs
(MSJ, EVAL, the fused 1-ROUND job, the Hive/Pig baseline jobs, …) subclass
:class:`MapReduceJob` and implement:

* :meth:`MapReduceJob.input_relations` — the relations read from HDFS;
* :meth:`MapReduceJob.map` — per input row, emit ``(key, value)`` pairs;
* :meth:`MapReduceJob.reduce` — per key group, emit ``(relation, row)`` output
  facts;
* :meth:`MapReduceJob.output_schema` — name → arity of the produced relations;
* the byte-accounting hooks :meth:`key_bytes` / :meth:`value_bytes`, so the
  simulator can charge the cost model with realistic intermediate data sizes
  (including Hadoop's 16-byte per-record metadata, which is added by the
  engine, not here);
* optionally :meth:`combine` — a map-side combiner modelling Gumbo's *message
  packing* optimisation.

Values emitted by ``map`` may be arbitrary Python objects; objects exposing a
``size_bytes()`` method (like the MSJ messages) are sized through it by the
default :meth:`value_bytes`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .cluster import ClusterConfig

#: A map-output key: any hashable value (tuples of data values in practice).
Key = Tuple[object, ...]

#: Output of the reduce function: (output relation name, tuple).
OutputFact = Tuple[str, Tuple[object, ...]]

#: Reducer-allocation policies (Section 5.1 opt. 3 vs the Pig default).
REDUCERS_BY_INTERMEDIATE = "intermediate"   # Gumbo: 256 MB of map output per reducer
REDUCERS_BY_INPUT = "input"                 # Pig: 1 GB of map input per reducer


class MapReduceJob:
    """Base class for simulated MapReduce jobs."""

    #: Default per-field size (bytes) used when sizing plain tuple values.
    bytes_per_field: int = 10

    #: How the number of reducers is chosen (see module docstring).
    reducer_allocation: str = REDUCERS_BY_INTERMEDIATE

    #: Fixed number of reducers; overrides the allocation policy when set.
    fixed_reducers: Optional[int] = None

    def __init__(self, job_id: str) -> None:
        if not job_id:
            raise ValueError("job_id must be non-empty")
        self.job_id = job_id

    # -- interface to implement ------------------------------------------------

    def input_relations(self) -> Sequence[str]:
        """Names of the relations this job reads from HDFS."""
        raise NotImplementedError

    def map(self, relation: str, row: Tuple[object, ...]) -> Iterable[
        Tuple[Key, object]
    ]:
        """The map function, applied to every row of every input relation."""
        raise NotImplementedError

    def reduce(self, key: Key, values: List[object]) -> Iterable[OutputFact]:
        """The reduce function, applied to every key group."""
        raise NotImplementedError

    def output_schema(self) -> Dict[str, int]:
        """Mapping output-relation name → arity."""
        raise NotImplementedError

    # -- batch ("kernel") execution path ------------------------------------------

    def supports_kernel(self) -> bool:
        """Whether this job implements the batch kernel path faithfully.

        Kernel-capable jobs implement :meth:`map_batch` / :meth:`reduce_batch`
        and return True; the engine then evaluates the job set-at-a-time
        (subject to the ``kernel_mode`` option, see
        :mod:`repro.mapreduce.kernels`) while reproducing the interpreted
        path's outputs and simulated metrics bit for bit.  Subclasses that
        change ``map``/``reduce`` semantics (e.g. the skew-salted MSJ job)
        must override this back to False unless they also override the batch
        methods.
        """
        return False

    def map_batch(self, relation: str, chunks: Sequence[Sequence[Tuple[object, ...]]]):
        """Kernelised map phase over one input partition's map-task chunks.

        Returns a :class:`~repro.mapreduce.kernels.MapBatch`.  Only called
        when :meth:`supports_kernel` is True.
        """
        raise NotImplementedError(f"{type(self).__name__} has no batch kernel")

    def reduce_batch(self, batches) -> Dict[str, Iterable[Tuple[object, ...]]]:
        """Kernelised reduce phase over the partitions' :class:`MapBatch` data.

        Returns ``{output relation name: iterable of rows}``.  Only called
        when :meth:`supports_kernel` is True.
        """
        raise NotImplementedError(f"{type(self).__name__} has no batch kernel")

    # -- SQL execution path -----------------------------------------------------

    def supports_sql(self) -> bool:
        """Whether this job can compile itself to SQL faithfully.

        SQL-capable jobs implement :meth:`to_sql` and return True; the SQL
        backend then runs the job as sqlite3 queries (see
        :mod:`repro.exec.sql`) while reproducing the interpreted path's
        outputs and simulated metrics bit for bit.  Subclasses that change
        ``map``/``reduce`` semantics (e.g. the skew-salted MSJ job) must
        override this back to False unless they also override the plan.
        """
        return False

    def to_sql(self):
        """The job's SQL plan (see :mod:`repro.exec.sql.compiler`).

        Only called when :meth:`supports_sql` is True.  May raise
        :class:`~repro.exec.sql.codec.SQLUnsupportedValueError` for job
        instances whose shape the compiler cannot translate; the SQL backend
        then falls back to the interpreted engine.
        """
        raise NotImplementedError(f"{type(self).__name__} has no SQL plan")

    def __getstate__(self) -> Dict[str, object]:
        """Drop per-process kernel/SQL caches when shipping jobs to workers."""
        state = self.__dict__.copy()
        state.pop("_kernel_cache", None)
        state.pop("_sql_cache", None)
        return state

    # -- optional hooks -----------------------------------------------------------

    def combine(self, key: Key, values: List[object]) -> List[object]:
        """Map-side combiner; the default performs no combining."""
        return values

    def uses_combiner(self) -> bool:
        """Whether the engine should invoke :meth:`combine` per map task."""
        return False

    def output_tuple_bytes(self, relation: str) -> Optional[int]:
        """Per-tuple size override for an output relation (None → arity×10)."""
        return None

    # -- byte accounting ------------------------------------------------------------

    def key_bytes(self, key: Key) -> int:
        """Size of a serialised key.  Defaults to 10 bytes per key component."""
        if isinstance(key, tuple):
            return max(1, len(key)) * self.bytes_per_field
        return self.bytes_per_field

    def value_bytes(self, value: object) -> int:
        """Size of a serialised value.

        Objects exposing ``size_bytes()`` are asked directly; tuples are sized
        at 10 bytes per field; anything else is charged a single field.
        """
        size_fn = getattr(value, "size_bytes", None)
        if callable(size_fn):
            return int(size_fn())
        if isinstance(value, tuple):
            return max(1, len(value)) * self.bytes_per_field
        return self.bytes_per_field

    def pair_bytes(self, key: Key, value: object) -> int:
        """Size of a serialised key-value pair."""
        return self.key_bytes(key) + self.value_bytes(value)

    # -- reducer allocation -----------------------------------------------------------

    def choose_reducers(
        self,
        input_mb: float,
        intermediate_mb: float,
        cluster: ClusterConfig,
        mb_per_reducer_intermediate: float,
        mb_per_reducer_input: float,
    ) -> int:
        """Number of reduce tasks for this job.

        Gumbo allocates one reducer per 256 MB of *intermediate* data
        (estimated via sampling; here we use the true value which is what the
        sampling approximates).  Pig allocates one reducer per 1 GB of map
        *input* data, which the paper identifies as a cause of its poor
        parallelism.  A fixed count can be forced via ``fixed_reducers``.
        """
        if self.fixed_reducers is not None:
            return max(1, self.fixed_reducers)
        if self.reducer_allocation == REDUCERS_BY_INPUT:
            basis, per_reducer = input_mb, mb_per_reducer_input
        else:
            basis, per_reducer = intermediate_mb, mb_per_reducer_intermediate
        if per_reducer <= 0:
            return 1
        return max(1, int(-(-basis // per_reducer)))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(job_id={self.job_id!r})"
