"""The in-process MapReduce execution engine.

This is the substrate substituting for the paper's 10-node Hadoop cluster.
It *actually executes* the map and reduce functions of every job over the
in-memory database (so results can be checked against the reference
semantics), while *charging time* with the cost model of Section 3.3 and a
wave-based slot scheduler — producing the four metrics the paper reports:
total time, net time, HDFS input bytes and mapper→reducer communication bytes.

Execution of one job proceeds exactly along Figure 1 of the paper:

1. every input relation forms one uniform part ``I_i`` of the input; its rows
   are split over ``m_i = ceil(N_i / split)`` map tasks;
2. the map function is applied per row; when the job uses a combiner (message
   packing), pairs are combined per map task before being sized;
3. intermediate pairs are grouped by key (the shuffle);
4. ``r`` reducers are allocated according to the job's policy;
5. the reduce function is applied per group and outputs are materialised as
   new relations.

Timing always uses the per-partition cost model (Equation (2)) because that
is the more faithful model of the underlying system; which cost model the
*planner* uses to choose a plan is an independent choice (experiment E3).
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from ..cost.constants import (
    CostConstants,
    GUMBO_MB_PER_REDUCER,
    PIG_INPUT_MB_PER_REDUCER,
)
from ..cost.formulas import map_cost
from ..cost.models import GumboCostModel, JobProfile
from ..exec.partition import map_task_chunks, partition_index, stable_hash
from ..model.database import Database
from ..model.relation import ColumnBlock, Relation, tuple_sort_key
from ..obs import metrics as obs_metrics
from .. import obs
from .cluster import ClusterConfig
from .counters import JobMetrics, PartitionMetrics, ProgramMetrics
from .job import Key, MapReduceJob
from .kernels import use_kernel
from .program import MRProgram
from .scheduler import makespan

_MB = 1024.0 * 1024.0

#: Backward-compatible alias; the shared implementation lives in
#: :mod:`repro.exec.partition` so every execution backend partitions
#: identically.
_stable_hash = stable_hash

#: Process-global execution counters (see :mod:`repro.obs.metrics`), created
#: once at import so per-job recording is a single locked add.  The dispatch
#: counters are bumped at the three dispatch sites (interpreted here, kernel
#: in :meth:`MapReduceEngine.run_job_kernel`, fan-out in the parallel
#: backend); the byte/row counters in :meth:`finalise_job_metrics`, which
#: every backend funnels through.
_JOBS_INTERPRETED = obs_metrics.default_registry().counter(
    "repro_jobs_total", path="interpreted"
)
_JOBS_KERNEL = obs_metrics.default_registry().counter(
    "repro_jobs_total", path="kernel"
)
_SHUFFLE_BYTES = obs_metrics.default_registry().counter(
    "repro_shuffle_bytes_total"
)
_ROWS_IN = obs_metrics.default_registry().counter("repro_rows_total", dir="in")
_ROWS_OUT = obs_metrics.default_registry().counter("repro_rows_total", dir="out")


def prepare_output_relations(job: MapReduceJob) -> Dict[str, Relation]:
    """Empty output relations for *job*, honouring its byte-size overrides."""
    outputs: Dict[str, Relation] = {}
    for name, arity in job.output_schema().items():
        override = job.output_tuple_bytes(name)
        bytes_per_field = (
            max(1, round(override / arity))
            if override
            else Relation(name, arity).bytes_per_field
        )
        outputs[name] = Relation(name, arity, bytes_per_field)
    return outputs


def add_output_fact(
    job: MapReduceJob,
    outputs: Dict[str, Relation],
    relation_name: str,
    row: Tuple[object, ...],
) -> None:
    """Materialise one reduce output fact, validating the target relation."""
    if relation_name not in outputs:
        raise KeyError(
            f"job {job.job_id!r} emitted to undeclared relation "
            f"{relation_name!r}"
        )
    outputs[relation_name].add(row)


@dataclass
class JobResult:
    """Outcome of running one job: its output relations and its metrics."""

    job_id: str
    outputs: Dict[str, Relation]
    metrics: JobMetrics


@dataclass
class ProgramResult:
    """Outcome of running an MR program."""

    program: MRProgram
    outputs: Dict[str, Relation]
    metrics: ProgramMetrics
    database: Database

    def relation(self, name: str) -> Relation:
        return self.outputs[name]


class MapReduceEngine:
    """Simulated Hadoop: executes jobs/programs and accounts costs.

    Parameters
    ----------
    cluster:
        The cluster configuration (defaults to the paper's 10-node cluster).
    constants:
        Cost constants (Table 5) used to charge time.
    mb_per_reducer_intermediate / mb_per_reducer_input:
        Reducer-allocation granularity for the two allocation policies.
    """

    def __init__(
        self,
        cluster: Optional[ClusterConfig] = None,
        constants: Optional[CostConstants] = None,
        mb_per_reducer_intermediate: float = GUMBO_MB_PER_REDUCER,
        mb_per_reducer_input: float = PIG_INPUT_MB_PER_REDUCER,
    ) -> None:
        self.cluster = cluster or ClusterConfig.paper_cluster()
        self.constants = constants or CostConstants.paper_values()
        self.cost_model = GumboCostModel(self.constants)
        self.mb_per_reducer_intermediate = mb_per_reducer_intermediate
        self.mb_per_reducer_input = mb_per_reducer_input

    # -- single job -------------------------------------------------------------

    def run_job(self, job: MapReduceJob, database: Database) -> JobResult:
        """Execute one MapReduce job against *database*.

        Kernel-capable jobs (see :mod:`repro.mapreduce.kernels`) are
        evaluated set-at-a-time through :meth:`run_job_kernel` unless their
        options say ``kernel_mode="off"``; outputs and simulated metrics are
        identical either way.
        """
        if use_kernel(job):
            return self.run_job_kernel(job, database)
        _JOBS_INTERPRETED.inc()
        with obs.span(
            "job", job_id=job.job_id, kind=type(job).__name__, path="interpreted"
        ):
            groups: Dict[Key, List[object]] = defaultdict(list)
            key_bytes: Counter = Counter()
            partition_metrics: List[PartitionMetrics] = []

            for relation_name in job.input_relations():
                with obs.span("map", relation=relation_name) as map_span:
                    partition = self._run_map_partition(
                        job, relation_name, database, groups, key_bytes
                    )
                    map_span.set(
                        mappers=partition.mappers,
                        rows=partition.input_records,
                        pairs=partition.output_records,
                    )
                partition_metrics.append(partition)

            with obs.span("reduce", groups=len(groups)):
                outputs = self._run_reduce(job, groups, database)
            metrics = self.finalise_job_metrics(
                job, partition_metrics, key_bytes, outputs
            )
        return JobResult(job_id=job.job_id, outputs=outputs, metrics=metrics)

    def run_job_kernel(self, job: MapReduceJob, database: Database) -> JobResult:
        """Execute one kernel-capable job through its batch path.

        Per input partition the job's ``map_batch`` computes the partition's
        intermediate bytes, records and per-key byte loads analytically (the
        numbers the interpreted map + combiner would have produced) together
        with the build/probe data its reduce kernel needs; ``reduce_batch``
        then materialises the outputs as set operations.  All metric
        derivation funnels through :meth:`finalise_job_metrics`, exactly as
        on the interpreted path.
        """
        _JOBS_KERNEL.inc()
        with obs.span(
            "job", job_id=job.job_id, kind=type(job).__name__, path="kernel"
        ):
            # Per-partition key loads are kept as separate dicts: the reducer
            # load accounting only ever *sums* them, so merging into one
            # Counter here would be pure overhead.
            key_bytes_parts: List[Dict[Key, int]] = []
            partition_metrics: List[PartitionMetrics] = []
            batches = []

            for relation_name in job.input_relations():
                with obs.span("map_batch", relation=relation_name) as map_span:
                    relation = database.get(relation_name)
                    if relation is not None:
                        input_records = len(relation)
                        input_mb = relation.size_mb()
                        mappers = self.mappers_for(input_mb)
                        # Columnar map-task chunks with the identical strided
                        # boundaries map_task_chunks would produce.
                        chunks = relation.column_chunks(mappers)
                    else:
                        input_records = 0
                        input_mb = 0.0
                        mappers = self.mappers_for(0.0)
                        chunks = [ColumnBlock.from_rows([])]
                    batch = job.map_batch(relation_name, chunks)
                    map_span.set(mappers=mappers, rows=input_records)
                batches.append(batch)
                key_bytes_parts.append(batch.key_bytes)
                partition_metrics.append(
                    PartitionMetrics(
                        relation=relation_name,
                        input_mb=input_mb,
                        input_records=input_records,
                        intermediate_mb=batch.intermediate_bytes / _MB,
                        output_records=batch.output_records,
                        mappers=mappers,
                    )
                )

            outputs = prepare_output_relations(job)
            with obs.span("reduce_batch"):
                for relation_name, rows in job.reduce_batch(batches).items():
                    if relation_name not in outputs:
                        raise KeyError(
                            f"job {job.job_id!r} emitted to undeclared relation "
                            f"{relation_name!r}"
                        )
                    outputs[relation_name].update(rows)
            metrics = self.finalise_job_metrics(
                job, partition_metrics, key_bytes_parts, outputs
            )
        return JobResult(job_id=job.job_id, outputs=outputs, metrics=metrics)

    # -- accounting shared with the execution backends ----------------------------

    def mappers_for(self, input_mb: float) -> int:
        """Number of map tasks for one uniform input part of *input_mb* MB."""
        return max(1, math.ceil(input_mb / self.cluster.split_mb))

    def reducers_for(
        self, job: MapReduceJob, input_mb: float, intermediate_mb: float
    ) -> int:
        """Number of reduce tasks, per the job's allocation policy."""
        return job.choose_reducers(
            input_mb=input_mb,
            intermediate_mb=intermediate_mb,
            cluster=self.cluster,
            mb_per_reducer_intermediate=self.mb_per_reducer_intermediate,
            mb_per_reducer_input=self.mb_per_reducer_input,
        )

    def finalise_job_metrics(
        self,
        job: MapReduceJob,
        partition_metrics: List[PartitionMetrics],
        key_bytes: Union[Dict[Key, int], List[Dict[Key, int]]],
        outputs: Dict[str, Relation],
    ) -> JobMetrics:
        """Assemble a job's simulated metrics from its observed phase data.

        Every execution backend funnels through this method, so the cost
        breakdown and task durations are identical however the map/reduce
        functions were actually run.  *key_bytes* maps each intermediate key
        to its total byte load — either one merged mapping or a list of
        per-partition mappings (loads are additive, so a pre-merge would be
        redundant work).
        """
        input_mb = sum(p.input_mb for p in partition_metrics)
        intermediate_mb = sum(p.intermediate_mb for p in partition_metrics)
        reducers = self.reducers_for(job, input_mb, intermediate_mb)
        output_mb = sum(rel.size_mb() for rel in outputs.values())
        output_records = sum(len(rel) for rel in outputs.values())

        metrics = JobMetrics(
            job_id=job.job_id,
            partitions=partition_metrics,
            reducers=reducers,
            output_mb=output_mb,
            output_records=output_records,
        )
        profile = JobProfile(
            partitions=metrics.map_partitions(),
            output_mb=output_mb,
            reducers=reducers,
            label=job.job_id,
        )
        metrics.breakdown = self.cost_model.job_breakdown(profile)
        metrics.map_task_durations = self._map_task_durations(metrics)
        metrics.reduce_task_durations = self._reduce_task_durations(metrics, key_bytes)
        _SHUFFLE_BYTES.inc(intermediate_mb * _MB)
        _ROWS_IN.inc(metrics.input_records)
        _ROWS_OUT.inc(output_records)
        return metrics

    def level_net_time(
        self, map_durations: List[float], reduce_durations: List[float]
    ) -> float:
        """Net time of one program level: overhead plus phase makespans."""
        slots = self.cluster.total_slots
        return (
            self.constants.job_overhead
            + makespan(map_durations, slots)
            + makespan(reduce_durations, slots)
        )

    def _run_map_partition(
        self,
        job: MapReduceJob,
        relation_name: str,
        database: Database,
        groups: Dict[Key, List[object]],
        key_bytes: Optional[Dict[Key, int]] = None,
    ) -> PartitionMetrics:
        """Apply the map function to one input relation and shuffle its output."""
        relation = database.get(relation_name)
        rows: List[Tuple[object, ...]] = (
            relation.sorted_tuples() if relation is not None else []
        )
        input_mb = relation.size_mb() if relation is not None else 0.0
        mappers = self.mappers_for(input_mb)

        intermediate_bytes = 0
        output_records = 0
        combine = job.combine if job.uses_combiner() else None
        # defaultdict/Counter fast paths (the engine always passes those);
        # plain dicts from external callers keep working via setdefault/get.
        if isinstance(groups, defaultdict):
            group_for = groups.__getitem__
        else:
            group_for = lambda key: groups.setdefault(key, [])  # noqa: E731
        counting = isinstance(key_bytes, Counter)
        for chunk_rows in map_task_chunks(rows, mappers):
            buffer: Dict[Key, List[object]] = defaultdict(list)
            for row in chunk_rows:
                for key, value in job.map(relation_name, row):
                    buffer[key].append(value)
            for key, values in buffer.items():
                if combine is not None:
                    values = combine(key, values)
                for value in values:
                    pair_size = job.pair_bytes(key, value)
                    intermediate_bytes += pair_size
                    output_records += 1
                    group_for(key).append(value)
                    if counting:
                        key_bytes[key] += pair_size
                    elif key_bytes is not None:
                        key_bytes[key] = key_bytes.get(key, 0) + pair_size

        return PartitionMetrics(
            relation=relation_name,
            input_mb=input_mb,
            input_records=len(rows),
            intermediate_mb=intermediate_bytes / _MB,
            output_records=output_records,
            mappers=mappers,
        )

    def _run_reduce(
        self,
        job: MapReduceJob,
        groups: Dict[Key, List[object]],
        database: Database,
    ) -> Dict[str, Relation]:
        """Apply the reduce function per key group and materialise the outputs."""
        outputs = prepare_output_relations(job)
        for key in sorted(groups, key=tuple_sort_key):
            values = groups[key]
            for relation_name, row in job.reduce(key, values):
                add_output_fact(job, outputs, relation_name, row)
        return outputs

    # -- task durations -------------------------------------------------------------

    def _map_task_durations(self, metrics: JobMetrics) -> List[float]:
        durations: List[float] = []
        for partition in metrics.partitions:
            part = partition.as_map_partition()
            cost = map_cost(part, self.constants)
            per_task = cost / max(1, partition.mappers)
            durations.extend([per_task] * max(1, partition.mappers))
        return durations

    def _reduce_task_durations(
        self,
        metrics: JobMetrics,
        key_bytes: Union[Dict[Key, int], List[Dict[Key, int]], None] = None,
    ) -> List[float]:
        """Per-reducer durations, proportional to each reducer's actual key load.

        Keys are assigned to reducers by a stable hash (as Hadoop's default
        partitioner does), so data skew — a heavy-hitter join key — shows up as
        one long reduce task and therefore as increased net time, while the
        total (aggregate) time is unaffected.  *key_bytes* may be one merged
        mapping or a list of per-partition mappings; a key appearing in
        several parts contributes each part's load (integer sums into floats
        are exact, so the split is bit-identical to a pre-merged mapping).
        """
        reducers = max(1, metrics.reducers)
        total = self.cost_model.reduce_cost(
            metrics.intermediate_mb, metrics.output_mb, reducers
        )
        parts = key_bytes if isinstance(key_bytes, list) else [key_bytes or {}]
        if sum(sum(part.values()) for part in parts) <= 0:
            return [total / reducers] * reducers
        loads = [0.0] * reducers
        hash_of = stable_hash  # partition_index, sans the per-key call frame
        for part in parts:
            # map() drives the hash calls from C; the loop body only indexes.
            for index, size in zip(map(hash_of, part), part.values()):
                loads[index % reducers] += size
        total_load = sum(loads)
        return [total * load / total_load for load in loads]

    # -- programs ---------------------------------------------------------------------

    def run_program(
        self, program: MRProgram, database: Database
    ) -> ProgramResult:
        """Execute an MR program level by level.

        Jobs within a level run concurrently and share the cluster's task
        slots; the level's net time is one job-startup overhead plus the map
        makespan plus the reduce makespan.  Outputs become visible to the next
        level (they are added to a working copy of the database).
        """
        program.validate()
        working = database.copy()
        all_outputs: Dict[str, Relation] = {}
        metrics = ProgramMetrics()
        levels = program.levels()
        metrics.rounds = len(levels)

        with obs.span(
            "program", program=program.name, jobs=len(program), rounds=len(levels)
        ):
            for level_index, level_jobs in enumerate(levels):
                level_map_tasks: List[float] = []
                level_reduce_tasks: List[float] = []
                level_results: List[JobResult] = []
                with obs.span("level", index=level_index, jobs=len(level_jobs)):
                    for job in level_jobs:
                        result = self.run_job(job, working)
                        level_results.append(result)
                        metrics.add_job(result.metrics)
                        level_map_tasks.extend(result.metrics.map_task_durations)
                        level_reduce_tasks.extend(
                            result.metrics.reduce_task_durations
                        )
                for result in level_results:
                    for name, relation in result.outputs.items():
                        working.add_relation(relation)
                        all_outputs[name] = relation
                metrics.level_net_times.append(
                    self.level_net_time(level_map_tasks, level_reduce_tasks)
                )

        metrics.net_time = sum(metrics.level_net_times)
        return ProgramResult(
            program=program,
            outputs=all_outputs,
            metrics=metrics,
            database=working,
        )
