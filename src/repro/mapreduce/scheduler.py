"""Wave-based task scheduling used to derive *net* (wall-clock) time.

Hadoop runs the map tasks of the concurrently-active jobs on the cluster's
task slots; when there are more tasks than slots they execute in waves.  The
net time of a set of tasks is therefore (approximately) the makespan of a
list-scheduling assignment of task durations to slots.

We use the classic Longest-Processing-Time (LPT) greedy rule, which is both a
good approximation of Hadoop's behaviour (long tasks get started early) and a
4/3-approximation of the optimal makespan, keeping the simulated net times
stable and deterministic.
"""

from __future__ import annotations

import heapq
from typing import Iterable, List, Sequence, Tuple


def makespan(durations: Iterable[float], slots: int) -> float:
    """Makespan of scheduling *durations* on *slots* identical slots (LPT).

    Returns 0.0 for an empty task list.  Raises ``ValueError`` for a
    non-positive slot count.
    """
    tasks = sorted((d for d in durations if d > 0), reverse=True)
    if not tasks:
        return 0.0
    if slots < 1:
        raise ValueError("slots must be >= 1")
    if slots == 1:
        return sum(tasks)
    # Min-heap of per-slot accumulated time.
    heap: List[float] = [0.0] * min(slots, len(tasks))
    heapq.heapify(heap)
    for duration in tasks:
        lightest = heapq.heappop(heap)
        heapq.heappush(heap, lightest + duration)
    return max(heap)


def wave_count(num_tasks: int, slots: int) -> int:
    """Number of waves needed to run *num_tasks* equal-length tasks."""
    if num_tasks <= 0:
        return 0
    if slots < 1:
        raise ValueError("slots must be >= 1")
    return -(-num_tasks // slots)


def schedule_report(
    durations: Sequence[float], slots: int
) -> Tuple[float, float, float]:
    """(makespan, total work, average slot utilisation) for a task set."""
    span = makespan(durations, slots)
    work = sum(d for d in durations if d > 0)
    utilisation = 0.0 if span <= 0 else work / (span * slots)
    return span, work, utilisation
