"""The batch ("kernel") execution path: protocol and shared accounting.

The interpreted engine evaluates jobs tuple-at-a-time: a ``job.map`` call per
row building a binding dict, a message object per emitted pair, a
``groups.setdefault(...).append(...)`` per pair and a ``job.reduce`` call per
key.  For the semi-join shaped jobs of this package all of that is avoidable:
a semi-join is a set operation — build a hash set of conditional join keys,
probe the guard rows — and the simulated Hadoop metrics are pure functions of
per-key pair *counts*, which the kernel computes analytically while probing.

A kernel-capable job implements three methods (see
:class:`~repro.mapreduce.job.MapReduceJob`):

* ``supports_kernel()`` — whether batch evaluation is implemented *and*
  faithful for this instance (e.g. the skew-salted MSJ job opts out);
* ``map_batch(relation, chunks)`` — evaluate the map phase of one input
  partition over its map-task chunks, returning a :class:`MapBatch` with the
  partition's byte/record accounting plus whatever per-relation data the
  job's reduce kernel needs (key sets to build, rows to probe);
* ``reduce_batch(batches)`` — combine the per-partition batches into the
  output relations, returning ``{relation name: iterable of rows}``.

Kernels run *in-process* on the driver and ship nothing: the shared-memory
data plane (``docs/dataplane.md``) applies only to the fan-out paths — the
parallel backend's pool tasks and the sharded tier's resident/inline
payloads — where chunks actually cross a process boundary.  A kernelised
job on those backends short-circuits the fan-out entirely, so the two
optimisations compose rather than overlap.

Metric fidelity contract: for every job the kernel path must produce the
*identical* ``PartitionMetrics``, per-key byte loads and output relations the
interpreted path produces — byte for byte — so that
:meth:`~repro.mapreduce.engine.MapReduceEngine.finalise_job_metrics` derives
identical cost breakdowns, task durations and skew behaviour.  The
``tests/test_kernels.py`` parity suite and the fuzzer's kernel axis enforce
this contract.

Mode selection (``GumboOptions.kernel_mode``, carried by the job's options):

* ``"off"``  — always interpret;
* ``"auto"`` (default) — use the kernel wherever the job supports it on the
  in-process serial engine; the parallel backend keeps its per-task fan-out
  (a batch kernel is a single-process algorithm — fanning it out would just
  re-serialise the relation);
* ``"on"``   — use the kernel wherever the job supports it, *including* on
  the parallel backend (which then runs the job in-process instead of
  fanning out).

Jobs that implement no kernel (the Hive/Pig baseline jobs, user-defined
jobs) are always interpreted, whatever the mode.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from ..model.relation import ColumnBlock
from .job import Key, MapReduceJob

#: Canonical kernel modes accepted by ``GumboOptions.kernel_mode``.
KERNEL_OFF = "off"
KERNEL_AUTO = "auto"
KERNEL_ON = "on"
KERNEL_MODES = (KERNEL_AUTO, KERNEL_ON, KERNEL_OFF)

#: Rows of one map-task chunk.
_ROWS = Sequence[Tuple[object, ...]]


def as_column_block(chunk: _ROWS) -> ColumnBlock:
    """Normalise one map-task chunk to a :class:`ColumnBlock`.

    The engine hands kernels column blocks sliced straight off the relation's
    cached column store; external callers (and older tests) may still pass
    plain row sequences, which are transposed here.
    """
    if isinstance(chunk, ColumnBlock):
        return chunk
    return ColumnBlock.from_rows(chunk)


def job_kernel_mode(job: MapReduceJob) -> str:
    """The kernel mode requested by *job*'s options (``"off"`` when absent)."""
    options = getattr(job, "options", None)
    mode = getattr(options, "kernel_mode", KERNEL_OFF)
    return mode if mode in KERNEL_MODES else KERNEL_OFF


def use_kernel(job: MapReduceJob, fanout: bool = False) -> bool:
    """Whether *job* should run through the batch kernel path.

    *fanout* is True when the caller is a fan-out backend (the parallel
    runtime): there only an explicit ``"on"`` engages the kernel, so that
    ``"auto"`` preserves real task-level parallelism.
    """
    mode = job_kernel_mode(job)
    if mode == KERNEL_OFF:
        return False
    if fanout and mode != KERNEL_ON:
        return False
    return job.supports_kernel()


@dataclass
class MapBatch:
    """Result of the kernelised map phase over one input partition.

    ``intermediate_bytes`` / ``output_records`` / ``key_bytes`` reproduce the
    interpreted engine's per-partition accounting exactly (combiner semantics
    included).  ``data`` carries job-specific reduce-kernel inputs — key sets
    built from conditional facts, guard rows to probe — opaque to the engine.
    """

    relation: str
    intermediate_bytes: int = 0
    output_records: int = 0
    key_bytes: Dict[Key, int] = field(default_factory=dict)
    data: object = None


class PackedChunkAccumulator:
    """Per-chunk pair accounting under message packing (the map combiner).

    With Gumbo's message-packing optimisation the interpreted engine combines
    all messages a map task emits under one key into a single packed value:
    per (chunk, key) it charges one record of size ``key + Σ request sizes +
    #distinct assert tags × TAG`` and adds that size to the key's byte load.
    This accumulator reproduces those numbers from counts alone — feed it the
    per-row emissions of one chunk, then :meth:`flush` after the chunk.  Keys
    must be tuples (every kernel's keys are), whose serialised size depends
    only on their field count.
    """

    __slots__ = (
        "job",
        "tag_bytes",
        "_stats",
        "_chunk_requests",
        "_chunk_assert_calls",
        "_chunk_rowwise",
        "intermediate_bytes",
        "records",
        "key_bytes",
    )

    def __init__(self, job: MapReduceJob, tag_bytes: int) -> None:
        self.job = job
        self.tag_bytes = tag_bytes
        #: key -> [request bytes, distinct assert tags (count or set)].
        self._stats: Dict[Key, list] = {}
        # Chunk-composition flags driving flush()'s fast paths.
        self._chunk_requests = False
        self._chunk_assert_calls = 0
        self._chunk_rowwise = False
        self.intermediate_bytes = 0
        self.records = 0
        self.key_bytes: Dict[Key, int] = Counter()

    def add_request(self, key: Key, size: int) -> None:
        self._chunk_requests = True
        self._chunk_rowwise = True
        entry = self._stats.get(key)
        if entry is None:
            self._stats[key] = [size, None]
        else:
            entry[0] += size

    def add_request_counts(self, counts: Dict[Key, int], size: int) -> None:
        """Batch :meth:`add_request`: per key, *counts* requests of *size*."""
        self._chunk_requests = True
        stats = self._stats
        if not stats:
            self._stats = {
                key: [size * count, None] for key, count in counts.items()
            }
            return
        for key, count in counts.items():
            entry = stats.get(key)
            if entry is None:
                stats[key] = [size * count, None]
            else:
                entry[0] += size * count

    def add_assert(self, key: Key, tag: int) -> None:
        self._chunk_rowwise = True
        entry = self._stats.get(key)
        if entry is None:
            self._stats[key] = [0, {tag}]
        elif entry[1] is None:
            entry[1] = {tag}
        else:
            entry[1].add(tag)

    def add_assert_keys(self, keys: Iterable[Key], tag: int) -> None:
        """Batch :meth:`add_assert` over the distinct *keys* of one chunk.

        Each call must present a *tag* not yet asserted for these keys this
        chunk (the kernels assert each tag's key set exactly once per chunk),
        so a plain distinct-tag count replaces the per-key tag set.  Do not
        mix with :meth:`add_assert` within one chunk.
        """
        del tag  # distinct by contract; only the count matters for sizing
        self._chunk_assert_calls += 1
        stats = self._stats
        if not stats:
            self._stats = {key: [0, 1] for key in keys}
            return
        for key in keys:
            entry = stats.get(key)
            if entry is None:
                stats[key] = [0, 1]
            elif entry[1] is None:
                entry[1] = 1
            else:
                entry[1] += 1

    def flush(self) -> None:
        """Close the current chunk: charge one packed pair per touched key.

        Keys are tuples and every job's ``key_bytes`` is a pure function of
        the key's field count (the paper's byte model sizes keys by fields,
        never by values), so one probe per distinct key length stands in for
        a ``key_bytes`` call per key.  Homogeneous chunks take all-C paths:
        a pure single-tag assert chunk charges one uniform size
        (``dict.fromkeys``), a pure request chunk skips the tag arithmetic.
        """
        stats = self._stats
        if not stats:
            return
        tag_bytes = self.tag_bytes
        job_key_bytes = self.job.key_bytes
        lengths = set(map(len, stats))
        size_by_len = {length: job_key_bytes((0,) * length) for length in lengths}
        uniform_base = (
            next(iter(size_by_len.values())) if len(lengths) == 1 else None
        )
        rowwise = self._chunk_rowwise
        if (
            uniform_base is not None
            and not rowwise
            and not self._chunk_requests
            and self._chunk_assert_calls == 1
        ):
            # Single assert pass: every entry is [0, 1], one uniform charge.
            sizes = dict.fromkeys(stats, uniform_base + tag_bytes)
        elif (
            uniform_base is not None
            and not rowwise
            and not self._chunk_assert_calls
        ):
            # Requests only: no tag component to evaluate.
            sizes = {
                key: uniform_base + entry[0] for key, entry in stats.items()
            }
        else:
            sizes = {
                key: size_by_len[len(key)]
                + entry[0]
                + (
                    tag_bytes
                    * (entry[1] if type(entry[1]) is int else len(entry[1]))
                    if entry[1]
                    else 0
                )
                for key, entry in stats.items()
            }
        self.intermediate_bytes += sum(sizes.values())
        self.records += len(sizes)
        self.key_bytes.update(sizes)
        self._stats = {}
        self._chunk_requests = False
        self._chunk_assert_calls = 0
        self._chunk_rowwise = False


class PlainPairAccumulator:
    """Pair accounting without a combiner: every message is its own pair.

    Chunk boundaries are irrelevant here (sizes and records are additive), so
    the accumulator can be fed whole partitions.
    """

    __slots__ = ("job", "intermediate_bytes", "records", "key_bytes")

    def __init__(self, job: MapReduceJob) -> None:
        self.job = job
        self.intermediate_bytes = 0
        self.records = 0
        self.key_bytes: Dict[Key, int] = Counter()

    def add_pair(self, key: Key, value_size: int) -> None:
        size = self.job.key_bytes(key) + value_size
        self.intermediate_bytes += size
        self.records += 1
        key_bytes = self.key_bytes
        key_bytes[key] = key_bytes.get(key, 0) + size

    def add_pairs(self, key: Key, value_size: int, count: int) -> None:
        """*count* identical-size pairs under one key in one go."""
        if count <= 0:
            return
        size = self.job.key_bytes(key) + value_size
        self.intermediate_bytes += size * count
        self.records += count
        key_bytes = self.key_bytes
        key_bytes[key] = key_bytes.get(key, 0) + size * count

    def add_key_counts(self, counts: Dict[Key, int], value_size: int) -> None:
        """Batch :meth:`add_pairs` over a ``key -> pair count`` mapping.

        Key sizes are memoised per key length (see
        :meth:`PackedChunkAccumulator.flush` for why that is exact).
        """
        job_key_bytes = self.job.key_bytes
        key_bytes = self.key_bytes
        size_by_len: Dict[int, int] = {}
        total = 0
        records = 0
        for key, count in counts.items():
            base = size_by_len.get(len(key))
            if base is None:
                base = size_by_len[len(key)] = job_key_bytes(key)
            subtotal = (base + value_size) * count
            total += subtotal
            records += count
            key_bytes[key] = key_bytes.get(key, 0) + subtotal
        self.intermediate_bytes += total
        self.records += records

    def add_uniform_pairs(self, keys: Sequence[Key], pair_size: int) -> None:
        """One pair per key, all of *pair_size* total bytes.

        For jobs whose key size is a function of the key *length* only (the
        EVAL job), a whole batch of distinct keys is charged without calling
        ``job.key_bytes`` per key.  ``key_bytes`` is a :class:`Counter`, so
        the merge adds (never overwrites) on repeated keys across chunks.
        """
        if not keys:
            return
        self.intermediate_bytes += pair_size * len(keys)
        self.records += len(keys)
        self.key_bytes.update(dict.fromkeys(keys, pair_size))

    def flush(self) -> None:  # symmetric API with PackedChunkAccumulator
        pass


__all__: List[str] = [
    "KERNEL_AUTO",
    "KERNEL_MODES",
    "KERNEL_OFF",
    "KERNEL_ON",
    "ColumnBlock",
    "MapBatch",
    "PackedChunkAccumulator",
    "PlainPairAccumulator",
    "as_column_block",
    "job_kernel_mode",
    "use_kernel",
]
