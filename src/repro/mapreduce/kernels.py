"""The batch ("kernel") execution path: protocol and shared accounting.

The interpreted engine evaluates jobs tuple-at-a-time: a ``job.map`` call per
row building a binding dict, a message object per emitted pair, a
``groups.setdefault(...).append(...)`` per pair and a ``job.reduce`` call per
key.  For the semi-join shaped jobs of this package all of that is avoidable:
a semi-join is a set operation — build a hash set of conditional join keys,
probe the guard rows — and the simulated Hadoop metrics are pure functions of
per-key pair *counts*, which the kernel computes analytically while probing.

A kernel-capable job implements three methods (see
:class:`~repro.mapreduce.job.MapReduceJob`):

* ``supports_kernel()`` — whether batch evaluation is implemented *and*
  faithful for this instance (e.g. the skew-salted MSJ job opts out);
* ``map_batch(relation, chunks)`` — evaluate the map phase of one input
  partition over its map-task chunks, returning a :class:`MapBatch` with the
  partition's byte/record accounting plus whatever per-relation data the
  job's reduce kernel needs (key sets to build, rows to probe);
* ``reduce_batch(batches)`` — combine the per-partition batches into the
  output relations, returning ``{relation name: iterable of rows}``.

Metric fidelity contract: for every job the kernel path must produce the
*identical* ``PartitionMetrics``, per-key byte loads and output relations the
interpreted path produces — byte for byte — so that
:meth:`~repro.mapreduce.engine.MapReduceEngine.finalise_job_metrics` derives
identical cost breakdowns, task durations and skew behaviour.  The
``tests/test_kernels.py`` parity suite and the fuzzer's kernel axis enforce
this contract.

Mode selection (``GumboOptions.kernel_mode``, carried by the job's options):

* ``"off"``  — always interpret;
* ``"auto"`` (default) — use the kernel wherever the job supports it on the
  in-process serial engine; the parallel backend keeps its per-task fan-out
  (a batch kernel is a single-process algorithm — fanning it out would just
  re-serialise the relation);
* ``"on"``   — use the kernel wherever the job supports it, *including* on
  the parallel backend (which then runs the job in-process instead of
  fanning out).

Jobs that implement no kernel (the Hive/Pig baseline jobs, user-defined
jobs) are always interpreted, whatever the mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from .job import Key, MapReduceJob

#: Canonical kernel modes accepted by ``GumboOptions.kernel_mode``.
KERNEL_OFF = "off"
KERNEL_AUTO = "auto"
KERNEL_ON = "on"
KERNEL_MODES = (KERNEL_AUTO, KERNEL_ON, KERNEL_OFF)

#: Rows of one map-task chunk.
_ROWS = Sequence[Tuple[object, ...]]


def job_kernel_mode(job: MapReduceJob) -> str:
    """The kernel mode requested by *job*'s options (``"off"`` when absent)."""
    options = getattr(job, "options", None)
    mode = getattr(options, "kernel_mode", KERNEL_OFF)
    return mode if mode in KERNEL_MODES else KERNEL_OFF


def use_kernel(job: MapReduceJob, fanout: bool = False) -> bool:
    """Whether *job* should run through the batch kernel path.

    *fanout* is True when the caller is a fan-out backend (the parallel
    runtime): there only an explicit ``"on"`` engages the kernel, so that
    ``"auto"`` preserves real task-level parallelism.
    """
    mode = job_kernel_mode(job)
    if mode == KERNEL_OFF:
        return False
    if fanout and mode != KERNEL_ON:
        return False
    return job.supports_kernel()


@dataclass
class MapBatch:
    """Result of the kernelised map phase over one input partition.

    ``intermediate_bytes`` / ``output_records`` / ``key_bytes`` reproduce the
    interpreted engine's per-partition accounting exactly (combiner semantics
    included).  ``data`` carries job-specific reduce-kernel inputs — key sets
    built from conditional facts, guard rows to probe — opaque to the engine.
    """

    relation: str
    intermediate_bytes: int = 0
    output_records: int = 0
    key_bytes: Dict[Key, int] = field(default_factory=dict)
    data: object = None


class PackedChunkAccumulator:
    """Per-chunk pair accounting under message packing (the map combiner).

    With Gumbo's message-packing optimisation the interpreted engine combines
    all messages a map task emits under one key into a single packed value:
    per (chunk, key) it charges one record of size ``key + Σ request sizes +
    #distinct assert tags × TAG`` and adds that size to the key's byte load.
    This accumulator reproduces those numbers from counts alone — feed it the
    per-row emissions of one chunk, then :meth:`flush` after the chunk.
    """

    __slots__ = (
        "job",
        "tag_bytes",
        "_stats",
        "intermediate_bytes",
        "records",
        "key_bytes",
    )

    def __init__(self, job: MapReduceJob, tag_bytes: int) -> None:
        self.job = job
        self.tag_bytes = tag_bytes
        #: key -> [request bytes, set of distinct assert tags] for the chunk.
        self._stats: Dict[Key, list] = {}
        self.intermediate_bytes = 0
        self.records = 0
        self.key_bytes: Dict[Key, int] = {}

    def add_request(self, key: Key, size: int) -> None:
        entry = self._stats.get(key)
        if entry is None:
            self._stats[key] = [size, None]
        else:
            entry[0] += size

    def add_assert(self, key: Key, tag: int) -> None:
        entry = self._stats.get(key)
        if entry is None:
            self._stats[key] = [0, {tag}]
        elif entry[1] is None:
            entry[1] = {tag}
        else:
            entry[1].add(tag)

    def flush(self) -> None:
        """Close the current chunk: charge one packed pair per touched key."""
        stats, key_bytes = self._stats, self.key_bytes
        if not stats:
            return
        tag_bytes = self.tag_bytes
        job_key_bytes = self.job.key_bytes
        total = 0
        for key, (request_bytes, tags) in stats.items():
            size = job_key_bytes(key) + request_bytes
            if tags:
                size += tag_bytes * len(tags)
            total += size
            key_bytes[key] = key_bytes.get(key, 0) + size
        self.intermediate_bytes += total
        self.records += len(stats)
        self._stats = {}


class PlainPairAccumulator:
    """Pair accounting without a combiner: every message is its own pair.

    Chunk boundaries are irrelevant here (sizes and records are additive), so
    the accumulator can be fed whole partitions.
    """

    __slots__ = ("job", "intermediate_bytes", "records", "key_bytes")

    def __init__(self, job: MapReduceJob) -> None:
        self.job = job
        self.intermediate_bytes = 0
        self.records = 0
        self.key_bytes: Dict[Key, int] = {}

    def add_pair(self, key: Key, value_size: int) -> None:
        size = self.job.key_bytes(key) + value_size
        self.intermediate_bytes += size
        self.records += 1
        key_bytes = self.key_bytes
        key_bytes[key] = key_bytes.get(key, 0) + size

    def add_pairs(self, key: Key, value_size: int, count: int) -> None:
        """*count* identical-size pairs under one key in one go."""
        if count <= 0:
            return
        size = self.job.key_bytes(key) + value_size
        self.intermediate_bytes += size * count
        self.records += count
        key_bytes = self.key_bytes
        key_bytes[key] = key_bytes.get(key, 0) + size * count

    def flush(self) -> None:  # symmetric API with PackedChunkAccumulator
        pass


__all__: List[str] = [
    "KERNEL_AUTO",
    "KERNEL_MODES",
    "KERNEL_OFF",
    "KERNEL_ON",
    "MapBatch",
    "PackedChunkAccumulator",
    "PlainPairAccumulator",
    "job_kernel_mode",
    "use_kernel",
]
