"""Simulated Hadoop MapReduce substrate: jobs, programs, engine, cluster, scheduler."""

from .cluster import ClusterConfig
from .counters import JobMetrics, PartitionMetrics, ProgramMetrics
from .engine import JobResult, MapReduceEngine, ProgramResult
from .job import (
    Key,
    MapReduceJob,
    OutputFact,
    REDUCERS_BY_INPUT,
    REDUCERS_BY_INTERMEDIATE,
)
from .kernels import (
    KERNEL_AUTO,
    KERNEL_MODES,
    KERNEL_OFF,
    KERNEL_ON,
    MapBatch,
    use_kernel,
)
from .program import MRProgram, ProgramValidationError
from .scheduler import makespan, schedule_report, wave_count

__all__ = [
    "ClusterConfig",
    "JobMetrics",
    "JobResult",
    "KERNEL_AUTO",
    "KERNEL_MODES",
    "KERNEL_OFF",
    "KERNEL_ON",
    "Key",
    "MRProgram",
    "MapBatch",
    "use_kernel",
    "MapReduceEngine",
    "MapReduceJob",
    "OutputFact",
    "PartitionMetrics",
    "ProgramMetrics",
    "ProgramResult",
    "ProgramValidationError",
    "REDUCERS_BY_INPUT",
    "REDUCERS_BY_INTERMEDIATE",
    "makespan",
    "schedule_report",
    "wave_count",
]
