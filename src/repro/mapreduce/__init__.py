"""Simulated Hadoop MapReduce substrate: jobs, programs, engine, cluster, scheduler."""

from .cluster import ClusterConfig
from .counters import JobMetrics, PartitionMetrics, ProgramMetrics
from .engine import JobResult, MapReduceEngine, ProgramResult
from .job import (
    Key,
    MapReduceJob,
    OutputFact,
    REDUCERS_BY_INPUT,
    REDUCERS_BY_INTERMEDIATE,
)
from .program import MRProgram, ProgramValidationError
from .scheduler import makespan, schedule_report, wave_count

__all__ = [
    "ClusterConfig",
    "JobMetrics",
    "JobResult",
    "Key",
    "MRProgram",
    "MapReduceEngine",
    "MapReduceJob",
    "OutputFact",
    "PartitionMetrics",
    "ProgramMetrics",
    "ProgramResult",
    "ProgramValidationError",
    "REDUCERS_BY_INPUT",
    "REDUCERS_BY_INTERMEDIATE",
    "makespan",
    "schedule_report",
    "wave_count",
]
