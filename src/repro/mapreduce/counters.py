"""Metrics collected while simulating MapReduce jobs and programs.

The paper reports four performance metrics (Section 5.1):

1. *total time* — aggregate time spent by all mappers and reducers;
2. *net time* — elapsed wall-clock time from submission to final result;
3. *input cost* — bytes read from HDFS over the entire MR plan;
4. *communication cost* — bytes transferred from mappers to reducers.

:class:`JobMetrics` captures these per job (plus the ingredients — partition
sizes, task counts, task durations — needed to compute them), and
:class:`ProgramMetrics` aggregates them over an MR program.

Besides the *simulated* metrics, execution backends stamp *measured*
wall-clock times (:class:`WallClockMetrics`, per wave and per job) so that
simulated-vs-real speedup comparisons are first-class: the serial backend
records its in-process elapsed time, the parallel backend records the elapsed
time of every wave of tasks it fans out to its worker pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..cost.formulas import MapPartition
from ..cost.models import JobCostBreakdown


@dataclass
class WaveMetrics:
    """Measured wall-clock time of one wave of tasks on an execution backend."""

    phase: str  # "map" or "reduce"
    index: int
    tasks: int
    elapsed_s: float


@dataclass
class WallClockMetrics:
    """Measured (not simulated) execution times of one job on a backend.

    ``elapsed_s`` is the job's end-to-end wall-clock time; ``map_elapsed_s``
    and ``reduce_elapsed_s`` break it down by phase, summed over the waves in
    which the backend scheduled the phase's tasks.
    """

    backend: str = "serial"
    workers: int = 1
    elapsed_s: float = 0.0
    map_elapsed_s: float = 0.0
    reduce_elapsed_s: float = 0.0
    waves: List[WaveMetrics] = field(default_factory=list)

    def record_wave(self, phase: str, tasks: int, elapsed_s: float) -> None:
        """Append one wave's measurement and add it to the phase subtotal."""
        index = sum(1 for wave in self.waves if wave.phase == phase)
        self.waves.append(WaveMetrics(phase, index, tasks, elapsed_s))
        if phase == "map":
            self.map_elapsed_s += elapsed_s
        elif phase == "reduce":
            self.reduce_elapsed_s += elapsed_s

    @property
    def wave_count(self) -> int:
        return len(self.waves)


@dataclass
class PartitionMetrics:
    """Observed behaviour of the map phase on one uniform input part."""

    relation: str
    input_mb: float
    input_records: int
    intermediate_mb: float
    output_records: int
    mappers: int

    def as_map_partition(self) -> MapPartition:
        return MapPartition(
            input_mb=self.input_mb,
            intermediate_mb=self.intermediate_mb,
            records=self.output_records,
            mappers=self.mappers,
            label=self.relation,
        )


@dataclass
class JobMetrics:
    """All measurements for one simulated MR job."""

    job_id: str
    partitions: List[PartitionMetrics] = field(default_factory=list)
    reducers: int = 1
    output_mb: float = 0.0
    output_records: int = 0
    breakdown: Optional[JobCostBreakdown] = None
    map_task_durations: List[float] = field(default_factory=list)
    reduce_task_durations: List[float] = field(default_factory=list)
    #: Measured wall-clock times, stamped by the execution backend (None when
    #: the job ran through the bare engine without a backend).
    wall: Optional[WallClockMetrics] = None

    # -- derived quantities -------------------------------------------------

    @property
    def input_mb(self) -> float:
        """HDFS bytes read by the job (MB)."""
        return sum(p.input_mb for p in self.partitions)

    @property
    def input_records(self) -> int:
        return sum(p.input_records for p in self.partitions)

    @property
    def intermediate_mb(self) -> float:
        """Bytes shuffled from mappers to reducers (MB)."""
        return sum(p.intermediate_mb for p in self.partitions)

    @property
    def intermediate_records(self) -> int:
        return sum(p.output_records for p in self.partitions)

    @property
    def mappers(self) -> int:
        return sum(p.mappers for p in self.partitions)

    @property
    def total_time(self) -> float:
        """Total (aggregate) time of the job in seconds."""
        return self.breakdown.total if self.breakdown else 0.0

    def map_partitions(self) -> List[MapPartition]:
        return [p.as_map_partition() for p in self.partitions]


@dataclass
class ProgramMetrics:
    """Aggregated measurements for a whole MR program (a DAG of jobs)."""

    job_metrics: Dict[str, JobMetrics] = field(default_factory=dict)
    net_time: float = 0.0
    rounds: int = 0
    level_net_times: List[float] = field(default_factory=list)
    #: Name of the execution backend that produced these metrics.
    backend: str = "serial"
    #: Measured end-to-end wall-clock time of the program run (0 when no
    #: backend timed the run).
    wall_elapsed_s: float = 0.0

    def add_job(self, metrics: JobMetrics) -> None:
        self.job_metrics[metrics.job_id] = metrics

    # -- the paper's four metrics ----------------------------------------------

    @property
    def total_time(self) -> float:
        return sum(m.total_time for m in self.job_metrics.values())

    @property
    def input_mb(self) -> float:
        return sum(m.input_mb for m in self.job_metrics.values())

    @property
    def communication_mb(self) -> float:
        return sum(m.intermediate_mb for m in self.job_metrics.values())

    @property
    def output_mb(self) -> float:
        return sum(m.output_mb for m in self.job_metrics.values())

    @property
    def input_gb(self) -> float:
        return self.input_mb / 1024.0

    @property
    def communication_gb(self) -> float:
        return self.communication_mb / 1024.0

    @property
    def num_jobs(self) -> int:
        return len(self.job_metrics)

    def merge(self, other: "ProgramMetrics") -> "ProgramMetrics":
        """Sequential composition: metrics of running *self* then *other*."""
        combined = ProgramMetrics()
        for metrics in list(self.job_metrics.values()) + list(
            other.job_metrics.values()
        ):
            combined.add_job(metrics)
        combined.net_time = self.net_time + other.net_time
        combined.rounds = self.rounds + other.rounds
        combined.level_net_times = list(self.level_net_times) + list(
            other.level_net_times
        )
        combined.backend = self.backend if self.job_metrics else other.backend
        combined.wall_elapsed_s = self.wall_elapsed_s + other.wall_elapsed_s
        return combined

    def summary(self) -> Dict[str, float]:
        """The four headline metrics as a plain dictionary.

        Only the paper's *simulated* metrics are included, so summaries are
        comparable across backends; measured times live in
        :meth:`wall_summary`.
        """
        return {
            "net_time_s": self.net_time,
            "total_time_s": self.total_time,
            "input_gb": self.input_gb,
            "communication_gb": self.communication_gb,
        }

    def wall_summary(self) -> Dict[str, object]:
        """Measured execution statistics: backend name and wall-clock seconds."""
        return {
            "backend": self.backend,
            "wall_clock_s": self.wall_elapsed_s,
            "wall_map_s": sum(
                m.wall.map_elapsed_s for m in self.job_metrics.values() if m.wall
            ),
            "wall_reduce_s": sum(
                m.wall.reduce_elapsed_s for m in self.job_metrics.values() if m.wall
            ),
        }

    def __str__(self) -> str:
        return (
            f"ProgramMetrics(jobs={self.num_jobs}, rounds={self.rounds}, "
            f"net={self.net_time:.1f}s, total={self.total_time:.1f}s, "
            f"input={self.input_gb:.2f}GB, comm={self.communication_gb:.2f}GB)"
        )
