"""Cluster model: nodes, task slots, and derived capacity.

The paper's experiments run on 10 compute nodes with two 10-core CPUs each,
but YARN is configured (Table 4) with ``yarn.nodemanager.resource.cpu-vcores
= 10`` and 1280 MB task containers, so each node runs at most 10 concurrent
map/reduce containers.  :class:`ClusterConfig` captures exactly the knobs the
simulator's scheduler needs: the number of nodes and the number of concurrent
task containers per node.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..cost.constants import HadoopSettings


@dataclass(frozen=True)
class ClusterConfig:
    """A homogeneous cluster of *nodes* nodes.

    Attributes
    ----------
    nodes:
        Number of worker nodes.
    containers_per_node:
        Concurrent task containers per node (limited by vcores / memory).
    settings:
        The Hadoop settings in force (Table 4); used for split sizes and to
        derive the default ``containers_per_node``.
    """

    nodes: int = 10
    containers_per_node: Optional[int] = None
    settings: HadoopSettings = HadoopSettings.paper_values()

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("cluster needs at least one node")
        if self.containers_per_node is None:
            object.__setattr__(
                self, "containers_per_node", self.settings.containers_per_node
            )
        if self.containers_per_node < 1:
            raise ValueError("containers_per_node must be >= 1")

    @property
    def total_slots(self) -> int:
        """Total number of concurrent task containers in the cluster."""
        return self.nodes * int(self.containers_per_node)

    @property
    def split_mb(self) -> float:
        """Input split size (MB) determining the number of map tasks."""
        return self.settings.split_mb

    def with_nodes(self, nodes: int) -> "ClusterConfig":
        """A copy of this configuration with a different node count."""
        return replace(self, nodes=nodes)

    @classmethod
    def paper_cluster(cls, nodes: int = 10) -> "ClusterConfig":
        """The 10-node VSC cluster of Section 5.1 (or a resized variant)."""
        return cls(nodes=nodes, settings=HadoopSettings.paper_values())

    def __str__(self) -> str:
        return (
            f"ClusterConfig(nodes={self.nodes}, "
            f"containers_per_node={self.containers_per_node}, "
            f"total_slots={self.total_slots})"
        )
