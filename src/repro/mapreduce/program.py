"""MR programs: directed acyclic graphs of MapReduce jobs.

An MR program (Section 3.2) is a DAG of MR jobs where an edge indicates that
one job consumes the output of another.  The *number of rounds* of a program
is the length of its longest path — rounds execute sequentially, while jobs
within a round run concurrently and compete for cluster slots.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from .job import MapReduceJob


class ProgramValidationError(ValueError):
    """Raised for duplicate job ids, unknown dependencies or cycles."""


class MRProgram:
    """A DAG of :class:`~repro.mapreduce.job.MapReduceJob` instances."""

    def __init__(self, name: str = "program") -> None:
        self.name = name
        self._jobs: Dict[str, MapReduceJob] = {}
        self._dependencies: Dict[str, Set[str]] = {}

    # -- construction -------------------------------------------------------------

    def add_job(
        self, job: MapReduceJob, depends_on: Optional[Iterable[str]] = None
    ) -> MapReduceJob:
        """Add *job* to the program with dependencies on earlier job ids."""
        if job.job_id in self._jobs:
            raise ProgramValidationError(f"duplicate job id {job.job_id!r}")
        deps = set(depends_on or ())
        unknown = deps - set(self._jobs)
        if unknown:
            names = ", ".join(sorted(unknown))
            raise ProgramValidationError(
                f"job {job.job_id!r} depends on unknown job(s) {names}"
            )
        self._jobs[job.job_id] = job
        self._dependencies[job.job_id] = deps
        return job

    def add_jobs(
        self, jobs: Iterable[MapReduceJob], depends_on: Optional[Iterable[str]] = None
    ) -> List[MapReduceJob]:
        """Add several jobs sharing the same dependency set."""
        deps = list(depends_on or ())
        return [self.add_job(job, deps) for job in jobs]

    # -- accessors -----------------------------------------------------------------

    @property
    def jobs(self) -> List[MapReduceJob]:
        return list(self._jobs.values())

    @property
    def job_ids(self) -> List[str]:
        return list(self._jobs)

    def job(self, job_id: str) -> MapReduceJob:
        return self._jobs[job_id]

    def dependencies_of(self, job_id: str) -> FrozenSet[str]:
        return frozenset(self._dependencies[job_id])

    def __len__(self) -> int:
        return len(self._jobs)

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._jobs

    # -- structure -----------------------------------------------------------------

    def levels(self) -> List[List[MapReduceJob]]:
        """Jobs grouped by dependency depth; level *k* jobs only depend on levels < k."""
        level_of: Dict[str, int] = {}
        remaining = set(self._jobs)
        while remaining:
            progressed = False
            for job_id in sorted(remaining):
                deps = self._dependencies[job_id]
                if all(dep in level_of for dep in deps):
                    level_of[job_id] = (
                        0 if not deps else 1 + max(level_of[d] for d in deps)
                    )
                    remaining.discard(job_id)
                    progressed = True
            if not progressed:
                raise ProgramValidationError(
                    f"dependency cycle among jobs {sorted(remaining)}"
                )
        depth = max(level_of.values()) + 1 if level_of else 0
        grouped: List[List[MapReduceJob]] = [[] for _ in range(depth)]
        for job_id, level in level_of.items():
            grouped[level].append(self._jobs[job_id])
        for level_jobs in grouped:
            level_jobs.sort(key=lambda j: j.job_id)
        return grouped

    def rounds(self) -> int:
        """Length of the longest path: the number of sequential MR rounds."""
        return len(self.levels())

    def validate(self) -> None:
        """Raise :class:`ProgramValidationError` if the program is malformed."""
        self.levels()

    # -- composition ------------------------------------------------------------------

    def then(self, other: "MRProgram", name: Optional[str] = None) -> "MRProgram":
        """Sequential composition: every job of *other* waits for all jobs of *self*."""
        combined = MRProgram(name or f"{self.name}+{other.name}")
        for job in self.jobs:
            combined.add_job(job, self._dependencies[job.job_id])
        barrier = list(self._jobs)
        for job in other.jobs:
            deps = set(other._dependencies[job.job_id]) | set(barrier)
            combined.add_job(job, deps)
        return combined

    def __repr__(self) -> str:
        return (
            f"MRProgram(name={self.name!r}, jobs={len(self._jobs)}, "
            f"rounds={self.rounds() if self._jobs else 0})"
        )
