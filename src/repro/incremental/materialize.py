"""Materialized (B)SGF results with the state needed for delta maintenance.

A :class:`Materialization` stores, per BSGF statement of an SGF query:

* a **conditional-atom index** per conditional atom κ_i — the conforming
  κ-rows grouped by their join-key value (the variables shared with the
  guard).  Presence of a key is exactly the truth of κ_i for a guard tuple
  binding that key (the semantics of the reference evaluator's
  ``_ConditionalIndex``), and counting rows per key makes truth *flips*
  detectable in O(|delta|);
* a **guard index** per distinct join key — conforming guard rows grouped by
  key value, so the old guard tuples affected by a conditional flip are
  found without scanning the guard;
* a **support counter** — for every output tuple, how many guard tuples
  project to it while satisfying the condition.  Projections collapse guard
  tuples, so an output tuple may only be removed when its support reaches
  zero (the classic counting algorithm of incremental view maintenance).

The statement-level delta rule (:meth:`_StatementState.apply_delta`) is
semi-naive: only inserted guard tuples, guard tuples whose condition may
have changed (their join key flipped for some conditional atom), and deleted
guard tuples are re-evaluated; everything else is untouched.  How the *new*
condition value of those affected tuples is computed is injected by the
caller — :mod:`repro.incremental.engine` runs the statement's planned MR
program restricted to the affected tuples on an execution backend, or
evaluates directly against the maintained indexes (``mode="direct"``).
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..mapreduce.program import MRProgram
from ..model.atoms import Atom
from ..model.database import Database
from ..model.relation import DEFAULT_BYTES_PER_FIELD, Relation
from ..model.terms import Variable
from ..query.bsgf import BSGFQuery
from ..query.sgf import SGFQuery
from .delta import Delta, Row


class IncrementalError(RuntimeError):
    """Raised when a materialization cannot be built or refreshed safely."""


#: Computes the post-delta condition value of the affected guard rows:
#: ``(state, affected rows, row -> binding) -> row -> satisfies``.
NewSatisfies = Callable[
    ["_StatementState", List[Row], Dict[Row, Dict[Variable, object]]],
    Dict[Row, bool],
]


class _AtomIndex:
    """Conforming rows of one conditional atom, grouped by join-key value."""

    def __init__(self, atom: Atom, guard: Atom) -> None:
        shared = guard.shared_variables(atom)
        self.atom = atom
        self.join_key: Tuple[Variable, ...] = tuple(
            v for v in guard.variables if v in shared
        )
        self.rows_by_key: Dict[Row, Set[Row]] = {}

    def build(self, relation: Optional[Relation]) -> None:
        if relation is None:
            return
        for row in relation:
            self.add(row)

    def key_of(self, guard_binding: Dict[Variable, object]) -> Row:
        return tuple(guard_binding[v] for v in self.join_key)

    def truth(self, key: Row) -> bool:
        return key in self.rows_by_key

    def add(self, row: Row) -> Optional[Row]:
        """Index *row* if it conforms; returns its key (None otherwise)."""
        binding = self.atom.match(row)
        if binding is None:
            return None
        key = tuple(binding[v] for v in self.join_key)
        self.rows_by_key.setdefault(key, set()).add(row)
        return key

    def discard(self, row: Row) -> Optional[Row]:
        """Un-index *row* if present; returns its key (None otherwise)."""
        binding = self.atom.match(row)
        if binding is None:
            return None
        key = tuple(binding[v] for v in self.join_key)
        rows = self.rows_by_key.get(key)
        if rows is None or row not in rows:
            return None
        rows.discard(row)
        if not rows:
            del self.rows_by_key[key]
        return key

    def apply(self, inserted: Iterable[Row], deleted: Iterable[Row]) -> Set[Row]:
        """Apply a relation delta; returns the keys whose *truth* flipped."""
        truth_before: Dict[Row, bool] = {}
        for row in inserted:
            binding = self.atom.match(row)
            if binding is None:
                continue
            key = tuple(binding[v] for v in self.join_key)
            truth_before.setdefault(key, self.truth(key))
            self.rows_by_key.setdefault(key, set()).add(row)
        for row in deleted:
            key = self.discard(row)
            if key is not None:
                truth_before.setdefault(key, True)
        return {
            key for key, before in truth_before.items() if self.truth(key) != before
        }


class _StatementState:
    """Delta-maintenance state of one BSGF statement."""

    def __init__(self, query: BSGFQuery, bytes_per_field: int) -> None:
        self.query = query
        self.guard = query.guard
        self.guard_vars: Tuple[Variable, ...] = query.guard.variables
        self.projection = query.projection
        self.indexes: Dict[Atom, _AtomIndex] = {
            atom: _AtomIndex(atom, self.guard) for atom in query.conditional_atoms
        }
        self.guard_rows: Set[Row] = set()
        #: One guard index per *distinct* join key used by the atoms.
        self.guard_by_key: Dict[Tuple[Variable, ...], Dict[Row, Set[Row]]] = {
            key: {} for key in {i.join_key for i in self.indexes.values()} if key
        }
        self.support: Dict[Row, int] = {}
        self.output = Relation(
            query.output, max(1, len(query.projection)), bytes_per_field
        )
        #: Planned restricted MR program, built lazily by the delta engine.
        self.delta_program: Optional[MRProgram] = None
        self.delta_query: Optional[BSGFQuery] = None

    # -- construction ---------------------------------------------------------

    def build(self, relation_of: Callable[[str], Optional[Relation]]) -> None:
        """Index the current database state and materialize the output."""
        for atom, index in self.indexes.items():
            index.build(relation_of(atom.relation))
        guard_relation = relation_of(self.guard.relation)
        if guard_relation is None:
            return
        for row in guard_relation:
            binding = self.guard.match(row)
            if binding is None:
                continue
            self._index_guard_row(row, binding)
            if self._holds_now(binding):
                self._bump(self._project(binding, row), +1, set(), set())

    # -- evaluation helpers -----------------------------------------------------

    def _project(self, binding: Dict[Variable, object], row: Row) -> Row:
        projected = tuple(binding[v] for v in self.projection)
        # Mirrors the reference evaluator: an empty SELECT list degenerates
        # to the guard row's first field.
        return projected if projected else (row[0],)

    def _holds_now(self, binding: Dict[Variable, object]) -> bool:
        """Condition value under the *current* (post-delta) indexes."""
        return self.query.condition.evaluate(
            lambda atom: self.indexes[atom].truth(self.indexes[atom].key_of(binding))
        )

    def _holds_before(
        self,
        binding: Dict[Variable, object],
        flipped: Dict[Atom, Set[Row]],
    ) -> bool:
        """Condition value under the *pre-delta* indexes.

        The indexes already hold the new state; a key's old truth differs
        from its new truth exactly when the key flipped, so XOR-ing with the
        flip set reconstructs the old assignment without keeping a copy.
        """

        def old_truth(atom: Atom) -> bool:
            index = self.indexes[atom]
            key = index.key_of(binding)
            truth = index.truth(key)
            return not truth if key in flipped.get(atom, ()) else truth

        return self.query.condition.evaluate(old_truth)

    # -- guard index maintenance ---------------------------------------------------

    def _index_guard_row(self, row: Row, binding: Dict[Variable, object]) -> None:
        self.guard_rows.add(row)
        for key_vars, by_key in self.guard_by_key.items():
            key = tuple(binding[v] for v in key_vars)
            by_key.setdefault(key, set()).add(row)

    def _unindex_guard_row(self, row: Row, binding: Dict[Variable, object]) -> None:
        self.guard_rows.discard(row)
        for key_vars, by_key in self.guard_by_key.items():
            key = tuple(binding[v] for v in key_vars)
            rows = by_key.get(key)
            if rows is not None:
                rows.discard(row)
                if not rows:
                    del by_key[key]

    # -- support counting -----------------------------------------------------

    def _bump(
        self, out: Row, delta: int, added: Set[Row], removed: Set[Row]
    ) -> None:
        count = self.support.get(out, 0) + delta
        if count < 0:  # pragma: no cover - would indicate a delta-rule bug
            raise IncrementalError(
                f"negative support for {out!r} in {self.query.output!r}"
            )
        if count == 0:
            self.support.pop(out, None)
            if delta < 0:
                self.output.discard(out)
                if out in added:
                    added.discard(out)
                else:
                    removed.add(out)
            return
        self.support[out] = count
        if delta > 0 and count == delta and out not in self.output:
            self.output.add(out)
            if out in removed:
                removed.discard(out)
            else:
                added.add(out)

    # -- the statement-level delta rule ------------------------------------------------

    def apply_delta(
        self, delta: Delta, new_satisfies: NewSatisfies
    ) -> Tuple[Set[Row], Set[Row], int]:
        """Propagate *delta* through this statement.

        Returns ``(added, removed, affected)``: the output tuples that
        appeared / disappeared and the number of guard tuples re-evaluated.
        """
        guard_name = self.guard.relation
        ins_guard: Dict[Row, Dict[Variable, object]] = {}
        for row in delta.inserted.get(guard_name, ()):
            if row in self.guard_rows:
                continue
            binding = self.guard.match(row)
            if binding is not None:
                ins_guard[row] = binding
        del_guard: Dict[Row, Dict[Variable, object]] = {}
        for row in delta.deleted.get(guard_name, ()):
            if row not in self.guard_rows:
                continue
            binding = self.guard.match(row)
            if binding is not None:
                del_guard[row] = binding

        # 1. Update the conditional indexes, collecting truth flips per atom.
        flipped: Dict[Atom, Set[Row]] = {}
        for atom, index in self.indexes.items():
            inserted = delta.inserted.get(atom.relation, ())
            deleted = delta.deleted.get(atom.relation, ())
            if not inserted and not deleted:
                continue
            flips = index.apply(inserted, deleted)
            if flips:
                flipped[atom] = flips

        # 2. Existing guard rows whose condition value may have changed.
        touched: Set[Row] = set()
        for atom, keys in flipped.items():
            key_vars = self.indexes[atom].join_key
            if not key_vars:
                # A Boolean (key-less) conditional flipped: every guard row
                # is affected.
                touched |= self.guard_rows
                break
            by_key = self.guard_by_key[key_vars]
            for key in keys:
                touched |= by_key.get(key, set())
        touched -= set(del_guard)

        bindings: Dict[Row, Dict[Variable, object]] = dict(ins_guard)
        for row in touched:
            binding = self.guard.match(row)
            assert binding is not None  # guard_rows only holds conforming rows
            bindings[row] = binding

        # 3. New condition values for the affected rows (engine or direct).
        affected = list(ins_guard) + sorted(touched - set(ins_guard), key=repr)
        new_sat = new_satisfies(self, affected, bindings) if affected else {}

        # 4. Support updates: inserted, flipped and deleted guard rows.
        added: Set[Row] = set()
        removed: Set[Row] = set()
        for row, binding in ins_guard.items():
            if new_sat[row]:
                self._bump(self._project(binding, row), +1, added, removed)
        for row in touched:
            if row in ins_guard:
                continue
            binding = bindings[row]
            before = self._holds_before(binding, flipped)
            after = new_sat[row]
            if before != after:
                self._bump(
                    self._project(binding, row),
                    +1 if after else -1,
                    added,
                    removed,
                )
        for row, binding in del_guard.items():
            if self._holds_before(binding, flipped):
                self._bump(self._project(binding, row), -1, added, removed)

        # 5. Guard index maintenance (after step 2 read the old index).
        for row, binding in ins_guard.items():
            self._index_guard_row(row, binding)
        for row, binding in del_guard.items():
            self._unindex_guard_row(row, binding)

        return added, removed, len(affected)


class Materialization:
    """A fully evaluated SGF query plus the state to maintain it under inserts.

    Built by :func:`repro.incremental.engine.materialize_query` (or
    :meth:`Gumbo.materialize <repro.core.gumbo.Gumbo.materialize>`); refreshed
    by :func:`repro.incremental.engine.refresh` /
    :meth:`Gumbo.execute_delta <repro.core.gumbo.Gumbo.execute_delta>`.  The
    ``result`` is a :class:`~repro.core.gumbo.GumboResult` whose output
    relations are updated **in place** by every refresh.
    """

    def __init__(
        self,
        query: SGFQuery,
        database: Database,
        states: List[_StatementState],
        result,  # GumboResult; untyped to avoid an import cycle with core.
        requested_strategy: str,
    ) -> None:
        self.query = query
        self.database = database
        self.states = states
        self.result = result
        self.requested_strategy = requested_strategy
        self.refreshes = 0

    @property
    def strategy(self) -> str:
        """The concrete strategy that planned the materialized run."""
        return self.result.strategy

    @property
    def outputs(self) -> Dict[str, Relation]:
        """Every output relation (roots and intermediates), live."""
        return {state.query.output: state.output for state in self.states}

    def output(self, name: Optional[str] = None) -> Relation:
        return self.outputs[name or self.query.output]

    def answers(self) -> Dict[str, FrozenSet[Row]]:
        """Frozen snapshots of every output's tuples (for comparisons)."""
        return {
            name: frozenset(relation.tuples())
            for name, relation in self.outputs.items()
        }

    def relation_arity(self, name: str) -> Optional[int]:
        """Arity of *name* as the delta engine should see it."""
        for state in self.states:
            if state.query.output == name:
                return state.output.arity
        relation = self.database.get(name)
        return relation.arity if relation is not None else None

    def bytes_per_field(self, name: str) -> int:
        for state in self.states:
            if state.query.output == name:
                return state.output.bytes_per_field
        relation = self.database.get(name)
        return (
            relation.bytes_per_field
            if relation is not None
            else DEFAULT_BYTES_PER_FIELD
        )

    def __repr__(self) -> str:
        outputs = ", ".join(
            f"{state.query.output}[{len(state.output)}]" for state in self.states
        )
        return (
            f"Materialization(strategy={self.strategy!r}, "
            f"refreshes={self.refreshes}, outputs={outputs})"
        )
