"""Incremental delta evaluation for (B)SGF programs.

Re-deriving a materialized query result after a batch of inserted tuples
does not require re-running the whole MR program: only the *delta-affected*
guard tuples — freshly inserted ones, plus existing ones whose join key
flipped for some conditional atom — can change the output.  This package
implements that semi-naive maintenance loop on top of the planning and
execution machinery of the rest of the library:

* :mod:`repro.incremental.delta`       — insert/delete batches;
* :mod:`repro.incremental.materialize` — per-statement maintenance state
  (conditional join-key indexes, guard indexes, output support counters);
* :mod:`repro.incremental.engine`      — building materializations and
  refreshing them, with the affected tuples re-evaluated by restricted MR
  programs on an :class:`~repro.exec.base.ExecutionBackend` (``"engine"``
  mode) or directly against the maintained indexes (``"direct"`` mode).

Entry points: :meth:`Gumbo.materialize <repro.core.gumbo.Gumbo.materialize>`
/ :meth:`Gumbo.execute_delta <repro.core.gumbo.Gumbo.execute_delta>`, and
``QueryService.add_tuples(..., incremental=True)`` in the serving layer.
Conditions may use negation and disjunction, so a batch of *inserts* can
both add and remove output tuples; support counting over the guard tuples
makes the removals exact.
"""

from .delta import Delta, apply_inserts, dedupe_inserts
from .engine import (
    DELTA_PREFIX,
    MODES,
    DeltaResult,
    materialize_query,
    refresh,
    refresh_all,
)
from .materialize import IncrementalError, Materialization

__all__ = [
    "DELTA_PREFIX",
    "Delta",
    "DeltaResult",
    "IncrementalError",
    "MODES",
    "Materialization",
    "apply_inserts",
    "dedupe_inserts",
    "materialize_query",
    "refresh",
    "refresh_all",
]
