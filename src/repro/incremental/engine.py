"""The delta engine: build materializations, refresh them under insert batches.

:func:`materialize_query` executes a query through a :class:`Gumbo` planner
(any strategy, any backend), then builds the per-statement maintenance state
of :mod:`repro.incremental.materialize` and cross-checks the directly
materialized outputs against the planned MR program's outputs — every
materialization is born verified against the MSJ/EVAL/fused/chain machinery
that produced it.

:func:`refresh` applies a batch of inserted tuples semi-naive style: per
statement (bottom-up), the affected guard tuples — newly inserted ones plus
existing ones whose join key flipped for some conditional atom — are
re-evaluated and the output delta is merged into the materialized relations
via support counting.  In the default ``"engine"`` mode the re-evaluation is
itself a MapReduce run: the statement is re-planned over a *restricted*
database (the affected guard tuples under a fresh relation name, plus only
the conditional rows whose join keys the affected tuples can probe) and
executed on the same :class:`~repro.exec.base.ExecutionBackend` as the
original query, so the delta path exercises the identical job machinery on a
fraction of the data.  ``mode="direct"`` evaluates the condition against the
maintained indexes instead (the reference semantics, restricted to the
affected tuples) — the differential fuzzer sweeps both.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from time import perf_counter
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional

from ..core.fused import one_round_applicable
from ..core.options import GumboOptions
from ..core.strategies import ONE_ROUND, PAR, build_bsgf_program
from ..exec.base import ExecutionBackend
from ..model.atoms import Atom
from ..model.database import Database
from ..model.relation import Relation
from ..model.terms import Variable
from ..obs import metrics as obs_metrics
from .. import obs
from ..query.bsgf import BSGFQuery
from .delta import Delta, InsertBatch, Row, apply_inserts, dedupe_inserts
from .materialize import (
    IncrementalError,
    Materialization,
    _StatementState,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.gumbo import Gumbo, GumboResult

#: Relation-name prefix of the restricted guard fed to a delta program.
DELTA_PREFIX = "__delta__"

#: Accepted refresh modes.
MODES = ("engine", "direct")

#: Refresh latencies (per materialization), fed to the default registry.
_REFRESH_SECONDS = obs_metrics.default_registry().histogram(
    "repro_refresh_seconds"
)


@dataclass(frozen=True)
class DeltaResult:
    """Outcome of one incremental refresh."""

    materialization: Materialization
    #: Output tuples that appeared / disappeared, per output relation.
    added: Dict[str, FrozenSet[Row]]
    removed: Dict[str, FrozenSet[Row]]
    inserted_tuples: int
    affected_guard_tuples: int
    engine_runs: int
    wall_s: float
    #: Simulated Hadoop time of the restricted delta programs (engine mode).
    simulated_delta_s: float

    @property
    def result(self) -> "GumboResult":
        """The refreshed result (relations updated in place)."""
        return self.materialization.result

    def added_count(self) -> int:
        return sum(len(rows) for rows in self.added.values())

    def removed_count(self) -> int:
        return sum(len(rows) for rows in self.removed.values())

    def summary(self) -> Dict[str, float]:
        return {
            "inserted_tuples": self.inserted_tuples,
            "affected_guard_tuples": self.affected_guard_tuples,
            "added_tuples": self.added_count(),
            "removed_tuples": self.removed_count(),
            "engine_runs": self.engine_runs,
            "wall_s": self.wall_s,
            "simulated_delta_s": self.simulated_delta_s,
        }


# -- building a materialization ---------------------------------------------------


def materialize_query(
    gumbo: "Gumbo",
    query,
    database: Database,
    strategy: Optional[str] = None,
    result: Optional["GumboResult"] = None,
) -> Materialization:
    """Execute *query* and build its delta-maintenance state.

    A pre-computed *result* (e.g. from the query service's plan cache) is
    reused instead of re-executing.  The directly materialized outputs are
    verified tuple-for-tuple against the planned program's outputs.
    """
    from ..core.gumbo import Gumbo, GumboResult  # local: avoid import cycle

    sgf = Gumbo.as_sgf(query)
    if result is None:
        result = gumbo.execute(sgf, database, strategy)

    states: List[_StatementState] = []
    produced: Dict[str, Relation] = {}

    def relation_of(name: str) -> Optional[Relation]:
        if name in produced:
            return produced[name]
        return database.get(name)

    for subquery in sgf:
        guard_relation = relation_of(subquery.guard.relation)
        bytes_per_field = (
            guard_relation.bytes_per_field if guard_relation is not None else 10
        )
        state = _StatementState(subquery, bytes_per_field)
        state.build(relation_of)
        expected = result.all_outputs[subquery.output]
        if state.output.tuples() != expected.tuples():
            raise IncrementalError(
                f"materialization of {subquery.output!r} disagrees with the "
                f"planned {result.strategy!r} program: "
                f"{len(state.output)} vs {len(expected)} tuples"
            )
        produced[subquery.output] = state.output
        states.append(state)

    roots = set(sgf.root_names)
    refreshed = GumboResult(
        query=sgf,
        strategy=result.strategy,
        program=result.program,
        outputs={name: rel for name, rel in produced.items() if name in roots},
        all_outputs=dict(produced),
        metrics=result.metrics,
        choice=result.choice,
    )
    return Materialization(
        query=sgf,
        database=database,
        states=states,
        result=refreshed,
        requested_strategy=strategy if strategy is not None else "auto",
    )


# -- refreshing -------------------------------------------------------------------


class _EngineEvaluator:
    """Computes post-delta condition values by running restricted MR programs."""

    def __init__(
        self,
        materialization: Materialization,
        backend: ExecutionBackend,
        options: Optional[GumboOptions] = None,
    ) -> None:
        self.materialization = materialization
        self.backend = backend
        self.options = options or GumboOptions()
        self.engine_runs = 0
        self.simulated_s = 0.0

    def __call__(
        self,
        state: _StatementState,
        affected: List[Row],
        bindings: Dict[Row, Dict[Variable, object]],
    ) -> Dict[Row, bool]:
        if not state.guard_vars:
            # A constant-only guard has no variables to project; every
            # conforming row shares one condition value — evaluate directly.
            return _direct_satisfies(state, affected, bindings)
        restricted = self._restricted_database(state, affected, bindings)
        program = self._program_for(state)
        run = self.backend.run_program(program, restricted)
        self.engine_runs += 1
        self.simulated_s += run.metrics.total_time
        satisfied = run.outputs[state.delta_query.output].tuples()
        result: Dict[Row, bool] = {}
        for row in affected:
            binding = bindings[row]
            witness = tuple(binding[v] for v in state.guard_vars)
            result[row] = witness in satisfied
        return result

    def _program_for(self, state: _StatementState):
        """The (cached) restricted MR program of one statement.

        The delta query selects the *full guard binding* — one output tuple
        per satisfying guard row, so projection never collapses two affected
        rows — from the renamed restricted guard, under the statement's
        original condition.  It is planned through the ordinary strategy
        machinery: the fused 1-ROUND job when the shared-join-key condition
        holds, the MSJ+EVAL two-round plan otherwise.
        """
        if state.delta_program is not None:
            return state.delta_program
        guard = state.guard
        delta_guard = Atom(DELTA_PREFIX + guard.relation, guard.terms)
        delta_query = BSGFQuery(
            output=DELTA_PREFIX + state.query.output,
            projection=state.guard_vars,
            guard=delta_guard,
            condition=state.query.condition,
        )
        strategy = ONE_ROUND if one_round_applicable(delta_query) else PAR
        state.delta_query = delta_query
        state.delta_program = build_bsgf_program(
            [delta_query], strategy, estimator=None, options=self.options
        )
        return state.delta_program

    def _restricted_database(
        self,
        state: _StatementState,
        affected: List[Row],
        bindings: Dict[Row, Dict[Variable, object]],
    ) -> Database:
        """Affected guard rows + only the conditional rows they can probe."""
        mat = self.materialization
        restricted = Database()
        guard_name = state.guard.relation
        delta_guard = Relation(
            DELTA_PREFIX + guard_name,
            state.guard.arity,
            mat.bytes_per_field(guard_name),
        )
        for row in affected:
            delta_guard.add(row)
        restricted.add_relation(delta_guard)

        needed: Dict[str, set] = {}
        arities: Dict[str, int] = {}
        for atom, index in state.indexes.items():
            keys = {index.key_of(bindings[row]) for row in affected}
            rows = needed.setdefault(atom.relation, set())
            for key in keys:
                rows.update(index.rows_by_key.get(key, ()))
            arities.setdefault(
                atom.relation, mat.relation_arity(atom.relation) or atom.arity
            )
        for name, rows in needed.items():
            relation = Relation(name, arities[name], mat.bytes_per_field(name))
            for row in rows:
                relation.add(row)
            restricted.add_relation(relation)
        return restricted


def _direct_satisfies(
    state: _StatementState,
    affected: List[Row],
    bindings: Dict[Row, Dict[Variable, object]],
) -> Dict[Row, bool]:
    """Post-delta condition values straight from the maintained indexes."""
    return {row: state._holds_now(bindings[row]) for row in affected}


def refresh(
    materialization: Materialization,
    inserts: InsertBatch,
    backend: Optional[ExecutionBackend] = None,
    mode: str = "engine",
    options: Optional[GumboOptions] = None,
) -> DeltaResult:
    """Apply *inserts* to the materialization's database and its outputs.

    The batch is deduplicated against the stored relations (an insert of an
    existing tuple is a no-op), applied to the database, and propagated
    through every statement.  ``mode="engine"`` (with a *backend*) runs the
    restricted delta programs on the backend; ``mode="direct"`` — or a
    missing backend — evaluates against the maintained indexes.
    """
    start = perf_counter()
    result = refresh_all(
        [materialization],
        materialization.database,
        inserts,
        backend=backend,
        mode=mode,
        options=options,
    )[0]
    # Report the whole refresh (dedupe + apply + propagate) as this call's
    # wall time, not just the per-materialization propagation slice.
    return replace(result, wall_s=perf_counter() - start)


def _refresh_prepared(materialization, delta, new_satisfies):
    """Propagate an already-applied delta through every statement, in order."""
    added_by: Dict[str, FrozenSet[Row]] = {}
    removed_by: Dict[str, FrozenSet[Row]] = {}
    affected_total = 0
    for state in materialization.states:
        added, removed, affected = state.apply_delta(delta, new_satisfies)
        affected_total += affected
        if added or removed:
            delta.record(state.query.output, added, removed)
        if added:
            added_by[state.query.output] = frozenset(added)
        if removed:
            removed_by[state.query.output] = frozenset(removed)
    materialization.refreshes += 1
    return added_by, removed_by, affected_total


def refresh_all(
    materializations: List[Materialization],
    database: Database,
    inserts: InsertBatch,
    backend: Optional[ExecutionBackend] = None,
    mode: str = "engine",
    options: Optional[GumboOptions] = None,
) -> List[DeltaResult]:
    """Refresh several materializations of one shared *database* from one batch.

    The batch is deduplicated and applied to the database exactly once; each
    materialization then propagates its own scoped copy of the delta (so the
    intermediate deltas one query records never leak into another).  Every
    materialization must serve the given database.
    """
    if mode not in MODES:
        raise ValueError(f"unknown refresh mode {mode!r}; expected one of {MODES}")
    for materialization in materializations:
        if materialization.database is not database:
            raise IncrementalError(
                "refresh_all requires every materialization to serve the "
                "shared database"
            )
        clashes = set(materialization.query.output_names) & set(inserts)
        if clashes:
            raise IncrementalError(
                f"cannot insert into output relation(s) "
                f"{', '.join(sorted(clashes))}"
            )
    inserted = dedupe_inserts(database, inserts)
    apply_inserts(database, inserted)
    base = Delta(inserted=dict(inserted))
    inserted_count = sum(len(rows) for rows in inserted.values())
    results: List[DeltaResult] = []
    for materialization in materializations:
        mat_start = perf_counter()
        with obs.span(
            "incremental.refresh",
            output=materialization.query.output,
            mode=mode,
            inserted_tuples=inserted_count,
        ) as refresh_span:
            evaluator: Optional[_EngineEvaluator] = None
            if mode == "engine" and backend is not None:
                evaluator = _EngineEvaluator(materialization, backend, options)
                new_satisfies = evaluator
            else:
                new_satisfies = _direct_satisfies
            added_by, removed_by, affected = _refresh_prepared(
                materialization, base.scoped(), new_satisfies
            )
            result = DeltaResult(
                materialization=materialization,
                added=added_by,
                removed=removed_by,
                inserted_tuples=inserted_count,
                affected_guard_tuples=affected,
                engine_runs=evaluator.engine_runs if evaluator is not None else 0,
                wall_s=perf_counter() - mat_start,
                simulated_delta_s=(
                    evaluator.simulated_s if evaluator is not None else 0.0
                ),
            )
            refresh_span.set(
                affected=affected,
                added=result.added_count(),
                removed=result.removed_count(),
                engine_runs=result.engine_runs,
            )
        _REFRESH_SECONDS.observe(result.wall_s)
        results.append(result)
    return results
