"""Delta batches: the unit of change incremental evaluation consumes.

A :class:`Delta` records, per relation name, the set of tuples inserted into
and deleted from that relation by one batch of mutations.  Externally only
*insertions into base relations* are accepted (the serving layer's
``add_tuples``); internally the delta evaluator also records the insertions
and deletions of intermediate output relations as it propagates a batch
through the statements of an SGF query — with negation in conditions, an
insert into a base relation can *remove* tuples from an output, and that
removal must flow into every downstream statement reading it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Sequence, Set, Tuple

from ..model.database import Database
from ..model.relation import DEFAULT_BYTES_PER_FIELD, Relation

#: A stored tuple.
Row = Tuple[object, ...]

#: External shape of an insert batch: relation name -> rows.
InsertBatch = Mapping[str, Iterable[Sequence[object]]]


@dataclass
class Delta:
    """Per-relation inserted/deleted tuple sets of one change batch."""

    inserted: Dict[str, Set[Row]] = field(default_factory=dict)
    deleted: Dict[str, Set[Row]] = field(default_factory=dict)

    @classmethod
    def from_inserts(cls, batch: InsertBatch) -> "Delta":
        """A pure-insert delta from ``{"R": [(1, 2), ...], ...}``."""
        inserted = {
            name: {tuple(row) for row in rows} for name, rows in batch.items()
        }
        return cls(inserted={n: r for n, r in inserted.items() if r})

    def is_empty(self) -> bool:
        return not any(self.inserted.values()) and not any(self.deleted.values())

    def record(self, relation: str, added: Set[Row], removed: Set[Row]) -> None:
        """Record the output delta of a statement (for downstream readers)."""
        if added:
            self.inserted.setdefault(relation, set()).update(added)
        if removed:
            self.deleted.setdefault(relation, set()).update(removed)

    def inserted_count(self) -> int:
        return sum(len(rows) for rows in self.inserted.values())

    def scoped(self) -> "Delta":
        """A copy sharing the base row sets but with its own mappings.

        Each materialization refreshed from one shared batch records its own
        intermediate deltas; scoping keeps those from leaking across
        materializations while the (read-only) base sets stay shared.
        """
        return Delta(inserted=dict(self.inserted), deleted=dict(self.deleted))


def dedupe_inserts(database: Database, batch: InsertBatch) -> Dict[str, Set[Row]]:
    """Rows of *batch* not already stored (per relation, duplicates dropped).

    A row that is already present is not part of the delta — counting it
    would corrupt the support counters — so the effective batch is computed
    against the *pre-mutation* database.
    """
    effective: Dict[str, Set[Row]] = {}
    for name, rows in batch.items():
        relation = database.get(name)
        fresh = {
            row
            for row in (tuple(r) for r in rows)
            if relation is None or row not in relation
        }
        if fresh:
            effective[name] = fresh
    return effective


def apply_inserts(database: Database, inserted: Mapping[str, Set[Row]]) -> None:
    """Apply a deduped insert mapping, creating missing relations as needed."""
    for name, rows in inserted.items():
        if not rows:
            continue
        relation = database.get(name)
        if relation is None:
            arity = len(next(iter(rows)))
            relation = Relation(name, arity, DEFAULT_BYTES_PER_FIELD)
            database.add_relation(relation)
        for row in rows:
            relation.add(row)
