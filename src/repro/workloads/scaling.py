"""Scaling the experiment environment down to laptop size, faithfully.

The paper's experiments use 100 M-tuple relations on a 10-node Hadoop cluster.
Executing every map call in pure Python at that scale is infeasible, so the
workloads are generated with ``scale`` times fewer tuples (``scale = 1e-4`` by
default).  Because every cost-model term is of the form
``per-MB-cost × MB`` or ``MB × log_D(ceil(MB / buffer))``, the *simulated
times of the full-size system* are recovered exactly by simultaneously

* multiplying every per-MB cost constant by ``1 / scale``,
* multiplying every byte threshold (input split size, sort buffers, the
  per-reducer data allowances) by ``scale``.

With this rescaling a run over the scaled-down data produces the same number
of map tasks, the same number of reducers, the same merge-pass counts and the
same simulated seconds as a run over the paper-sized data would — only the
number of Python-level tuple operations shrinks.  :class:`ScaledEnvironment`
bundles the rescaled constants, Hadoop settings, cluster and engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..cost.constants import (
    CostConstants,
    GUMBO_MB_PER_REDUCER,
    HadoopSettings,
    PIG_INPUT_MB_PER_REDUCER,
)
from ..exec.base import ExecutionBackend, make_backend
from ..mapreduce.cluster import ClusterConfig
from ..mapreduce.engine import MapReduceEngine
from .generator import WorkloadScale

#: Default scale used by the benchmark harness (10 000-tuple guard relations).
DEFAULT_SCALE = 1e-4


@dataclass
class ScaledEnvironment:
    """The simulated cluster environment at a given workload scale."""

    scale: float = DEFAULT_SCALE
    nodes: int = 10
    constants: CostConstants = field(init=False)
    settings: HadoopSettings = field(init=False)
    cluster: ClusterConfig = field(init=False)
    workload: WorkloadScale = field(init=False)

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        base = CostConstants.paper_values()
        inverse = 1.0 / self.scale
        self.constants = replace(
            base,
            local_read=base.local_read * inverse,
            local_write=base.local_write * inverse,
            hdfs_read=base.hdfs_read * inverse,
            hdfs_write=base.hdfs_write * inverse,
            transfer=base.transfer * inverse,
            map_buffer_mb=base.map_buffer_mb * self.scale,
            reduce_buffer_mb=base.reduce_buffer_mb * self.scale,
        )
        base_settings = HadoopSettings.paper_values()
        self.settings = replace(
            base_settings, split_mb=base_settings.split_mb * self.scale
        )
        self.cluster = ClusterConfig(nodes=self.nodes, settings=self.settings)
        self.workload = WorkloadScale(factor=self.scale)

    # -- engines -----------------------------------------------------------------

    @property
    def mb_per_reducer_intermediate(self) -> float:
        return GUMBO_MB_PER_REDUCER * self.scale

    @property
    def mb_per_reducer_input(self) -> float:
        return PIG_INPUT_MB_PER_REDUCER * self.scale

    def engine(
        self, mb_per_reducer_input: Optional[float] = None
    ) -> MapReduceEngine:
        """A MapReduce engine over this environment's cluster and constants."""
        return MapReduceEngine(
            cluster=self.cluster,
            constants=self.constants,
            mb_per_reducer_intermediate=self.mb_per_reducer_intermediate,
            mb_per_reducer_input=(
                mb_per_reducer_input
                if mb_per_reducer_input is not None
                else self.mb_per_reducer_input
            ),
        )

    def backend(
        self,
        name: str = "serial",
        workers: Optional[int] = None,
        mb_per_reducer_input: Optional[float] = None,
    ) -> ExecutionBackend:
        """An execution backend over this environment's engine.

        ``name`` is ``"serial"`` or ``"parallel"`` (or an
        :class:`~repro.exec.base.ExecutionBackend` alias); ``workers`` sizes
        the parallel backend's worker pool.
        """
        return make_backend(
            name, engine=self.engine(mb_per_reducer_input), workers=workers
        )

    def baseline_engine(self, reducer_input_mb: float) -> MapReduceEngine:
        """An engine whose input-based reducer allocation uses *reducer_input_mb*
        (unscaled MB per reducer; Hive 256 MB, Pig 1024 MB)."""
        return MapReduceEngine(
            cluster=self.cluster,
            constants=self.constants,
            mb_per_reducer_intermediate=self.mb_per_reducer_intermediate,
            mb_per_reducer_input=reducer_input_mb * self.scale,
        )

    def with_nodes(self, nodes: int) -> "ScaledEnvironment":
        """A copy of the environment with a different cluster size."""
        return ScaledEnvironment(scale=self.scale, nodes=nodes)

    # -- workload sizes --------------------------------------------------------------

    def guard_tuples(self, paper_tuples: int = 100_000_000) -> int:
        """The scaled-down cardinality for a relation of *paper_tuples* rows."""
        return max(1, int(round(paper_tuples * self.scale)))

    def __repr__(self) -> str:
        return (
            f"ScaledEnvironment(scale={self.scale}, nodes={self.nodes}, "
            f"guard_tuples={self.workload.guard_tuples})"
        )
