"""The experiment queries of the paper: A1–A5, B1–B2 (Table 2), C1–C4 (Figure 6),
the A3-like scaling family of Figures 7/8 and the cost-model stress query of
Section 5.2.

Every query family comes with the schema information needed to generate its
input database (:func:`schema_for` / :func:`database_for`).  The C-query
definitions follow Figure 6 of the paper; where the figure's rendering is
ambiguous (duplicated output names, unary references to 4-ary outputs) we use
the evident intent — unary intermediate outputs referenced by unary atoms —
and note it here, since the experiments only depend on the queries' sharing
structure, not on the exact attribute choices.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..model.atoms import Atom
from ..model.database import Database
from ..model.terms import Constant, Variable
from ..query.bsgf import BSGFQuery
from ..query.conditions import (
    AtomCondition,
    Condition,
    Not,
    conjunction,
    disjunction,
)
from ..query.sgf import SGFQuery
from .generator import generate_database

# Common variables.
_X, _Y, _Z, _W = Variable("x"), Variable("y"), Variable("z"), Variable("w")
_XBAR = (_X, _Y, _Z, _W)

#: Identifiers of the BSGF experiment queries (Table 2).
BSGF_QUERY_IDS = ("A1", "A2", "A3", "A4", "A5", "B1", "B2")

#: Identifiers of the SGF experiment queries (Figure 6).
SGF_QUERY_IDS = ("C1", "C2", "C3", "C4")


def _atom(name: str, *variables: Variable) -> AtomCondition:
    return AtomCondition(Atom(name, tuple(variables)))


def _guard(name: str) -> Atom:
    return Atom(name, _XBAR)


def _star_condition(
    relations: Sequence[str], variables: Sequence[Variable]
) -> Condition:
    return conjunction([_atom(rel, var) for rel, var in zip(relations, variables)])


# -- Table 2: BSGF queries -------------------------------------------------------------


def query_a1() -> List[BSGFQuery]:
    """A1 — guard sharing: ``R(x̄) ⋉ S(x) ∧ T(y) ∧ U(z) ∧ V(w)``."""
    condition = _star_condition(["S", "T", "U", "V"], _XBAR)
    return [BSGFQuery("A1", _XBAR, _guard("R"), condition)]


def query_a2() -> List[BSGFQuery]:
    """A2 — guard & conditional *name* sharing: ``R(x̄) ⋉ S(x) ∧ S(y) ∧ S(z) ∧ S(w)``."""
    condition = _star_condition(["S", "S", "S", "S"], _XBAR)
    return [BSGFQuery("A2", _XBAR, _guard("R"), condition)]


def query_a3() -> List[BSGFQuery]:
    """A3 — guard & conditional *key* sharing: ``R(x̄) ⋉ S(x) ∧ T(x) ∧ U(x) ∧ V(x)``."""
    condition = _star_condition(["S", "T", "U", "V"], [_X, _X, _X, _X])
    return [BSGFQuery("A3", _XBAR, _guard("R"), condition)]


def query_a4() -> List[BSGFQuery]:
    """A4 — no sharing: two queries over disjoint guards and conditionals."""
    first = BSGFQuery(
        "A4R", _XBAR, _guard("R"), _star_condition(["S", "T", "U", "V"], _XBAR)
    )
    second = BSGFQuery(
        "A4G", _XBAR, _guard("G"), _star_condition(["W", "X", "Y", "V2"], _XBAR)
    )
    return [first, second]


def query_a5() -> List[BSGFQuery]:
    """A5 — conditional name sharing: two guards sharing all conditional relations."""
    condition = _star_condition(["S", "T", "U", "V"], _XBAR)
    return [
        BSGFQuery("A5R", _XBAR, _guard("R"), condition),
        BSGFQuery("A5G", _XBAR, _guard("G"), condition),
    ]


def query_b1() -> List[BSGFQuery]:
    """B1 — large conjunctive query: S, T, U, V each applied to x, y, z and w."""
    atoms = [
        _atom(rel, var) for var in _XBAR for rel in ("S", "T", "U", "V")
    ]
    return [BSGFQuery("B1", _XBAR, _guard("R"), conjunction(atoms))]


def query_b2() -> List[BSGFQuery]:
    """B2 — the uniqueness query: a large Boolean combination on a single key."""
    s, t, u, v = _atom("S", _X), _atom("T", _X), _atom("U", _X), _atom("V", _X)
    condition = disjunction(
        [
            conjunction([s, Not(t), Not(u), Not(v)]),
            conjunction([Not(s), t, Not(u), Not(v)]),
            conjunction([s, Not(t), u, Not(v)]),
            conjunction([Not(s), Not(t), Not(u), v]),
        ]
    )
    return [BSGFQuery("B2", _XBAR, _guard("R"), condition)]


def a3_family(num_atoms: int, output: str = "A3N") -> List[BSGFQuery]:
    """The A3-like scaling family of Figures 7/8: *num_atoms* conditionals on key x.

    Conditional relations are named ``C1 ... Cn``.
    """
    if num_atoms < 1:
        raise ValueError("need at least one conditional atom")
    atoms = [_atom(f"C{i + 1}", _X) for i in range(num_atoms)]
    return [BSGFQuery(output, _XBAR, _guard("R"), conjunction(atoms))]


def cost_model_stress_query(groups: int = 4, keys: int = 12) -> List[BSGFQuery]:
    """The Section 5.2 cost-model query: ``R(x̄') ⋉ ⋀_{g, k} S_g(x_k, c)``.

    The guard has *keys* distinct variables; every conditional relation
    ``S_1..S_groups`` is probed on each of them with a constant in the second
    column that matches no stored tuple, so the conditionals contribute almost
    nothing to the map output while the guard contributes a lot — exactly the
    asymmetry that separates the Gumbo and Wang cost models.
    """
    variables = tuple(Variable(f"x{i + 1}") for i in range(keys))
    guard = Atom("R", variables)
    constant = Constant("c#never")
    atoms = [
        AtomCondition(Atom(f"S{g + 1}", (variables[k], constant)))
        for g in range(groups)
        for k in range(keys)
    ]
    return [BSGFQuery("CM", variables, guard, conjunction(atoms))]


# -- Figure 6: SGF queries ---------------------------------------------------------------


def query_c1() -> SGFQuery:
    """C1 — two independent two-level chains whose leaves share conditionals."""
    return SGFQuery(
        (
            BSGFQuery(
                "Z1", (_X,), _guard("R"), conjunction([_atom("S", _X), _atom("S", _Y)])
            ),
            BSGFQuery(
                "Z2", (_X,), _guard("G"), conjunction([_atom("T", _X), _atom("T", _Y)])
            ),
            BSGFQuery(
                "Z3", (_X,), _guard("H"), conjunction([_atom("U", _X), _atom("U", _Y)])
            ),
            BSGFQuery(
                "Z4",
                (_X,),
                _guard("G"),
                disjunction([_atom("Z1", _Z), _atom("Z1", _W)]),
            ),
            BSGFQuery(
                "Z5",
                (_X,),
                _guard("H"),
                disjunction([_atom("Z3", _Z), _atom("Z3", _W)]),
            ),
        ),
        name="C1",
    )


def query_c2() -> SGFQuery:
    """C2 — three base subqueries feeding three second-level subqueries."""
    return SGFQuery(
        (
            BSGFQuery(
                "Z1", (_X,), _guard("R"), conjunction([_atom("S", _X), _atom("S", _Y)])
            ),
            BSGFQuery(
                "Z2", (_X,), _guard("G"), conjunction([_atom("T", _X), _atom("T", _Y)])
            ),
            BSGFQuery(
                "Z3", (_X,), _guard("H"), conjunction([_atom("U", _X), _atom("U", _Y)])
            ),
            BSGFQuery(
                "Z4",
                (_X,),
                _guard("G"),
                conjunction([_atom("Z1", _X), _atom("Z1", _Y)]),
            ),
            BSGFQuery(
                "Z5",
                (_X,),
                _guard("H"),
                conjunction([_atom("Z2", _X), _atom("Z2", _Y)]),
            ),
            BSGFQuery(
                "Z6",
                (_X,),
                _guard("R"),
                conjunction([_atom("Z3", _X), _atom("Z3", _Y)]),
            ),
        ),
        name="C2",
    )


def query_c3() -> SGFQuery:
    """C3 — a complex three-level query with many distinct atoms."""
    return SGFQuery(
        (
            BSGFQuery(
                "Z11", (_Z,), _guard("R"), conjunction([_atom("S", _X), _atom("T", _Y)])
            ),
            BSGFQuery("Z12", (_Z,), _guard("R"), _atom("T", _Y)),
            BSGFQuery("Z13", (_Z,), _guard("I"), Not(_atom("S", _W))),
            BSGFQuery(
                "Z21",
                (_Z,),
                _guard("G"),
                conjunction([_atom("Z11", _X), _atom("U", _Y)]),
            ),
            BSGFQuery(
                "Z22",
                (_Z,),
                _guard("H"),
                conjunction(
                    [disjunction([_atom("U", _Y), _atom("V", _Y)]), _atom("Z12", _X)]
                ),
            ),
            BSGFQuery(
                "Z23",
                (_Z,),
                _guard("R"),
                conjunction(
                    [_atom("U", _X), _atom("T", _Y), _atom("V", _Z), _atom("Z13", _W)]
                ),
            ),
            BSGFQuery(
                "Z31",
                (_Z,),
                _guard("I"),
                conjunction([_atom("Z22", _X), _atom("T", _X), _atom("V", _Y)]),
            ),
        ),
        name="C3",
    )


def query_c4() -> SGFQuery:
    """C4 — two levels with many overlapping atoms across the first level."""
    return SGFQuery(
        (
            BSGFQuery(
                "Z11", (_Y,), _guard("R"), disjunction([_atom("S", _X), _atom("T", _Y)])
            ),
            BSGFQuery(
                "Z12", (_Y,), _guard("R"), disjunction([_atom("U", _Z), _atom("S", _X)])
            ),
            BSGFQuery(
                "Z13", (_Y,), _guard("G"), disjunction([_atom("U", _X), _atom("V", _Y)])
            ),
            BSGFQuery(
                "Z14", (_Y,), _guard("G"), disjunction([_atom("S", _Z), _atom("U", _X)])
            ),
            BSGFQuery(
                "Z21",
                (_Y,),
                _guard("H"),
                disjunction(
                    [
                        _atom("Z11", _X),
                        _atom("Z12", _Y),
                        _atom("Z13", _Z),
                        _atom("Z14", _W),
                    ]
                ),
            ),
        ),
        name="C4",
    )


# -- lookup & schema helpers --------------------------------------------------------------------


def bsgf_query_set(query_id: str) -> List[BSGFQuery]:
    """The list of BSGF queries for an experiment identifier (A1–A5, B1, B2)."""
    builders = {
        "A1": query_a1,
        "A2": query_a2,
        "A3": query_a3,
        "A4": query_a4,
        "A5": query_a5,
        "B1": query_b1,
        "B2": query_b2,
    }
    key = query_id.upper()
    if key not in builders:
        raise KeyError(f"unknown BSGF query id {query_id!r}")
    return builders[key]()


def sgf_query(query_id: str) -> SGFQuery:
    """The SGF query for an experiment identifier (C1–C4)."""
    builders = {"C1": query_c1, "C2": query_c2, "C3": query_c3, "C4": query_c4}
    key = query_id.upper()
    if key not in builders:
        raise KeyError(f"unknown SGF query id {query_id!r}")
    return builders[key]()


def workload_query(query_id: str) -> SGFQuery:
    """Any Section 5 workload query (A1–A5, B1–B2, C1–C4) as an SGF query.

    BSGF query *sets* are wrapped into a flat (dependency-free) SGF query, so
    every workload can be fed uniformly to :class:`~repro.core.gumbo.Gumbo`,
    the AUTO strategy selector and the query service.
    """
    key = query_id.upper()
    if key in SGF_QUERY_IDS:
        return sgf_query(key)
    return SGFQuery(tuple(bsgf_query_set(key)), name=key)


def section5_workloads() -> List[Tuple[str, SGFQuery]]:
    """Every Section 5 workload query, as (identifier, SGF query) pairs."""
    return [
        (query_id, workload_query(query_id))
        for query_id in (*BSGF_QUERY_IDS, *SGF_QUERY_IDS)
    ]


def schema_for(
    queries: Sequence[BSGFQuery],
    produced: Optional[Sequence[str]] = None,
) -> Tuple[Dict[str, int], Dict[str, int]]:
    """Split the relations of *queries* into (guards, conditionals) name → arity.

    Relations listed in *produced* (outputs of earlier subqueries of an SGF
    query) are excluded — they are computed, not generated.
    """
    produced_set = set(produced or ())
    guards: Dict[str, int] = {}
    conditionals: Dict[str, int] = {}
    for query in queries:
        guard = query.guard
        if guard.relation not in produced_set:
            guards[guard.relation] = guard.arity
        for atom in query.conditional_atoms:
            if atom.relation in produced_set:
                continue
            if atom.relation in guards:
                continue
            conditionals[atom.relation] = atom.arity
    return guards, conditionals


def database_for(
    queries,
    guard_tuples: int,
    conditional_tuples: Optional[int] = None,
    selectivity: float = 0.5,
    seed: int = 0,
    conditional_constants: Optional[Dict[str, Dict[int, object]]] = None,
) -> Database:
    """Generate the input database for a query set or SGF query."""
    if isinstance(queries, SGFQuery):
        produced = list(queries.output_names)
        query_list = list(queries.subqueries)
    else:
        query_list = list(queries)
        produced = [q.output for q in query_list]
    guards, conditionals = schema_for(query_list, produced=produced)
    return generate_database(
        guards,
        conditionals,
        guard_tuples=guard_tuples,
        conditional_tuples=conditional_tuples,
        selectivity=selectivity,
        seed=seed,
        conditional_constants=conditional_constants,
    )
