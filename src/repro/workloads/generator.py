"""Synthetic data generation matching the paper's experimental setup.

Section 5.1: guard relations hold 100 M 4-ary tuples (4 GB), conditional
relations hold the same number of unary tuples (1 GB), and 50 % of the
conditional tuples match the guard tuples; the selectivity experiments of
Section 5.4 additionally vary the fraction of guard tuples a conditional
matches between 0.1 and 0.9.

:func:`generate_guard` and :func:`generate_conditional` produce deterministic
scaled-down versions of these relations:

* guard values are drawn uniformly from a domain whose size scales with the
  relation so that duplicate join values appear at realistic rates;
* a conditional relation with selectivity σ contains (approximately) the first
  σ·|domain| domain values — so a fraction σ of the guard tuples match — plus
  non-matching filler values to reach the requested cardinality.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..model.database import Database
from ..model.relation import Relation

#: Bytes per field reproducing the paper's relation sizes (4 GB / 100 M 4-ary
#: tuples and 1 GB / 100 M unary tuples).
PAPER_BYTES_PER_FIELD = 10

#: Default ratio between domain size and relation cardinality.  A smaller
#: domain produces more duplicate join values; 1.0 makes values mostly unique.
DEFAULT_DOMAIN_RATIO = 1.0


@dataclass(frozen=True)
class WorkloadScale:
    """How far the paper's 100 M-tuple workload is scaled down.

    ``factor`` multiplies the paper's tuple counts: 1e-4 gives 10 000-tuple
    guard relations, which keeps full experiment sweeps in the seconds range
    while preserving all data-volume *ratios* (see
    :mod:`repro.workloads.scaling` for how the cost environment is rescaled so
    that absolute simulated times are preserved too).
    """

    factor: float = 1e-4
    paper_guard_tuples: int = 100_000_000
    paper_conditional_tuples: int = 100_000_000

    @property
    def guard_tuples(self) -> int:
        return max(1, int(round(self.paper_guard_tuples * self.factor)))

    @property
    def conditional_tuples(self) -> int:
        return max(1, int(round(self.paper_conditional_tuples * self.factor)))


def _domain_size(tuples: int, domain_ratio: float) -> int:
    return max(2, int(round(tuples * domain_ratio)))


def zipf_values(
    rng: random.Random, count: int, domain: int, skew: float = 1.0
) -> List[int]:
    """Draw *count* values from ``range(domain)`` under a Zipf distribution.

    Value ``v`` is drawn with probability proportional to ``1/(v+1)**skew``,
    so small values are heavy hitters — the distribution used for skewed join
    keys (Section 6's heavy-hitter discussion).  ``skew=0`` degenerates to the
    uniform distribution.  Shared here so the skew experiments and the
    workload fuzzer's value profiles draw from one implementation.
    """
    if domain < 1:
        raise ValueError("domain must contain at least one value")
    weights = [1.0 / (v + 1) ** skew for v in range(domain)]
    return rng.choices(range(domain), weights=weights, k=count)


def generate_guard(
    name: str,
    tuples: int,
    arity: int = 4,
    domain_ratio: float = DEFAULT_DOMAIN_RATIO,
    seed: int = 0,
    bytes_per_field: int = PAPER_BYTES_PER_FIELD,
) -> Relation:
    """A guard relation of *tuples* rows with *arity* uniformly-drawn columns."""
    rng = random.Random((seed, name, "guard").__repr__())
    domain = _domain_size(tuples, domain_ratio)
    relation = Relation(name, arity, bytes_per_field)
    while len(relation) < tuples:
        relation.add(tuple(rng.randrange(domain) for _ in range(arity)))
    return relation


def generate_conditional(
    name: str,
    tuples: int,
    guard_tuples: int,
    selectivity: float = 0.5,
    arity: int = 1,
    domain_ratio: float = DEFAULT_DOMAIN_RATIO,
    seed: int = 0,
    bytes_per_field: int = PAPER_BYTES_PER_FIELD,
    constant_columns: Optional[Dict[int, object]] = None,
) -> Relation:
    """A conditional relation matching a fraction *selectivity* of guard tuples.

    The matching column (column 0) contains the first ``selectivity·domain``
    values of the guard domain; remaining rows are filled with values outside
    the guard domain so the relation reaches the requested cardinality without
    increasing the match rate.  ``constant_columns`` can pin specific columns
    to fixed values (used by the cost-model stress query, whose conditionals
    are filtered away entirely by a constant that never occurs).
    """
    if not 0.0 <= selectivity <= 1.0:
        raise ValueError("selectivity must lie in [0, 1]")
    rng = random.Random((seed, name, "conditional").__repr__())
    domain = _domain_size(guard_tuples, domain_ratio)
    matching_values = int(round(domain * selectivity))
    relation = Relation(name, arity, bytes_per_field)
    constant_columns = constant_columns or {}

    def build_row(first: object) -> Tuple[object, ...]:
        row: List[object] = [first]
        for column in range(1, arity):
            if column in constant_columns:
                row.append(constant_columns[column])
            else:
                row.append(rng.randrange(domain))
        if 0 in constant_columns:
            row[0] = constant_columns[0]
        return tuple(row)

    for value in range(matching_values):
        if len(relation) >= tuples:
            break
        relation.add(build_row(value))
    filler = domain
    while len(relation) < tuples:
        relation.add(build_row(filler))
        filler += 1
    return relation


def generate_database(
    guards: Dict[str, int],
    conditionals: Dict[str, int],
    guard_tuples: int,
    conditional_tuples: Optional[int] = None,
    selectivity: float = 0.5,
    seed: int = 0,
    domain_ratio: float = DEFAULT_DOMAIN_RATIO,
    conditional_constants: Optional[Dict[str, Dict[int, object]]] = None,
) -> Database:
    """Build a database with the given guard and conditional relations.

    *guards* and *conditionals* map relation names to arities.  All guards
    share the same cardinality (*guard_tuples*) and all conditionals share
    *conditional_tuples* (defaults to the guard cardinality, as in the paper).
    """
    conditional_tuples = (
        guard_tuples if conditional_tuples is None else conditional_tuples
    )
    conditional_constants = conditional_constants or {}
    database = Database()
    for name, arity in sorted(guards.items()):
        database.add_relation(
            generate_guard(name, guard_tuples, arity=arity, seed=seed,
                           domain_ratio=domain_ratio)
        )
    for name, arity in sorted(conditionals.items()):
        database.add_relation(
            generate_conditional(
                name,
                conditional_tuples,
                guard_tuples,
                selectivity=selectivity,
                arity=arity,
                seed=seed,
                domain_ratio=domain_ratio,
                constant_columns=conditional_constants.get(name),
            )
        )
    return database
