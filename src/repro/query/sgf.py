"""Strictly guarded fragment (SGF) queries: sequences of BSGF subqueries.

An SGF query (Section 3.1) is a collection ``Z_1 := ξ_1; ...; Z_n := ξ_n``
of BSGF queries where each ``ξ_i`` may mention the output relations ``Z_j``
of earlier subqueries (``j < i``).  The output of the SGF query is the last
relation ``Z_n`` (or, for *query sets* as used in the experiments of
Section 5.3, all root relations).

:class:`SGFQuery` validates that the sequence is well-formed (outputs are
distinct, references only go backwards) and exposes the dependency structure
used by ``Greedy-SGF``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Sequence, Set, Tuple

from .bsgf import BSGFQuery


class SGFValidationError(ValueError):
    """Raised when a sequence of BSGF queries is not a valid SGF query."""


@dataclass(frozen=True)
class SGFQuery:
    """A (possibly nested) SGF query: an ordered sequence of BSGF subqueries."""

    subqueries: Tuple[BSGFQuery, ...]
    name: str = "Q"

    def __post_init__(self) -> None:
        object.__setattr__(self, "subqueries", tuple(self.subqueries))
        self.validate()

    # -- validation ------------------------------------------------------------

    def validate(self) -> None:
        if not self.subqueries:
            raise SGFValidationError("an SGF query needs at least one subquery")
        seen_outputs: Set[str] = set()
        for query in self.subqueries:
            if query.output in seen_outputs:
                raise SGFValidationError(
                    f"duplicate output relation {query.output!r}"
                )
            referenced = query.relation_names
            forward = referenced & self._later_outputs(query)
            if query.output in referenced:
                raise SGFValidationError(
                    f"subquery {query.output!r} references its own output"
                )
            if forward:
                names = ", ".join(sorted(forward))
                raise SGFValidationError(
                    f"subquery {query.output!r} references later output(s) {names}"
                )
            seen_outputs.add(query.output)

    def _later_outputs(self, query: BSGFQuery) -> FrozenSet[str]:
        index = self.subqueries.index(query)
        return frozenset(q.output for q in self.subqueries[index + 1 :])

    # -- structure ---------------------------------------------------------------

    def __iter__(self) -> Iterator[BSGFQuery]:
        return iter(self.subqueries)

    def __len__(self) -> int:
        return len(self.subqueries)

    def __getitem__(self, index: int) -> BSGFQuery:
        return self.subqueries[index]

    @property
    def output(self) -> str:
        """The output relation of the SGF query (the last subquery's output)."""
        return self.subqueries[-1].output

    @property
    def output_names(self) -> Tuple[str, ...]:
        """Outputs of all subqueries, in definition order."""
        return tuple(q.output for q in self.subqueries)

    @property
    def intermediate_names(self) -> FrozenSet[str]:
        """Output names that are consumed by later subqueries."""
        produced = set(self.output_names)
        consumed: Set[str] = set()
        for query in self.subqueries:
            consumed.update(query.relation_names & produced)
        return frozenset(consumed)

    @property
    def root_names(self) -> Tuple[str, ...]:
        """Outputs not consumed by any other subquery (the user-visible results)."""
        consumed = self.intermediate_names
        return tuple(name for name in self.output_names if name not in consumed)

    @property
    def base_relation_names(self) -> FrozenSet[str]:
        """Relation symbols read from the database (not produced by subqueries)."""
        produced = set(self.output_names)
        names: Set[str] = set()
        for query in self.subqueries:
            names.update(query.relation_names - produced)
        return frozenset(names)

    def subquery(self, output: str) -> BSGFQuery:
        """Look up a subquery by its output relation name."""
        for query in self.subqueries:
            if query.output == output:
                return query
        raise KeyError(output)

    def dependencies(self) -> Dict[str, FrozenSet[str]]:
        """Map each subquery output to the outputs of subqueries it depends on.

        An edge ``Z_i -> Z_j`` in the paper's dependency graph ``G_Q`` exists
        when ``Z_i`` is mentioned in ``ξ_j``; here we return, for each ``Z_j``,
        the set of such ``Z_i``.
        """
        produced = set(self.output_names)
        result: Dict[str, FrozenSet[str]] = {}
        for query in self.subqueries:
            result[query.output] = frozenset(query.relation_names & produced)
        return result

    def is_basic(self) -> bool:
        """True when the query consists of a single BSGF subquery."""
        return len(self.subqueries) == 1

    def levels(self) -> List[List[BSGFQuery]]:
        """Partition subqueries into bottom-up dependency levels.

        Level 0 contains subqueries with no dependencies on other subqueries;
        level ``k`` contains subqueries all of whose dependencies live in
        levels ``< k``.  This is the structure used by the PARUNIT strategy of
        Section 5.3 ("level by level").
        """
        deps = self.dependencies()
        level_of: Dict[str, int] = {}
        for query in self.subqueries:  # definition order is a topological order
            parents = deps[query.output]
            level_of[query.output] = (
                0 if not parents else 1 + max(level_of[p] for p in parents)
            )
        max_level = max(level_of.values())
        levels: List[List[BSGFQuery]] = [[] for _ in range(max_level + 1)]
        for query in self.subqueries:
            levels[level_of[query.output]].append(query)
        return levels

    # -- construction helpers --------------------------------------------------------

    @classmethod
    def from_queries(
        cls, queries: Iterable[BSGFQuery], name: str = "Q"
    ) -> "SGFQuery":
        return cls(tuple(queries), name=name)

    @classmethod
    def union(cls, sgf_queries: Sequence["SGFQuery"], name: str = "U") -> "SGFQuery":
        """Combine several SGF queries into one (Section 4.7).

        Output relation names must be globally unique across the inputs.
        """
        combined: List[BSGFQuery] = []
        for sgf in sgf_queries:
            combined.extend(sgf.subqueries)
        return cls(tuple(combined), name=name)

    # -- rendering ---------------------------------------------------------------

    def unparse(self) -> str:
        """Render the program in the parser's concrete syntax.

        The concrete syntax does not carry the query's *name*, so re-parsing
        is equal once the name is supplied:
        ``parse_sgf(q.unparse(), name=q.name) == q``
        (see :mod:`repro.query.unparse`).
        """
        from .unparse import unparse_sgf

        return unparse_sgf(self)

    def __str__(self) -> str:
        return "\n".join(str(q) for q in self.subqueries)
