"""Reference (non-MapReduce) evaluator for BSGF and SGF queries.

This module implements the *semantics by definition* of Section 3.1: a BSGF
query ``Z := SELECT x̄ FROM R(t̄) WHERE C`` returns every tuple ``ā`` for which
some substitution ``σ`` over the guard's variables satisfies

* ``σ(x̄) = ā``,
* ``R(σ(t̄)) ∈ DB``, and
* ``C`` evaluates to true under ``σ``, where an atom ``T(v̄)`` holds iff a
  ``T``-fact exists in ``DB`` agreeing with the guard fact on the shared
  variables.

The evaluator is deliberately simple and direct — it exists to define correct
answers against which every MapReduce evaluation strategy is tested, and to
power examples on small data.  It indexes conditional relations by join key so
it stays usable on the scaled-down experiment datasets as well.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from ..model.atoms import Atom
from ..model.database import Database
from ..model.relation import Relation
from ..model.terms import Variable
from .bsgf import BSGFQuery
from .conditions import Condition
from .sgf import SGFQuery


class _ConditionalIndex:
    """Index of a conditional atom: the set of join-key values it asserts.

    For a conditional atom κ with join key z̄ (the variables shared with the
    guard), the semi-join test for a guard fact ``f`` is simply
    ``pi_{guard; z̄}(f) ∈ {pi_{κ; z̄}(g) | g |= κ}``.  When the atom shares no
    variables with the guard the test degenerates to "does any conforming fact
    exist" (a Boolean), which the index represents with an empty key.
    """

    def __init__(self, database: Database, guard: Atom, conditional: Atom) -> None:
        shared = guard.shared_variables(conditional)
        self.join_key: Tuple[Variable, ...] = tuple(
            v for v in guard.variables if v in shared
        )
        self.keys: Set[Tuple[object, ...]] = set()
        relation = database.get(conditional.relation)
        if relation is None:
            return
        for row in relation:
            binding = conditional.match(row)
            if binding is None:
                continue
            self.keys.add(tuple(binding[v] for v in self.join_key))

    def holds_for(self, guard_binding: Dict[Variable, object]) -> bool:
        key = tuple(guard_binding[v] for v in self.join_key)
        return key in self.keys


def evaluate_bsgf(
    query: BSGFQuery,
    database: Database,
    output_bytes_per_field: Optional[int] = None,
) -> Relation:
    """Evaluate a single BSGF query directly, returning the output relation."""
    guard_relation = database.get(query.guard.relation)
    arity = max(len(query.projection), 1)
    bytes_per_field = (
        output_bytes_per_field
        if output_bytes_per_field is not None
        else (guard_relation.bytes_per_field if guard_relation is not None else 10)
    )
    output = Relation(query.output, arity, bytes_per_field)
    if guard_relation is None:
        return output

    indexes: Dict[Atom, _ConditionalIndex] = {
        atom: _ConditionalIndex(database, query.guard, atom)
        for atom in query.conditional_atoms
    }

    for row in guard_relation:
        binding = query.guard.match(row)
        if binding is None:
            continue
        holds = query.condition.evaluate(
            lambda atom: indexes[atom].holds_for(binding)
        )
        if holds:
            projected = tuple(binding[v] for v in query.projection)
            output.add(projected if projected else (row[0],))
    return output


def evaluate_sgf(
    query: SGFQuery,
    database: Database,
    keep_intermediates: bool = True,
) -> Dict[str, Relation]:
    """Evaluate an SGF query bottom-up, returning all computed output relations.

    The input database is not modified; intermediate results are added to a
    working copy so later subqueries can reference earlier outputs.  The
    returned dictionary maps every subquery output name to its relation (or
    only the root outputs when *keep_intermediates* is false).
    """
    working = database.copy()
    results: Dict[str, Relation] = {}
    for subquery in query:
        relation = evaluate_bsgf(subquery, working)
        working.add_relation(relation)
        results[subquery.output] = relation
    if not keep_intermediates:
        roots = set(query.root_names)
        results = {name: rel for name, rel in results.items() if name in roots}
    return results


def evaluate_semijoin(
    guard: Atom,
    conditional: Atom,
    projection: Tuple[Variable, ...],
    database: Database,
    output_name: str = "X",
) -> Relation:
    """Directly evaluate one semi-join ``pi_projection(guard ⋉ conditional)``.

    Used as the reference for MSJ-operator tests.
    """
    query = BSGFQuery(
        output=output_name,
        projection=projection,
        guard=guard,
        condition=_single_atom_condition(conditional),
    )
    return evaluate_bsgf(query, database)


def _single_atom_condition(atom: Atom) -> Condition:
    from .conditions import AtomCondition

    return AtomCondition(atom)


def relations_equal(left: Relation, right: Relation) -> bool:
    """Set equality of two relations' tuples (names and sizes ignored)."""
    return left.tuples() == right.tuples()


def result_sets(
    results: Dict[str, Relation], names: Optional[Iterable[str]] = None
) -> Dict[str, FrozenSet[Tuple[object, ...]]]:
    """Convert evaluation results to plain frozensets for easy comparison."""
    selected = list(results) if names is None else list(names)
    return {name: frozenset(results[name].tuples()) for name in selected}
