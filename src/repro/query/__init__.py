"""SGF query language: ASTs, validation, parsing, dependency analysis, semantics."""

from .bsgf import BSGFQuery, GuardednessError, SemiJoinSpec, select
from .conditions import (
    TRUE,
    And,
    AtomCondition,
    Condition,
    Not,
    Or,
    atom,
    conjunction,
    disjunction,
    evaluate_with_index,
    truth_assignment,
)
from .dependency import CycleError, DependencyGraph, MultiwaySort, groups_to_queries
from .parser import ParseError, parse_atom, parse_bsgf, parse_condition, parse_sgf
from .reference import (
    evaluate_bsgf,
    evaluate_semijoin,
    evaluate_sgf,
    relations_equal,
    result_sets,
)
from .sgf import SGFQuery, SGFValidationError
from .unparse import (
    UnparseError,
    unparse_atom,
    unparse_bsgf,
    unparse_condition,
    unparse_constant,
    unparse_sgf,
    unparse_term,
)

__all__ = [
    "And",
    "AtomCondition",
    "BSGFQuery",
    "Condition",
    "CycleError",
    "DependencyGraph",
    "GuardednessError",
    "MultiwaySort",
    "Not",
    "Or",
    "ParseError",
    "SGFQuery",
    "SGFValidationError",
    "SemiJoinSpec",
    "TRUE",
    "UnparseError",
    "atom",
    "conjunction",
    "disjunction",
    "evaluate_bsgf",
    "evaluate_semijoin",
    "evaluate_sgf",
    "evaluate_with_index",
    "groups_to_queries",
    "parse_atom",
    "parse_bsgf",
    "parse_condition",
    "parse_sgf",
    "relations_equal",
    "result_sets",
    "select",
    "truth_assignment",
    "unparse_atom",
    "unparse_bsgf",
    "unparse_condition",
    "unparse_constant",
    "unparse_sgf",
    "unparse_term",
]
