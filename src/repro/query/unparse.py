"""Pretty-printer (unparser) for (B)SGF queries: the inverse of the parser.

:func:`unparse_sgf` renders query objects back into the paper's SQL-like
concrete syntax accepted by :mod:`repro.query.parser`, with the round-trip
guarantee

    ``parse_sgf(unparse_sgf(q), name=q.name) == q``

for every query the concrete syntax can express.  (The concrete syntax does
not carry the query's name, hence the explicit ``name=`` on re-parse; with
the default name the plain ``parse_sgf(unparse_sgf(q)) == q`` holds.)  This is the contract the
workload fuzzer (:mod:`repro.fuzz`) builds on: every randomly generated
program is unparsed and re-parsed so that counterexample repro scripts are
plain query text, and so that the generator can never silently produce a
query outside the parseable fragment.

The guarantee requires care in two places:

* **Constants.**  The parser produces ``int``/``float`` constants from NUMBER
  tokens and ``str`` constants from quoted strings.  The unparser therefore
  renders exactly those value types, choosing a quote style not occurring in
  the string, and raises :class:`UnparseError` for values the concrete syntax
  cannot express (booleans, ``None``, floats whose ``repr`` uses scientific
  notation, strings containing both quote characters, ...).

* **Tree shape.**  ``AND``/``OR`` chains are parsed left-associatively, so a
  right-nested ``And(a, And(b, c))`` must be rendered with explicit
  parentheses while the left-nested chain must not, or re-parsing would
  change the AST.  :func:`unparse_condition` inserts the minimal parentheses
  preserving the exact tree.
"""

from __future__ import annotations

import math
import re
from typing import Union

from ..model.atoms import Atom
from ..model.terms import Constant, Term, Variable
from .conditions import And, AtomCondition, Condition, Not, Or, TrueCondition

#: Identifier shape accepted by the parser's IDENT token.
_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z_0-9]*\Z")

#: Numeric literal shape accepted by the parser's NUMBER token.
_NUMBER_RE = re.compile(r"-?\d+(\.\d+)?\Z")

#: Precedence levels used to parenthesise condition trees minimally.
_PREC_OR, _PREC_AND, _PREC_NOT, _PREC_ATOM = 0, 1, 2, 3


class UnparseError(ValueError):
    """Raised when a query object cannot be expressed in the concrete syntax."""


def unparse_constant(value: object) -> str:
    """Render a constant value as a parseable literal token.

    ``int`` and ``float`` values become NUMBER tokens (when their ``repr`` is
    one); ``str`` values become quoted STRING tokens.  Everything else — and
    the representable types' edge cases the grammar cannot express — raises
    :class:`UnparseError`.
    """
    if isinstance(value, bool):
        # bool is an int subclass, but repr() would produce an IDENT token
        # that re-parses as the *string* constant "True"/"False".
        raise UnparseError(f"boolean constant {value!r} has no concrete syntax")
    if isinstance(value, int):
        return repr(value)
    if isinstance(value, float):
        if not math.isfinite(value):
            raise UnparseError(f"non-finite float constant {value!r}")
        text = repr(value)
        if not _NUMBER_RE.match(text):
            raise UnparseError(
                f"float constant {value!r} needs scientific notation, which "
                f"the grammar has no literal for"
            )
        return text
    if isinstance(value, str):
        if '"' not in value:
            return f'"{value}"'
        if "'" not in value:
            return f"'{value}'"
        raise UnparseError(
            f"string constant {value!r} contains both quote characters"
        )
    raise UnparseError(
        f"constant of type {type(value).__name__} has no concrete syntax: {value!r}"
    )


def unparse_term(term: Term) -> str:
    """Render a term (variable or constant) as parser-accepted text."""
    if isinstance(term, Variable):
        if not _IDENT_RE.match(term.name) or not term.name[0].islower():
            raise UnparseError(
                f"variable name {term.name!r} is not a lowercase identifier"
            )
        return term.name
    if isinstance(term, Constant):
        return unparse_constant(term.value)
    raise UnparseError(f"not a term: {term!r}")


def unparse_atom(atom: Atom) -> str:
    """Render an atom such as ``R(x, y, 4)``."""
    if not _IDENT_RE.match(atom.relation):
        raise UnparseError(f"relation name {atom.relation!r} is not an identifier")
    if atom.relation.upper() in ("SELECT", "FROM", "WHERE", "AND", "OR", "NOT"):
        raise UnparseError(f"relation name {atom.relation!r} is a keyword")
    if not atom.terms:
        raise UnparseError(f"atom {atom.relation!r} has no terms")
    inner = ", ".join(unparse_term(t) for t in atom.terms)
    return f"{atom.relation}({inner})"


def unparse_condition(condition: Condition) -> str:
    """Render a WHERE condition with minimal, tree-preserving parentheses."""
    return _render(condition, _PREC_OR)


def _render(node: Condition, minimum: int) -> str:
    if isinstance(node, AtomCondition):
        return unparse_atom(node.atom)
    if isinstance(node, Not):
        text = f"NOT {_render(node.operand, _PREC_NOT)}"
        precedence = _PREC_NOT
    elif isinstance(node, And):
        # Left-associative: the left child may sit at AND level, the right
        # child must bind tighter or be parenthesised to keep the tree shape.
        text = f"{_render(node.left, _PREC_AND)} AND {_render(node.right, _PREC_AND + 1)}"
        precedence = _PREC_AND
    elif isinstance(node, Or):
        text = f"{_render(node.left, _PREC_OR)} OR {_render(node.right, _PREC_OR + 1)}"
        precedence = _PREC_OR
    elif isinstance(node, TrueCondition):
        raise UnparseError(
            "TRUE inside a condition tree has no concrete syntax "
            "(a trivially-true query simply omits its WHERE clause)"
        )
    else:
        raise UnparseError(f"unknown condition node: {node!r}")
    if precedence < minimum:
        return f"({text})"
    return text


def unparse_bsgf(query: "BSGFQuery") -> str:  # noqa: F821 - duck-typed, see below
    """Render one BSGF statement, e.g. ``Z := SELECT (x, y) FROM R(x, y);``."""
    if not _IDENT_RE.match(query.output):
        raise UnparseError(f"output name {query.output!r} is not an identifier")
    if not query.projection:
        raise UnparseError(
            f"query {query.output!r} has an empty SELECT list, which the "
            f"grammar cannot express"
        )
    projection = ", ".join(unparse_term(v) for v in query.projection)
    text = f"{query.output} := SELECT ({projection}) FROM {unparse_atom(query.guard)}"
    if not isinstance(query.condition, TrueCondition):
        text += f" WHERE {unparse_condition(query.condition)}"
    return text + ";"


def unparse_sgf(query: Union["SGFQuery", "BSGFQuery"]) -> str:  # noqa: F821
    """Render an SGF query (or a single BSGF query) as a parseable program."""
    subqueries = getattr(query, "subqueries", None)
    if subqueries is None:
        return unparse_bsgf(query)
    return "\n".join(unparse_bsgf(q) for q in subqueries)
