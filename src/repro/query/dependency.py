"""Dependency graphs and multiway topological sorts of SGF queries.

Section 4.6 of the paper reduces the evaluation of a (nested) SGF query to the
evaluation of its BSGF subqueries in an order consistent with the dependency
graph ``G_Q``: nodes are the BSGF subqueries and there is an edge
``Q_i -> Q_j`` whenever the output ``Z_i`` is mentioned in ``ξ_j``.

A *multiway topological sort* is a sequence ``(F_1, ..., F_k)`` of disjoint
groups partitioning the nodes such that edges only go from earlier groups to
strictly later groups.  Each group is then evaluated with one (grouped) basic
MR program; groups are evaluated in sequence.

This module provides :class:`DependencyGraph` plus enumeration of all multiway
topological sorts (used by the brute-force ``SGF-Opt`` solver on small
queries) and helpers used by ``Greedy-SGF``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Sequence, Set, Tuple

from .bsgf import BSGFQuery
from .sgf import SGFQuery

#: A multiway topological sort: an ordered sequence of groups of subquery names.
MultiwaySort = Tuple[Tuple[str, ...], ...]


class CycleError(ValueError):
    """Raised when the dependency structure is (unexpectedly) cyclic."""


@dataclass
class DependencyGraph:
    """The dependency graph ``G_Q`` of an SGF query.

    Nodes are identified by subquery output names.  ``parents[v]`` is the set
    of nodes with an edge into ``v`` (i.e. the subqueries whose output ``v``'s
    definition mentions); ``children[v]`` the reverse.
    """

    query: SGFQuery
    parents: Dict[str, FrozenSet[str]] = field(init=False)
    children: Dict[str, Set[str]] = field(init=False)

    def __post_init__(self) -> None:
        self.parents = dict(self.query.dependencies())
        self.children = {name: set() for name in self.query.output_names}
        for child, parent_set in self.parents.items():
            for parent in parent_set:
                self.children[parent].add(child)

    # -- basic graph accessors -----------------------------------------------

    @property
    def nodes(self) -> Tuple[str, ...]:
        return self.query.output_names

    def subquery(self, name: str) -> BSGFQuery:
        return self.query.subquery(name)

    def roots(self) -> Tuple[str, ...]:
        """Nodes with no incoming edges (no dependencies on other subqueries)."""
        return tuple(n for n in self.nodes if not self.parents[n])

    def edges(self) -> Iterator[Tuple[str, str]]:
        for child, parent_set in self.parents.items():
            for parent in sorted(parent_set):
                yield (parent, child)

    def edge_count(self) -> int:
        return sum(len(p) for p in self.parents.values())

    # -- topological structure -----------------------------------------------

    def topological_order(self) -> List[str]:
        """A single-node-per-group topological order (Kahn's algorithm)."""
        in_degree = {n: len(self.parents[n]) for n in self.nodes}
        ready = [n for n in self.nodes if in_degree[n] == 0]
        order: List[str] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for child in sorted(self.children[node]):
                in_degree[child] -= 1
                if in_degree[child] == 0:
                    ready.append(child)
        if len(order) != len(self.nodes):
            raise CycleError("dependency graph contains a cycle")
        return order

    def levels(self) -> List[List[str]]:
        """Longest-path-from-root levels (the PARUNIT grouping)."""
        level_of: Dict[str, int] = {}
        for node in self.topological_order():
            parent_levels = [level_of[p] for p in self.parents[node]]
            level_of[node] = 0 if not parent_levels else 1 + max(parent_levels)
        depth = max(level_of.values()) + 1 if level_of else 0
        levels: List[List[str]] = [[] for _ in range(depth)]
        for node in self.nodes:
            levels[level_of[node]].append(node)
        return levels

    def is_valid_multiway_sort(self, groups: Sequence[Sequence[str]]) -> bool:
        """Check whether *groups* is a valid multiway topological sort of the graph.

        Conditions (Section 4.6): the groups partition the node set, and every
        edge goes from a strictly earlier group to a strictly later group.
        """
        flattened = [n for group in groups for n in group]
        if sorted(flattened) != sorted(self.nodes):
            return False
        if len(set(flattened)) != len(flattened):
            return False
        group_of: Dict[str, int] = {}
        for index, group in enumerate(groups):
            for node in group:
                group_of[node] = index
        for parent, child in self.edges():
            if group_of[parent] >= group_of[child]:
                return False
        return True

    # -- enumeration (for brute-force SGF-Opt on small queries) -----------------

    def all_multiway_sorts(self, max_nodes: int = 12) -> Iterator[MultiwaySort]:
        """Enumerate the multiway topological sorts of the graph.

        Sorts are enumerated up to permutation of groups: two sequences that
        contain exactly the same groups (in a different order) have the same
        evaluation cost (Equation (10) sums over groups), so only one
        representative is produced — this matches the paper's count of four
        sorts for Example 5.  The number of sorts grows super-exponentially,
        so the method refuses graphs with more than *max_nodes* nodes.
        """
        if len(self.nodes) > max_nodes:
            raise ValueError(
                f"refusing to enumerate multiway sorts of {len(self.nodes)} nodes "
                f"(limit {max_nodes})"
            )
        seen: set = set()
        for sort in self._extend_sort((), frozenset()):
            key = frozenset(frozenset(group) for group in sort)
            if key in seen:
                continue
            seen.add(key)
            yield sort

    def _extend_sort(
        self, prefix: MultiwaySort, placed: FrozenSet[str]
    ) -> Iterator[MultiwaySort]:
        remaining = [n for n in self.nodes if n not in placed]
        if not remaining:
            yield prefix
            return
        # Nodes eligible for the next group: all parents already placed.
        eligible = [n for n in remaining if self.parents[n] <= placed]
        for group in _nonempty_subsets(eligible):
            new_prefix = prefix + (tuple(group),)
            yield from self._extend_sort(new_prefix, placed | frozenset(group))

    # -- overlap (used by Greedy-SGF) ---------------------------------------------

    def overlap(self, node: str, group: Iterable[str]) -> int:
        """Number of relations shared between subquery *node* and the *group*.

        Following Section 4.6: ``overlap(Q, F)`` is the number of relation
        symbols occurring in ``Q`` that also occur in (some query of) ``F``.
        """
        query_relations = self.subquery(node).relation_names
        group_relations: Set[str] = set()
        for other in group:
            group_relations.update(self.subquery(other).relation_names)
        return len(query_relations & group_relations)


def _nonempty_subsets(items: Sequence[str]) -> Iterator[Tuple[str, ...]]:
    """All non-empty subsets of *items* in a deterministic order."""
    items = list(items)
    n = len(items)
    for mask in range(1, 1 << n):
        yield tuple(items[i] for i in range(n) if mask & (1 << i))


def groups_to_queries(
    graph: DependencyGraph, groups: Sequence[Sequence[str]]
) -> List[List[BSGFQuery]]:
    """Materialise a multiway sort into lists of BSGF query objects."""
    return [[graph.subquery(name) for name in group] for group in groups]
