"""Boolean condition trees for the WHERE clause of BSGF queries.

A condition ``C`` in a BSGF query (Section 3.1) is a Boolean combination of
*conditional atoms*.  This module defines an immutable AST for such
conditions with:

* :class:`AtomCondition` — a leaf referring to a conditional atom;
* :class:`Not`, :class:`And`, :class:`Or` — the Boolean connectives;
* :data:`TRUE` — the empty condition (a query without a WHERE clause).

The AST supports

* enumerating conditional atoms (in a stable left-to-right order),
* evaluation under a truth assignment for the atoms — which is exactly what
  the EVAL MapReduce job of Section 4.3 does after the MSJ jobs have computed
  which semi-joins hold for each guard tuple,
* substitution of atoms by fresh relation names (turning ``C`` into the
  Boolean formula ``phi_C`` over intermediate relations ``X_i``),
* rendering back to the paper's SQL-like concrete syntax.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterator, List, Sequence, Tuple

from ..model.atoms import Atom
from ..model.terms import Variable


class Condition:
    """Base class for condition nodes.  Instances are immutable and hashable."""

    def atoms(self) -> Tuple[Atom, ...]:
        """Distinct conditional atoms, in order of first (left-to-right) occurrence."""
        seen: List[Atom] = []
        for atom in self._iter_atoms():
            if atom not in seen:
                seen.append(atom)
        return tuple(seen)

    def _iter_atoms(self) -> Iterator[Atom]:
        raise NotImplementedError

    def evaluate(self, assignment: Callable[[Atom], bool]) -> bool:
        """Evaluate the condition under a truth *assignment* for atoms."""
        raise NotImplementedError

    def map_atoms(self, mapping: Callable[[Atom], "Condition"]) -> "Condition":
        """Rebuild the tree with every atom leaf replaced by ``mapping(atom)``."""
        raise NotImplementedError

    def variables(self) -> FrozenSet[Variable]:
        """All variables occurring in the condition's atoms."""
        result: FrozenSet[Variable] = frozenset()
        for atom in self.atoms():
            result |= atom.variable_set()
        return result

    def uses_negation(self) -> bool:
        """Whether a NOT occurs anywhere in the tree."""
        return any(isinstance(node, Not) for node in self.walk())

    def uses_disjunction(self) -> bool:
        """Whether an OR occurs anywhere in the tree."""
        return any(isinstance(node, Or) for node in self.walk())

    def is_pure_conjunction(self) -> bool:
        """True when the condition is a conjunction of positive atoms."""
        return not self.uses_negation() and not self.uses_disjunction()

    def walk(self) -> Iterator["Condition"]:
        """Pre-order traversal of the tree."""
        yield self

    # Operator sugar so conditions compose naturally in programmatic queries.
    def __and__(self, other: "Condition") -> "Condition":
        return And(self, other)

    def __or__(self, other: "Condition") -> "Condition":
        return Or(self, other)

    def __invert__(self) -> "Condition":
        return Not(self)


@dataclass(frozen=True)
class TrueCondition(Condition):
    """The trivially-true condition of a query with no WHERE clause."""

    def _iter_atoms(self) -> Iterator[Atom]:
        return iter(())

    def evaluate(self, assignment: Callable[[Atom], bool]) -> bool:
        return True

    def map_atoms(self, mapping: Callable[[Atom], Condition]) -> Condition:
        return self

    def walk(self) -> Iterator[Condition]:
        yield self

    def __str__(self) -> str:
        return "TRUE"


#: Singleton instance used for queries without a WHERE clause.
TRUE = TrueCondition()


@dataclass(frozen=True)
class AtomCondition(Condition):
    """A leaf condition: a single conditional atom."""

    atom: Atom

    def _iter_atoms(self) -> Iterator[Atom]:
        yield self.atom

    def evaluate(self, assignment: Callable[[Atom], bool]) -> bool:
        return bool(assignment(self.atom))

    def map_atoms(self, mapping: Callable[[Atom], Condition]) -> Condition:
        return mapping(self.atom)

    def walk(self) -> Iterator[Condition]:
        yield self

    def __str__(self) -> str:
        return str(self.atom)


@dataclass(frozen=True)
class Not(Condition):
    """Negation of a condition."""

    operand: Condition

    def _iter_atoms(self) -> Iterator[Atom]:
        yield from self.operand._iter_atoms()

    def evaluate(self, assignment: Callable[[Atom], bool]) -> bool:
        return not self.operand.evaluate(assignment)

    def map_atoms(self, mapping: Callable[[Atom], Condition]) -> Condition:
        return Not(self.operand.map_atoms(mapping))

    def walk(self) -> Iterator[Condition]:
        yield self
        yield from self.operand.walk()

    def __str__(self) -> str:
        return f"NOT {_wrap(self.operand)}"


@dataclass(frozen=True)
class And(Condition):
    """Conjunction of two conditions."""

    left: Condition
    right: Condition

    def _iter_atoms(self) -> Iterator[Atom]:
        yield from self.left._iter_atoms()
        yield from self.right._iter_atoms()

    def evaluate(self, assignment: Callable[[Atom], bool]) -> bool:
        return self.left.evaluate(assignment) and self.right.evaluate(assignment)

    def map_atoms(self, mapping: Callable[[Atom], Condition]) -> Condition:
        return And(self.left.map_atoms(mapping), self.right.map_atoms(mapping))

    def walk(self) -> Iterator[Condition]:
        yield self
        yield from self.left.walk()
        yield from self.right.walk()

    def __str__(self) -> str:
        return f"{_wrap(self.left)} AND {_wrap(self.right)}"


@dataclass(frozen=True)
class Or(Condition):
    """Disjunction of two conditions."""

    left: Condition
    right: Condition

    def _iter_atoms(self) -> Iterator[Atom]:
        yield from self.left._iter_atoms()
        yield from self.right._iter_atoms()

    def evaluate(self, assignment: Callable[[Atom], bool]) -> bool:
        return self.left.evaluate(assignment) or self.right.evaluate(assignment)

    def map_atoms(self, mapping: Callable[[Atom], Condition]) -> Condition:
        return Or(self.left.map_atoms(mapping), self.right.map_atoms(mapping))

    def walk(self) -> Iterator[Condition]:
        yield self
        yield from self.left.walk()
        yield from self.right.walk()

    def __str__(self) -> str:
        return f"{_wrap(self.left)} OR {_wrap(self.right)}"


def _wrap(node: Condition) -> str:
    """Parenthesise composite children when rendering."""
    if isinstance(node, (And, Or)):
        return f"({node})"
    return str(node)


# -- convenience constructors -------------------------------------------------


def atom(relation: str, *values: object) -> AtomCondition:
    """Shorthand to build an :class:`AtomCondition` from plain values."""
    return AtomCondition(Atom.of(relation, *values))


def conjunction(conditions: Sequence[Condition]) -> Condition:
    """Left-deep AND of a sequence of conditions (``TRUE`` when empty)."""
    conditions = list(conditions)
    if not conditions:
        return TRUE
    result = conditions[0]
    for cond in conditions[1:]:
        result = And(result, cond)
    return result


def disjunction(conditions: Sequence[Condition]) -> Condition:
    """Left-deep OR of a sequence of conditions (``TRUE`` when empty)."""
    conditions = list(conditions)
    if not conditions:
        return TRUE
    result = conditions[0]
    for cond in conditions[1:]:
        result = Or(result, cond)
    return result


def truth_assignment(true_atoms: Sequence[Atom]) -> Callable[[Atom], bool]:
    """Build an assignment function from the set of atoms considered true."""
    true_set = set(true_atoms)
    return lambda a: a in true_set


def evaluate_with_index(
    condition: Condition, true_indices: Sequence[int], ordered_atoms: Sequence[Atom]
) -> bool:
    """Evaluate *condition* given the indices of atoms that hold.

    This mirrors the EVAL reducer of Section 4.3, which receives the set of
    indices ``i`` such that the guard tuple belongs to ``X_i`` and evaluates
    the Boolean formula ``phi_C``.
    """
    index_of: Dict[Atom, int] = {a: i for i, a in enumerate(ordered_atoms)}
    true_set = set(true_indices)
    return condition.evaluate(lambda a: index_of[a] in true_set)
