"""Basic strictly guarded fragment (BSGF) queries.

A BSGF query (paper, Section 3.1, Equation (1)) has the form::

    Z := SELECT x̄ FROM R(t̄) [WHERE C];

where

* ``Z`` is the output relation name,
* ``x̄`` is a sequence of variables all occurring in the guard atom ``R(t̄)``,
* ``C`` is a Boolean combination of conditional atoms such that any two
  distinct conditional atoms may only share variables that also occur in the
  guard (the *guardedness* requirement).

:class:`BSGFQuery` stores the query, validates guardedness, and exposes the
derived objects needed by the planner: the list of conditional atoms, the
semi-join equations ``X_i := pi_w̄(R(t̄) ⋉ κ_i)`` and the Boolean formula
``phi_C`` over the ``X_i``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..model.atoms import Atom
from ..model.terms import Variable
from .conditions import TRUE, AtomCondition, Condition


class GuardednessError(ValueError):
    """Raised when a query violates the strictly-guarded-fragment restrictions."""


@dataclass(frozen=True)
class SemiJoinSpec:
    """One semi-join ``X := pi_w̄(guard ⋉ conditional)`` derived from a BSGF query.

    ``output`` names the intermediate relation ``X_i``; ``projection`` is the
    variable sequence ``w̄`` (the SELECT list of the surrounding query), and
    ``join_key`` is the ordered tuple of variables shared by guard and
    conditional atom — the key on which the repartition join hashes.
    """

    output: str
    guard: Atom
    conditional: Atom
    projection: Tuple[Variable, ...]

    @property
    def join_key(self) -> Tuple[Variable, ...]:
        shared = self.guard.shared_variables(self.conditional)
        return tuple(v for v in self.guard.variables if v in shared)

    def __str__(self) -> str:
        proj = ", ".join(str(v) for v in self.projection)
        return f"{self.output} := pi({proj})({self.guard} ⋉ {self.conditional})"


@dataclass(frozen=True)
class BSGFQuery:
    """A basic SGF query ``Z := SELECT x̄ FROM guard WHERE condition``."""

    output: str
    projection: Tuple[Variable, ...]
    guard: Atom
    condition: Condition = TRUE

    def __post_init__(self) -> None:
        object.__setattr__(self, "projection", tuple(self.projection))
        self.validate()

    # -- validation -----------------------------------------------------------

    def validate(self) -> None:
        """Check the syntactic restrictions of the strictly guarded fragment.

        1. Every SELECT variable occurs in the guard.
        2. For every pair of distinct conditional atoms, shared variables also
           occur in the guard.
        """
        guard_vars = self.guard.variable_set()
        for variable in self.projection:
            if variable not in guard_vars:
                raise GuardednessError(
                    f"selected variable {variable} does not occur in guard "
                    f"{self.guard}"
                )
        atoms = self.conditional_atoms
        for i in range(len(atoms)):
            for j in range(i + 1, len(atoms)):
                shared = atoms[i].shared_variables(atoms[j])
                illegal = shared - guard_vars
                if illegal:
                    names = ", ".join(sorted(str(v) for v in illegal))
                    raise GuardednessError(
                        f"conditional atoms {atoms[i]} and {atoms[j]} share "
                        f"variable(s) {names} not occurring in the guard "
                        f"{self.guard}"
                    )

    # -- derived structure ------------------------------------------------------

    @property
    def conditional_atoms(self) -> Tuple[Atom, ...]:
        """The distinct conditional atoms κ_1, ..., κ_n (left-to-right order)."""
        return self.condition.atoms()

    @property
    def relation_names(self) -> FrozenSet[str]:
        """All relation symbols mentioned by the query (guard + conditionals)."""
        names = {self.guard.relation}
        names.update(a.relation for a in self.conditional_atoms)
        return frozenset(names)

    @property
    def conditional_relation_names(self) -> FrozenSet[str]:
        return frozenset(a.relation for a in self.conditional_atoms)

    @property
    def has_condition(self) -> bool:
        return self.condition is not TRUE and self.conditional_atoms != ()

    def semijoin_specs(self, prefix: Optional[str] = None) -> List[SemiJoinSpec]:
        """The semi-join equations ``X_i := pi_w̄(guard ⋉ κ_i)``.

        Intermediate relation names default to ``"<output>#<i>"`` which keeps
        them unique across multiple BSGF queries evaluated together.
        """
        prefix = prefix if prefix is not None else self.output
        return [
            SemiJoinSpec(
                output=f"{prefix}#{i}",
                guard=self.guard,
                conditional=atom,
                projection=self.projection,
            )
            for i, atom in enumerate(self.conditional_atoms)
        ]

    def formula_over(self, names: Sequence[str]) -> Condition:
        """The Boolean formula phi_C with atom κ_i replaced by relation ``names[i]``.

        The replacement atoms reuse the projection variables, since the
        intermediate relations ``X_i`` hold projected guard tuples.
        """
        atoms = self.conditional_atoms
        if len(names) != len(atoms):
            raise ValueError(f"expected {len(atoms)} names, got {len(names)}")
        mapping: Dict[Atom, Condition] = {
            atom: AtomCondition(Atom(names[i], self.projection))
            for i, atom in enumerate(atoms)
        }
        return self.condition.map_atoms(lambda a: mapping[a])

    def shares_join_key(self) -> bool:
        """True when all conditional atoms share one common join key with the guard.

        This is the structural property that enables the 1-ROUND evaluation of
        Section 5.1, optimization (4): when every semi-join hashes on the same
        key, MSJ and EVAL can be fused into a single MapReduce job.
        """
        specs = self.semijoin_specs()
        if not specs:
            return True
        keys = {spec.join_key for spec in specs}
        return len(keys) == 1

    # -- rewriting ----------------------------------------------------------------

    def rename_output(self, new_name: str) -> "BSGFQuery":
        return BSGFQuery(new_name, self.projection, self.guard, self.condition)

    # -- rendering -------------------------------------------------------------------

    def unparse(self) -> str:
        """Render the query in the parser's concrete syntax.

        The result re-parses to an equal query:
        ``parse_bsgf(q.unparse()) == q`` (see :mod:`repro.query.unparse`).
        """
        from .unparse import unparse_bsgf

        return unparse_bsgf(self)

    def __str__(self) -> str:
        proj = ", ".join(str(v) for v in self.projection)
        text = f"{self.output} := SELECT ({proj}) FROM {self.guard}"
        if self.has_condition:
            text += f" WHERE {self.condition}"
        return text + ";"


def select(
    output: str,
    projection: Sequence[object],
    guard: Atom,
    condition: Condition = TRUE,
) -> BSGFQuery:
    """Convenience constructor accepting variable names as plain strings."""
    variables = tuple(
        v if isinstance(v, Variable) else Variable(str(v)) for v in projection
    )
    return BSGFQuery(output, variables, guard, condition)
