"""Parser for the paper's SQL-like concrete syntax of (B)SGF queries.

Grammar (informal)::

    program     := statement+
    statement   := NAME ':=' 'SELECT' select_list 'FROM' atom ['WHERE' cond] ';'
    select_list := variable | '(' variable (',' variable)* ')'
    cond        := or_expr
    or_expr     := and_expr ('OR' and_expr)*
    and_expr    := not_expr ('AND' not_expr)*
    not_expr    := 'NOT' not_expr | '(' cond ')' | atom
    atom        := NAME '(' term (',' term)* ')'
    term        := variable | number | string
    variable    := identifier starting with a lowercase letter
    NAME        := identifier (relation names conventionally start uppercase)

Examples accepted verbatim from the paper::

    Z5 := SELECT (x, y) FROM R(x, y, 4)
          WHERE (S(1, x) AND NOT S(y, 10)) OR (NOT S(1, x) AND S(y, 10));

    Z1 := SELECT aut FROM Amaz(ttl, aut, "bad")
          WHERE BN(ttl, aut, "bad") AND BD(ttl, aut, "bad");

The parser produces :class:`~repro.query.bsgf.BSGFQuery` /
:class:`~repro.query.sgf.SGFQuery` objects and therefore applies all
guardedness validation on construction.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from ..model.atoms import Atom
from ..model.terms import Constant, Term, Variable
from .bsgf import BSGFQuery
from .conditions import And, AtomCondition, Condition, Not, Or, TRUE
from .sgf import SGFQuery


class ParseError(ValueError):
    """Raised on any lexical or syntactic error, with position information."""

    def __init__(self, message: str, position: int, text: str) -> None:
        line = text.count("\n", 0, position) + 1
        column = position - (text.rfind("\n", 0, position) + 1) + 1
        super().__init__(f"{message} (line {line}, column {column})")
        self.position = position
        self.line = line
        self.column = column


@dataclass(frozen=True)
class _Token:
    kind: str
    value: str
    position: int


_TOKEN_SPEC = [
    ("WS", r"\s+"),
    ("COMMENT", r"--[^\n]*"),
    ("ASSIGN", r":="),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("COMMA", r","),
    ("SEMI", r";"),
    ("STRING", r'"[^"]*"|\'[^\']*\''),
    ("NUMBER", r"-?\d+(\.\d+)?"),
    ("IDENT", r"[A-Za-z_][A-Za-z_0-9]*"),
]

_TOKEN_RE = re.compile(
    "|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC)
)

_KEYWORDS = {"SELECT", "FROM", "WHERE", "AND", "OR", "NOT"}


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(f"unexpected character {text[position]!r}", position, text)
        kind = match.lastgroup or ""
        value = match.group()
        if kind not in ("WS", "COMMENT"):
            if kind == "IDENT" and value.upper() in _KEYWORDS:
                kind = value.upper()
            tokens.append(_Token(kind, value, position))
        position = match.end()
    tokens.append(_Token("EOF", "", len(text)))
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    # -- token helpers -------------------------------------------------------

    def _peek(self) -> _Token:
        return self.tokens[self.index]

    def _advance(self) -> _Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._peek()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind}, found {token.kind} {token.value!r}",
                token.position,
                self.text,
            )
        return self._advance()

    def _accept(self, kind: str) -> Optional[_Token]:
        if self._peek().kind == kind:
            return self._advance()
        return None

    # -- grammar ----------------------------------------------------------------

    def parse_program(self) -> List[BSGFQuery]:
        statements: List[BSGFQuery] = []
        while self._peek().kind != "EOF":
            statements.append(self.parse_statement())
        if not statements:
            raise ParseError("empty query program", 0, self.text)
        return statements

    def parse_statement(self) -> BSGFQuery:
        output = self._expect("IDENT").value
        self._expect("ASSIGN")
        self._expect("SELECT")
        projection = self._parse_select_list()
        self._expect("FROM")
        guard = self._parse_atom()
        condition: Condition = TRUE
        if self._accept("WHERE"):
            condition = self._parse_or()
        self._expect("SEMI")
        return BSGFQuery(output, projection, guard, condition)

    def _parse_select_list(self) -> Tuple[Variable, ...]:
        variables: List[Variable] = []
        if self._accept("LPAREN"):
            variables.append(self._parse_variable())
            while self._accept("COMMA"):
                variables.append(self._parse_variable())
            self._expect("RPAREN")
        else:
            variables.append(self._parse_variable())
            while self._accept("COMMA"):
                variables.append(self._parse_variable())
        return tuple(variables)

    def _parse_variable(self) -> Variable:
        token = self._expect("IDENT")
        if not token.value[0].islower():
            raise ParseError(
                f"expected a variable (lowercase identifier), found {token.value!r}",
                token.position,
                self.text,
            )
        return Variable(token.value)

    def _parse_or(self) -> Condition:
        left = self._parse_and()
        while self._accept("OR"):
            right = self._parse_and()
            left = Or(left, right)
        return left

    def _parse_and(self) -> Condition:
        left = self._parse_not()
        while self._accept("AND"):
            right = self._parse_not()
            left = And(left, right)
        return left

    def _parse_not(self) -> Condition:
        if self._accept("NOT"):
            return Not(self._parse_not())
        if self._peek().kind == "LPAREN":
            # Could be a parenthesised condition; atoms always start with IDENT.
            self._expect("LPAREN")
            inner = self._parse_or()
            self._expect("RPAREN")
            return inner
        atom = self._parse_atom()
        return AtomCondition(atom)

    def _parse_atom(self) -> Atom:
        name_token = self._expect("IDENT")
        self._expect("LPAREN")
        terms: List[Term] = [self._parse_term()]
        while self._accept("COMMA"):
            terms.append(self._parse_term())
        self._expect("RPAREN")
        return Atom(name_token.value, tuple(terms))

    def _parse_term(self) -> Term:
        token = self._peek()
        if token.kind == "NUMBER":
            self._advance()
            value: Union[int, float] = (
                float(token.value) if "." in token.value else int(token.value)
            )
            return Constant(value)
        if token.kind == "STRING":
            self._advance()
            return Constant(token.value[1:-1])
        if token.kind == "IDENT":
            self._advance()
            if token.value[0].islower():
                return Variable(token.value)
            # Uppercase identifiers in term position are treated as string constants
            # (e.g. named data values); the paper uses quoted strings for these but
            # accepting bare names is convenient.
            return Constant(token.value)
        raise ParseError(
            f"expected a term, found {token.kind} {token.value!r}",
            token.position,
            self.text,
        )


def parse_bsgf(text: str) -> BSGFQuery:
    """Parse a single BSGF statement."""
    parser = _Parser(text)
    statements = parser.parse_program()
    if len(statements) != 1:
        raise ParseError(
            f"expected exactly one statement, found {len(statements)}", 0, text
        )
    return statements[0]


def parse_sgf(text: str, name: str = "Q") -> SGFQuery:
    """Parse a sequence of BSGF statements into an SGF query."""
    parser = _Parser(text)
    statements = parser.parse_program()
    return SGFQuery(tuple(statements), name=name)


def parse_atom(text: str) -> Atom:
    """Parse a standalone atom such as ``R(x, y, 4)``."""
    parser = _Parser(text)
    atom = parser._parse_atom()
    parser._expect("EOF")
    return atom


def parse_condition(text: str) -> Condition:
    """Parse a standalone Boolean condition such as ``S(x) AND NOT T(y)``."""
    parser = _Parser(text)
    condition = parser._parse_or()
    parser._expect("EOF")
    return condition
