"""MapReduce jobs modelling how Hive and Pig evaluate the 2-round plans.

Section 5.2 of the paper compares Gumbo against Pig and Hive implementations
of the same 2-round query plans.  We reproduce the *structure* of the plans
those engines generate (rather than the engines themselves), with the
inefficiencies the paper attributes to them:

* full tuples are shuffled on both sides of every join (no message packing,
  no tuple-id references);
* intermediate results are materialised at full guard width;
* reducers are allocated from the map *input* size (Pig: 1 GB per reducer,
  Hive: 256 MB per reducer), not from the intermediate size;
* Hive's outer-join variant (HPAR) keeps *all* guard rows in every join
  output (left outer join), and its join stages execute sequentially.

Three job classes are provided:

* :class:`HiveOuterJoinJob` — ``R LEFT OUTER JOIN S_i`` producing all guard
  rows extended with a match flag (used by HPAR);
* :class:`BaselineSemiJoinJob` — ``R LEFT SEMI JOIN S_i`` / Pig COGROUP
  filtering, producing the matching guard rows at full width (used by HPARS
  and PPAR);
* :class:`BaselineCombineJob` — the final Boolean combination over the
  materialised intermediates plus the guard relation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..mapreduce.job import Key, MapReduceJob, OutputFact, REDUCERS_BY_INPUT
from ..query.bsgf import BSGFQuery, SemiJoinSpec

#: Marker values distinguishing the two sides of a baseline join.
_GUARD_SIDE = "g"
_CONDITIONAL_SIDE = "c"


class _BaselineJoinBase(MapReduceJob):
    """Shared machinery of the Hive/Pig join-style jobs."""

    reducer_allocation = REDUCERS_BY_INPUT

    def __init__(
        self,
        job_id: str,
        spec: SemiJoinSpec,
        guard_input: Optional[str] = None,
    ) -> None:
        super().__init__(job_id)
        self.spec = spec
        self.guard_input = guard_input or spec.guard.relation

    def input_relations(self) -> Sequence[str]:
        names = [self.guard_input]
        if self.spec.conditional.relation not in names:
            names.append(self.spec.conditional.relation)
        return names

    def map(self, relation: str, row: Tuple[object, ...]) -> Iterable[
        Tuple[Key, object]
    ]:
        pairs: List[Tuple[Key, object]] = []
        if relation == self.guard_input:
            binding = self.spec.guard.match(row)
            if binding is not None:
                key = tuple(binding[v] for v in self.spec.join_key)
                pairs.append((key, (_GUARD_SIDE, tuple(row))))
        if relation == self.spec.conditional.relation:
            binding = self.spec.conditional.match(row)
            if binding is not None:
                key = tuple(binding[v] for v in self.spec.join_key)
                pairs.append((key, (_CONDITIONAL_SIDE, tuple(row))))
        return pairs

    def value_bytes(self, value: object) -> int:
        """Both sides ship their full tuples (no projection, no references)."""
        side, row = value
        return max(1, len(row)) * self.bytes_per_field


class HiveOuterJoinJob(_BaselineJoinBase):
    """``guard LEFT OUTER JOIN conditional``: every guard row survives, flagged."""

    def output_schema(self) -> Dict[str, int]:
        return {self.spec.output: self.spec.guard.arity + 1}

    def reduce(self, key: Key, values: List[object]) -> Iterable[OutputFact]:
        matched = any(side == _CONDITIONAL_SIDE for side, _ in values)
        flag = 1 if matched else 0
        for side, row in values:
            if side == _GUARD_SIDE:
                yield (self.spec.output, tuple(row) + (flag,))


class BaselineSemiJoinJob(_BaselineJoinBase):
    """``guard LEFT SEMI JOIN conditional`` (Hive) / COGROUP-filter (Pig)."""

    def output_schema(self) -> Dict[str, int]:
        return {self.spec.output: self.spec.guard.arity}

    def reduce(self, key: Key, values: List[object]) -> Iterable[OutputFact]:
        matched = any(side == _CONDITIONAL_SIDE for side, _ in values)
        if not matched:
            return
        for side, row in values:
            if side == _GUARD_SIDE:
                yield (self.spec.output, tuple(row))


class BaselineCombineJob(MapReduceJob):
    """Final-round Boolean combination over the materialised intermediates.

    The guard relation and every intermediate are re-read in full; rows are
    grouped on the full guard tuple and the query's condition is evaluated
    from the memberships (outer-join intermediates contribute via their match
    flag).  One combine job handles all queries of the set, as the 2-round
    plan of Section 4.5 prescribes.
    """

    reducer_allocation = REDUCERS_BY_INPUT

    def __init__(
        self,
        job_id: str,
        queries: Sequence[BSGFQuery],
        intermediates: Dict[str, List[str]],
        flagged: bool,
    ) -> None:
        super().__init__(job_id)
        self.queries = list(queries)
        self.intermediates = {k: list(v) for k, v in intermediates.items()}
        self.flagged = flagged
        self._membership: Dict[str, Tuple[int, int]] = {}
        for q_index, query in enumerate(self.queries):
            names = self.intermediates[query.output]
            if len(names) != len(query.conditional_atoms):
                raise ValueError(
                    f"query {query.output!r} needs one intermediate per conditional atom"
                )
            for c_index, name in enumerate(names):
                self._membership[name] = (q_index, c_index)

    def input_relations(self) -> Sequence[str]:
        names: List[str] = []
        for query in self.queries:
            if query.guard.relation not in names:
                names.append(query.guard.relation)
        for name in self._membership:
            if name not in names:
                names.append(name)
        return names

    def output_schema(self) -> Dict[str, int]:
        return {
            query.output: max(1, len(query.projection)) for query in self.queries
        }

    def map(self, relation: str, row: Tuple[object, ...]) -> Iterable[
        Tuple[Key, object]
    ]:
        pairs: List[Tuple[Key, object]] = []
        membership = self._membership.get(relation)
        if membership is not None:
            q_index, c_index = membership
            if self.flagged:
                guard_row, flag = tuple(row[:-1]), row[-1]
                if flag:
                    pairs.append(((q_index,) + guard_row, ("m", c_index)))
                else:
                    # Unmatched outer-join rows still travel to the reducer.
                    pairs.append(((q_index,) + guard_row, ("x", c_index)))
            else:
                pairs.append(((q_index,) + tuple(row), ("m", c_index)))
            return pairs
        for q_index, query in enumerate(self.queries):
            if query.guard.relation != relation:
                continue
            if query.guard.conforms(row):
                pairs.append(((q_index,) + tuple(row), ("g", None)))
        return pairs

    def reduce(self, key: Key, values: List[object]) -> Iterable[OutputFact]:
        q_index = key[0]
        row = tuple(key[1:])
        query = self.queries[q_index]
        if not any(kind == "g" for kind, _ in values):
            return
        present = {index for kind, index in values if kind == "m"}
        atoms = query.conditional_atoms
        index_of = {atom: i for i, atom in enumerate(atoms)}
        holds = query.condition.evaluate(lambda atom: index_of[atom] in present)
        if not holds:
            return
        binding = query.guard.match(row)
        if binding is None:  # pragma: no cover - defensive
            return
        projected = tuple(binding[v] for v in query.projection)
        yield (query.output, projected if projected else (row[0],))

    def key_bytes(self, key: Key) -> int:
        """Keys carry the full guard tuple (no id compression)."""
        return max(1, len(key) - 1) * self.bytes_per_field + 4

    def value_bytes(self, value: object) -> int:
        return 4
