"""Plan builders for the Hive and Pig baselines (HPAR, HPARS, PPAR).

The three baseline strategies of Section 5.2, each producing an
:class:`~repro.mapreduce.program.MRProgram` over the baseline job classes:

* ``HPAR``  — Hive with left-outer-join operations.  One outer-join job per
  conditional atom plus a combine job; Hive executes the join stages
  *sequentially* even when parallel execution is enabled, which the plan
  reproduces by chaining the jobs' dependencies.  Exception: when all
  conditional atoms of a query share the join key, Hive groups the joins,
  bringing the query down to two jobs (the behaviour the paper observes on
  query A3) — modelled by a single grouped outer-join stage.
* ``HPARS`` — Hive with semi-join operations: the same per-atom jobs run in
  parallel (Hive allows parallel semi-joins but no grouping).
* ``PPAR``  — Pig using COGROUP: structurally like HPARS but with Pig's
  input-based reducer allocation of 1 GB of map input per reducer.

All baseline jobs shuffle full tuples, store intermediates at full guard
width and allocate reducers from input sizes, which is what drives their
higher input, communication and net-time numbers in Figure 3.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..cost.constants import PIG_INPUT_MB_PER_REDUCER
from ..mapreduce.program import MRProgram
from ..query.bsgf import BSGFQuery
from .jobs import BaselineCombineJob, BaselineSemiJoinJob, HiveOuterJoinJob

#: Hive's default reducer allocation basis (hive.exec.reducers.bytes.per.reducer).
HIVE_INPUT_MB_PER_REDUCER = 256.0

HPAR = "hpar"
HPARS = "hpars"
PPAR = "ppar"
BASELINE_STRATEGIES = (HPAR, HPARS, PPAR)


def _intermediate_names(query: BSGFQuery) -> List[str]:
    return [f"{query.output}@{i}" for i in range(len(query.conditional_atoms))]


def build_hpar_program(
    queries: Sequence[BSGFQuery], name: str = "hpar"
) -> MRProgram:
    """Hive outer-join plan: sequential join stages + combine."""
    program = MRProgram(name)
    intermediates: Dict[str, List[str]] = {}
    previous_job: Optional[str] = None
    join_job_ids: List[str] = []
    for q_index, query in enumerate(queries):
        names = _intermediate_names(query)
        intermediates[query.output] = names
        specs = query.semijoin_specs()
        grouped = query.shares_join_key() and len(specs) > 1
        for s_index, (spec, out_name) in enumerate(zip(specs, names)):
            renamed = type(spec)(
                output=out_name,
                guard=spec.guard,
                conditional=spec.conditional,
                projection=spec.projection,
            )
            job = HiveOuterJoinJob(f"q{q_index}-join-{s_index}", renamed)
            job.fixed_reducers = None
            if grouped:
                # Hive groups joins sharing the key: the stages run concurrently.
                program.add_job(job)
            else:
                # Hive's sequential execution of join stages.
                program.add_job(
                    job, depends_on=[previous_job] if previous_job else None
                )
                previous_job = job.job_id
            join_job_ids.append(job.job_id)
    combine = BaselineCombineJob("combine", list(queries), intermediates, flagged=True)
    program.add_job(combine, depends_on=join_job_ids)
    return program


def _parallel_semijoin_program(
    queries: Sequence[BSGFQuery], name: str
) -> MRProgram:
    program = MRProgram(name)
    intermediates: Dict[str, List[str]] = {}
    join_job_ids: List[str] = []
    for q_index, query in enumerate(queries):
        names = _intermediate_names(query)
        intermediates[query.output] = names
        for s_index, (spec, out_name) in enumerate(zip(query.semijoin_specs(), names)):
            renamed = type(spec)(
                output=out_name,
                guard=spec.guard,
                conditional=spec.conditional,
                projection=spec.projection,
            )
            job = BaselineSemiJoinJob(f"q{q_index}-semijoin-{s_index}", renamed)
            program.add_job(job)
            join_job_ids.append(job.job_id)
    combine = BaselineCombineJob("combine", list(queries), intermediates, flagged=False)
    program.add_job(combine, depends_on=join_job_ids)
    return program


def build_hpars_program(
    queries: Sequence[BSGFQuery], name: str = "hpars"
) -> MRProgram:
    """Hive semi-join plan: parallel per-atom semi-joins + combine."""
    return _parallel_semijoin_program(queries, name)


def build_ppar_program(
    queries: Sequence[BSGFQuery], name: str = "ppar"
) -> MRProgram:
    """Pig COGROUP plan: structurally like HPARS; reducer allocation differs at run time."""
    return _parallel_semijoin_program(queries, name)


def build_baseline_program(
    queries: Sequence[BSGFQuery], strategy: str, name: Optional[str] = None
) -> MRProgram:
    """Dispatch on the baseline strategy name (``hpar``, ``hpars`` or ``ppar``)."""
    normalised = strategy.strip().lower()
    if normalised == HPAR:
        return build_hpar_program(queries, name or HPAR)
    if normalised == HPARS:
        return build_hpars_program(queries, name or HPARS)
    if normalised == PPAR:
        return build_ppar_program(queries, name or PPAR)
    raise ValueError(
        f"unknown baseline strategy {strategy!r}; expected one of {BASELINE_STRATEGIES}"
    )


def reducer_mb_for(strategy: str) -> float:
    """The per-reducer map-input allowance the engine should use for a baseline."""
    normalised = strategy.strip().lower()
    if normalised in (HPAR, HPARS):
        return HIVE_INPUT_MB_PER_REDUCER
    return PIG_INPUT_MB_PER_REDUCER
