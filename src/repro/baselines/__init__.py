"""Simulated Pig / Hive comparators of Section 5.2 (HPAR, HPARS, PPAR)."""

from .jobs import BaselineCombineJob, BaselineSemiJoinJob, HiveOuterJoinJob
from .plans import (
    BASELINE_STRATEGIES,
    HIVE_INPUT_MB_PER_REDUCER,
    HPAR,
    HPARS,
    PPAR,
    build_baseline_program,
    build_hpar_program,
    build_hpars_program,
    build_ppar_program,
    reducer_mb_for,
)

__all__ = [
    "BASELINE_STRATEGIES",
    "BaselineCombineJob",
    "BaselineSemiJoinJob",
    "HIVE_INPUT_MB_PER_REDUCER",
    "HPAR",
    "HPARS",
    "HiveOuterJoinJob",
    "PPAR",
    "build_baseline_program",
    "build_hpar_program",
    "build_hpars_program",
    "build_ppar_program",
    "reducer_mb_for",
]
