"""Benchmark E9 — Table 3: sensitivity to selectivity (0.1 -> 0.9) on A1-A3.

Regenerates Table 3 (the percentage increase in net and total time when the
conditional selectivity moves from 0.1 to 0.9) and checks the paper's reading
of it: selectivity mostly hits the net times of PAR and GREEDY and the total
times of SEQ, whose per-step pruning stops helping at low selectivity; GREEDY
is the least affected strategy on the packable query A3.
"""

from repro.experiments import format_table3, run_table3, selectivity_increases

from common import bench_environment


def _pct(value: str) -> float:
    return float(value.rstrip("%"))


def test_bench_table3(benchmark, capsys):
    result = benchmark.pedantic(
        run_table3, kwargs={"environment": bench_environment()}, rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(result.format())
        print(format_table3(result))

    rows = {row["strategy"]: row for row in selectivity_increases(result)}

    # SEQ's total time reacts strongly to lower selectivity on every query
    # (the paper reports 79-95 % increases).
    for query in ("A1", "A2", "A3"):
        assert _pct(rows["SEQ"][f"{query}_total_increase_%"]) > 20.0

    # SEQ's net time moves much less than its total time.
    for query in ("A1", "A2", "A3"):
        assert _pct(rows["SEQ"][f"{query}_net_increase_%"]) < _pct(
            rows["SEQ"][f"{query}_total_increase_%"]
        )

    # GREEDY is less sensitive than SEQ in total time on the packable query A3
    # (the paper reports 15 % vs 88 %).
    assert _pct(rows["GREEDY"]["A3_total_increase_%"]) < _pct(
        rows["SEQ"]["A3_total_increase_%"]
    )
