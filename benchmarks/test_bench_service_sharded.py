"""Benchmark — the sharded service tier under open-loop load.

A load generator offers requests to the admission-controlled asyncio
front-end at a **synthetic offered rate of ≥ 10k qps** — far beyond what
the tier can serve — so the benchmark measures the serving discipline
itself: how much the tier serves, how fast (p50/p95/p99 latency of served
requests), and how cleanly it sheds the rest (typed fast-failure instead of
unbounded queueing).  The query is materialized first, so serving is the
warm path: plan cache + materialized result + resident shards.

Results are written to ``BENCH_service_sharded.json`` (override with
``REPRO_BENCH_SERVICE_SHARDED_JSON``); the ``bench-regression`` CI job
gates the served-throughput floor committed in
``benchmarks/baselines/service_sharded.json``.
"""

from __future__ import annotations

import asyncio
import os
from time import perf_counter

from common import write_bench_artifact
from repro.model.database import Database
from repro.service.sharded import ServiceOverloadedError, ShardedService

#: Where the JSON artifact is written.
ARTIFACT_PATH = os.environ.get(
    "REPRO_BENCH_SERVICE_SHARDED_JSON", "BENCH_service_sharded.json"
)

#: Requests offered by the load generator.
OFFERED_REQUESTS = int(os.environ.get("REPRO_BENCH_SHARDED_REQUESTS", 2_000))

#: Synthetic offered rate (arrivals per second); the satellite contract is
#: >= 10k offered qps, asserted below from the measured arrival window.
OFFERED_QPS = float(os.environ.get("REPRO_BENCH_SHARDED_OFFERED_QPS", 20_000))

SHARDS = 2
QUERY = "Z := SELECT (x, y) FROM R(x, y) WHERE S(x) AND NOT T(y);"
DB = {
    "R": [(i, i + 1) for i in range(300)],
    "S": [(i,) for i in range(0, 300, 2)],
    "T": [(i,) for i in range(0, 300, 7)],
}


def _percentile(ordered, fraction):
    return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]


async def _drive(frontend):
    """Offer OFFERED_REQUESTS arrivals at OFFERED_QPS; collect outcomes."""
    latencies = []
    shed = 0

    async def one_request():
        nonlocal shed
        start = perf_counter()
        try:
            await frontend.execute(QUERY)
        except ServiceOverloadedError:
            shed += 1
        else:
            latencies.append(perf_counter() - start)

    interval = 1.0 / OFFERED_QPS
    tasks = []
    begin = perf_counter()
    for index in range(OFFERED_REQUESTS):
        target = begin + index * interval
        delay = target - perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(asyncio.create_task(one_request()))
    arrival_window_s = perf_counter() - begin
    await asyncio.gather(*tasks)
    elapsed_s = perf_counter() - begin
    return latencies, shed, arrival_window_s, elapsed_s


def test_bench_sharded_service_load(capsys):
    database = Database.from_dict(DB)

    async def scenario():
        with ShardedService.create(
            database, shards=SHARDS, max_concurrency=8, max_queue=64
        ) as frontend:
            # Warm everything measurable: spawn shards, ship chunks, plan,
            # materialize — the measured window is pure serving.
            await frontend.materialize(QUERY)
            outcome = await _drive(frontend)
            return outcome, frontend.stats(), frontend.service.stats()

    (latencies, shed, arrival_window_s, elapsed_s), fe_stats, svc_stats = (
        asyncio.run(scenario())
    )

    served = len(latencies)
    assert served + shed == OFFERED_REQUESTS
    assert served > 0, "admission control shed every request"
    # The load really was offered at >= 10k synthetic qps.
    achieved_offered_qps = OFFERED_REQUESTS / arrival_window_s
    assert achieved_offered_qps >= 10_000, (
        f"load generator too slow: offered only "
        f"{achieved_offered_qps:.0f} qps (need >= 10000)"
    )

    ordered = sorted(latencies)
    p50 = _percentile(ordered, 0.50)
    p95 = _percentile(ordered, 0.95)
    p99 = _percentile(ordered, 0.99)
    assert p50 <= p95 <= p99
    served_qps = served / elapsed_s
    shed_rate = shed / OFFERED_REQUESTS

    write_bench_artifact(
        ARTIFACT_PATH,
        "service_sharded",
        {
            "offered_qps": achieved_offered_qps,
            "sharded_served_qps": served_qps,
            "shed_rate": shed_rate,
            "latency_p50_s": p50,
            "latency_p95_s": p95,
            "latency_p99_s": p99,
        },
        shards=SHARDS,
        offered_requests=OFFERED_REQUESTS,
        served=served,
        shed=shed,
        elapsed_s=elapsed_s,
        max_concurrency=8,
        max_queue=64,
        plan_cache_hit_rate=svc_stats.plan_cache.hit_rate,
        frontend=fe_stats,
    )

    with capsys.disabled():
        print()
        print(
            f"sharded service load-gen "
            f"({OFFERED_REQUESTS} requests, {SHARDS} shards)"
        )
        print(f"  offered:   {achieved_offered_qps:10.0f} qps (synthetic)")
        print(f"  served:    {served_qps:10.1f} qps ({served} requests)")
        print(f"  shed:      {shed_rate:10.1%} ({shed} requests)")
        print(f"  latency:   p50 {p50 * 1e3:7.2f} ms   p95 {p95 * 1e3:7.2f} ms"
              f"   p99 {p99 * 1e3:7.2f} ms")
        print(f"  artifact:  {ARTIFACT_PATH}")

    # The shed path is the fast path: overload must not collapse throughput.
    assert served_qps > 0
