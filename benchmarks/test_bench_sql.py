"""Benchmark — the sqlite3 SQL execution backend vs the serial interpreter.

Measures the wall-clock cost of compiling and running workload A3's
pre-planned program through the SQL backend (:mod:`repro.exec.sql`): every
job's semi-joins become correlated ``EXISTS`` subqueries over relation
tables loaded into an in-memory sqlite database.  Before any timing is
trusted, the SQL run is verified to produce output relations **and**
simulated metrics identical to the serial interpreter — the backend's whole
contract (see docs/backends.md).

The SQL path is not expected to beat the in-process interpreter at bench
scale (it pays per-run table loading and query compilation); what CI gates
is its *throughput floor* — ``sql_runs_per_s``, full A3 executions per
second — so a regression that makes the compiled path pathologically slow
(or silently falls back to interpretation, which would show up as the
parity assertions failing under a changed plan) fails the build.

Results are written to ``BENCH_sql.json`` (override the path with
``REPRO_BENCH_SQL_JSON``) so CI can archive the perf trajectory and gate
regressions against the committed floor (``benchmarks/baselines/sql.json``).
"""

from __future__ import annotations

import os
from time import perf_counter

from common import write_bench_artifact
from repro.core.gumbo import Gumbo
from repro.core.options import GumboOptions
from repro.workloads.queries import database_for, workload_query

#: Guard-relation cardinality of the benchmark workload.
DEFAULT_TUPLES = int(os.environ.get("REPRO_BENCH_SQL_TUPLES", 4_000))

#: Where the JSON artifact is written.
ARTIFACT_PATH = os.environ.get("REPRO_BENCH_SQL_JSON", "BENCH_sql.json")

#: Timed repetitions (medians reported).
REPEATS = 3

#: Strategy under test; GREEDY exercises the MSJ + EVAL pipeline.
STRATEGY = "greedy"


def _median(values):
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def test_bench_sql_vs_serial(capsys):
    query = workload_query("A3")
    database = database_for(query, guard_tuples=DEFAULT_TUPLES, seed=7)

    results = {}
    timings = {}
    for backend in ("serial", "sql"):
        gumbo = Gumbo(options=GumboOptions(backend=backend))
        try:
            program = gumbo.plan(query, database, STRATEGY)
            times = []
            for _ in range(REPEATS):
                start = perf_counter()
                result = gumbo.execute_program(query, database, program, STRATEGY)
                times.append(perf_counter() - start)
        finally:
            gumbo.close()
        results[backend] = result
        timings[backend] = _median(times)

    # Correctness first: identical outputs and identical simulated metrics.
    serial, sql = results["serial"], results["sql"]
    assert set(serial.all_outputs) == set(sql.all_outputs)
    for name in serial.all_outputs:
        assert (
            serial.all_outputs[name].tuples() == sql.all_outputs[name].tuples()
        ), name
    assert serial.summary() == sql.summary()
    for job_id, expected in serial.metrics.job_metrics.items():
        got = sql.metrics.job_metrics[job_id]
        assert expected.partitions == got.partitions, job_id
        assert expected.reduce_task_durations == got.reduce_task_durations, job_id
    assert sql.metrics.backend == "sql"

    sql_runs_per_s = 1.0 / timings["sql"] if timings["sql"] > 0 else float("inf")
    relative = (
        timings["sql"] / timings["serial"]
        if timings["serial"] > 0
        else float("inf")
    )
    write_bench_artifact(
        ARTIFACT_PATH,
        "sql",
        {
            "serial_s": timings["serial"],
            "sql_s": timings["sql"],
            "sql_runs_per_s": sql_runs_per_s,
        },
        workload="A3",
        strategy=STRATEGY,
        guard_tuples=DEFAULT_TUPLES,
        sql_vs_serial=relative,
        output_tuples=sum(len(rel) for rel in sql.all_outputs.values()),
    )

    with capsys.disabled():
        print()
        print(
            f"sql-backend benchmark (A3, {DEFAULT_TUPLES} guard tuples, "
            f"strategy {STRATEGY}, in-memory sqlite)"
        )
        print(f"  serial (median):     {timings['serial'] * 1e3:9.3f} ms")
        print(f"  sql (median):        {timings['sql'] * 1e3:9.3f} ms")
        print(f"  sql runs/s:          {sql_runs_per_s:9.2f}")
        print(f"  artifact:            {ARTIFACT_PATH}")
