"""Benchmark E8 — Figure 8: varying the number of conditional atoms (2-16).

Regenerates the query-size sweep of Section 5.4 and checks its claims: SEQ's
net time grows with the number of atoms much faster than the parallel
strategies'; PAR's total time grows faster than GREEDY's and 1-ROUND's
because it cannot exploit message packing.
"""

from repro.experiments import run_figure8

from common import SWEEP_BENCH_SCALE, bench_environment


def test_bench_figure8(benchmark, capsys):
    environment = bench_environment(SWEEP_BENCH_SCALE)
    result = benchmark.pedantic(
        run_figure8, kwargs={"environment": environment}, rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(result.format())

    def growth(strategy, metric):
        small = getattr(result.record("2atoms", strategy), metric)
        large = getattr(result.record("16atoms", strategy), metric)
        return large / small if small else float("inf")

    # SEQ's net time grows (more rounds); the parallel strategies stay flat(ter).
    assert growth("seq", "net_time") > 1.5
    assert growth("seq", "net_time") > growth("greedy", "net_time")
    assert growth("seq", "net_time") > growth("1-round", "net_time")
    # PAR's total time grows faster than GREEDY's and 1-ROUND's (no packing).
    assert growth("par", "total_time") > growth("greedy", "total_time")
    assert growth("par", "total_time") > growth("1-round", "total_time")
    # At every size, 1-ROUND has the lowest net time.
    for atoms in (2, 4, 8, 12, 16):
        label = f"{atoms}atoms"
        one_round = result.record(label, "1-round")
        for strategy in ("seq", "par", "greedy"):
            assert one_round.net_time <= result.record(label, strategy).net_time + 1e-9
