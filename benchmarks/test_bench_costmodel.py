"""Benchmark E3 — Section 5.2 "Cost Model": Gumbo's Equation (2) vs Wang's Equation (3).

Regenerates the cost-model comparison: the GREEDY plans each model chooses on
the stress query (whose inputs have wildly different map input/output
ratios), the accuracy with which each model predicts the cost of the grouped
stress job, and the pairwise ranking accuracy over candidate MSJ jobs of the
A-queries (the paper reports 72.28 % for cost_gumbo vs 69.37 % for cost_wang —
i.e. the two models behave similarly when inputs contribute proportionally).
"""

from repro.experiments import run_cost_model_experiment

from common import bench_environment


def test_bench_cost_model(benchmark, capsys):
    result = benchmark.pedantic(
        run_cost_model_experiment,
        kwargs={"environment": bench_environment()},
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print(result.format())

    # The per-partition model estimates the asymmetric stress job at least as
    # accurately as the aggregate model (which averages the fan-out away).
    errors = result.estimation_error
    assert abs(errors["gumbo"]) <= abs(errors["wang"]) + 1e-9

    # Both models rank proportional-input jobs similarly well (paper: ~72 % vs ~69 %).
    accuracy = result.ranking_accuracy
    assert accuracy["gumbo"] >= accuracy["wang"] - 0.05
    assert accuracy["gumbo"] > 0.6

    # Whatever plans the two models induce, the gumbo-driven plan is never worse.
    reductions = result.reductions()
    if reductions:
        assert reductions.get("total_time_reduction_pct", 0.0) >= -1.0
        assert reductions.get("net_time_reduction_pct", 0.0) >= -1.0
