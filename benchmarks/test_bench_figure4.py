"""Benchmark E2 — Figure 4: the large BSGF queries B1 and B2.

Regenerates the Figure 4 table and checks the paper's claims: B1's deep
sequential plan makes SEQ slow in net time while PAR explodes the total time
and GREEDY keeps both low; on B2 the parallel strategies win on both metrics
and the 1-ROUND plan is the overall best.
"""

from repro.experiments import run_figure4

from common import bench_environment


def test_bench_figure4(benchmark, capsys):
    result = benchmark.pedantic(
        run_figure4, kwargs={"environment": bench_environment()}, rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(result.format())

    b1_seq = result.record("B1", "seq")
    b1_par = result.record("B1", "par")
    b1_greedy = result.record("B1", "greedy")
    # B1: 17 sequential rounds vs 2 -> a large net-time reduction (paper: 22%).
    assert b1_seq.rounds > b1_par.rounds
    assert b1_par.net_time < 0.6 * b1_seq.net_time
    # PAR inflates the total time; GREEDY pulls it back towards SEQ.
    assert b1_par.total_time > 1.5 * b1_seq.total_time
    assert b1_greedy.total_time < b1_par.total_time
    assert b1_greedy.net_time <= 1.2 * b1_par.net_time

    b2_seq = result.record("B2", "seq")
    b2_par = result.record("B2", "par")
    b2_greedy = result.record("B2", "greedy")
    b2_one_round = result.record("B2", "1-round")
    # B2: parallel evaluation reduces net AND total time (paper: 44% / 43%).
    assert b2_par.net_time < b2_seq.net_time
    assert b2_par.total_time < b2_seq.total_time
    assert b2_greedy.total_time <= b2_par.total_time
    # 1-ROUND reduces both metrics by a large margin (paper: >80%).
    assert b2_one_round.net_time < 0.5 * b2_seq.net_time
    assert b2_one_round.total_time < 0.5 * b2_seq.total_time
