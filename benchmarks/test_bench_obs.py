"""Benchmark — tracing overhead of the observability subsystem (``repro.obs``).

Measures the wall-clock cost of turning ``GumboOptions.trace`` on: workload
A3 is executed on the serial backend with tracing off (the no-op fast path —
every ``obs.span(...)`` call collapses to one ContextVar read) and with
tracing on (full span trees published to the trace collector).  Before any
timing is trusted, the traced and untraced runs are verified to produce
identical output relations **and** identical simulated metrics — tracing
must be purely observational.

The gated metric is ``tracing_efficiency = untraced_s / traced_s`` (higher
is better; 1.0 means tracing is free).  The in-test assertion is a loose
sanity floor; the real gate is the committed floor in
``benchmarks/baselines/obs.json`` enforced by ``compare_baselines.py`` in
the bench-regression CI job.

Results are written to ``BENCH_obs.json`` (override the path with
``REPRO_BENCH_OBS_JSON``) in the unified artifact schema
(``benchmarks/common.py:write_bench_artifact``).
"""

from __future__ import annotations

import os
from time import perf_counter

from common import write_bench_artifact
from repro import obs
from repro.core.gumbo import Gumbo
from repro.core.options import GumboOptions
from repro.workloads.queries import database_for, workload_query

#: Guard-relation cardinality of the benchmark workload.
DEFAULT_TUPLES = int(os.environ.get("REPRO_BENCH_OBS_TUPLES", 2_000))

#: Where the JSON artifact is written.
ARTIFACT_PATH = os.environ.get("REPRO_BENCH_OBS_JSON", "BENCH_obs.json")

#: Timed repetitions (medians reported).
REPEATS = 5

STRATEGY = "greedy"


def _median(values):
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def test_bench_tracing_overhead(capsys):
    query = workload_query("A3")
    database = database_for(query, guard_tuples=DEFAULT_TUPLES, seed=11)

    results = {}
    timings = {}
    span_count = 0
    for traced in (False, True):
        gumbo = Gumbo(options=GumboOptions(trace=traced))
        program = gumbo.plan(query, database, STRATEGY)
        times = []
        for _ in range(REPEATS):
            start = perf_counter()
            result = gumbo.execute_program(query, database, program, STRATEGY)
            times.append(perf_counter() - start)
        results[traced] = result
        timings[traced] = _median(times)
        traces = obs.drain_traces()
        if traced:
            assert traces, "tracing on produced no traces"
            span_count = len(traces[-1].spans)
        else:
            assert not traces, "tracing off leaked spans into the collector"

    # Correctness first: tracing must not perturb outputs or simulated
    # metrics in any way.
    untraced, traced = results[False], results[True]
    assert set(untraced.all_outputs) == set(traced.all_outputs)
    for name in untraced.all_outputs:
        assert (
            untraced.all_outputs[name].tuples() == traced.all_outputs[name].tuples()
        ), name
    assert untraced.summary() == traced.summary()

    efficiency = (
        timings[False] / timings[True] if timings[True] > 0 else float("inf")
    )
    write_bench_artifact(
        ARTIFACT_PATH,
        "obs",
        {
            "tracing_efficiency": efficiency,
            "untraced_s": timings[False],
            "traced_s": timings[True],
        },
        workload="A3",
        strategy=STRATEGY,
        guard_tuples=DEFAULT_TUPLES,
        spans_per_execution=span_count,
        output_tuples=sum(len(rel) for rel in traced.all_outputs.values()),
    )

    with capsys.disabled():
        print()
        print(
            f"tracing-overhead benchmark (A3, {DEFAULT_TUPLES} guard tuples, "
            f"strategy {STRATEGY}, serial backend)"
        )
        print(f"  untraced (median): {timings[False] * 1e3:9.3f} ms")
        print(f"  traced (median):   {timings[True] * 1e3:9.3f} ms")
        print(f"  efficiency:        {efficiency:9.3f}x (1.0 = tracing free)")
        print(f"  spans/execution:   {span_count:9d}")
        print(f"  artifact:          {ARTIFACT_PATH}")

    # Loose in-test sanity bar: tracing must not double the wall time.  The
    # committed floor in benchmarks/baselines/obs.json is the real gate.
    assert efficiency >= 0.5, (
        f"tracing overhead too high: traced {timings[True] * 1e3:.3f} ms vs "
        f"untraced {timings[False] * 1e3:.3f} ms ({efficiency:.3f}x)"
    )
