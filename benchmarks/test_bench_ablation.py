"""Ablation benchmarks: the individual Gumbo optimisations of Section 5.1.

Not a figure of the paper, but DESIGN.md calls these design choices out for
ablation: message packing, tuple references, intermediate-size-based reducer
allocation and the cost model driving GREEDY.  The benchmark toggles each
optimisation on the sharing-heavy queries A2 and A3 and verifies the expected
direction of the effect.
"""

from repro.experiments import run_ablation

from common import bench_environment


def test_bench_ablation(benchmark, capsys):
    result = benchmark.pedantic(
        run_ablation, kwargs={
            "environment": bench_environment()
        }, rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(result.format())

    for query_id in ("A2", "A3"):
        all_on = result.record(query_id, "GREEDY[ALL-ON]")
        no_packing = result.record(query_id, "GREEDY[NO-PACKING]")
        no_reference = result.record(query_id, "GREEDY[NO-TUPLE-REF]")
        all_off = result.record(query_id, "GREEDY[ALL-OFF]")

        # Packing and tuple references both reduce communication.
        assert all_on.communication_gb < no_packing.communication_gb
        assert all_on.communication_gb <= no_reference.communication_gb
        # With every optimisation disabled, both communication and total time
        # are at least as high as with everything enabled.
        assert all_off.communication_gb >= all_on.communication_gb
        assert all_off.total_time >= all_on.total_time - 1e-6
