"""Benchmark — the shared-memory data plane vs pickle chunk shipping.

Two phases, both specified in ``docs/dataplane.md``:

1. **Shipping race** — the map chunks of a large-guard A3 database (every
   relation of the workload, chunked as a map wave) are delivered to a
   ``multiprocessing`` pool under each plane and timed end to end: encode
   on the driver, cross the boundary, decode to a usable
   :class:`ColumnBlock` in the worker (``repro.exec.shm.payload_probe``).
   The pickle plane pays serialise + pipe + unpickle + ``array.tolist()``
   per chunk; the shm plane pays one placement ``memcpy`` plus an
   ``shm_open``/``mmap`` attach per worker.  The acceptance bar is a ≥ 2×
   shm advantage at the default 40 000-guard-tuple wave (40 000 × 8
   ``int64`` columns across A3's five relations).

2. **Respawn recovery** — a sharded cluster holding a large resident
   database has a shard killed mid-request; the first request after the
   crash pays respawn + resident reload + retry.  On the shm plane the
   reload re-sends only segment descriptors and the respawned worker
   re-attaches the still-resident segments; on the pickle plane every
   resident chunk is re-shipped by value.  Reported as
   ``respawn_recovery_speedup`` (pickle recovery time / shm recovery
   time).

Before any timing is trusted, both planes are verified bit-identical: the
decoded wave matches the source rows exactly, and a Section 5 workload
executed on the parallel backend produces identical outputs and simulated
metrics under ``shm`` and ``pickle``.

Results are written to ``BENCH_dataplane.json`` (override with
``REPRO_BENCH_DATAPLANE_JSON``; wave size with
``REPRO_BENCH_DATAPLANE_TUPLES``) and gated against the committed floors
in ``benchmarks/baselines/dataplane.json``.
"""

from __future__ import annotations

import multiprocessing
import os
import struct
from time import perf_counter

import pytest

from common import write_bench_artifact
from repro.core.gumbo import Gumbo
from repro.exec.base import make_backend
from repro.exec.shm import (
    SegmentPool,
    encode_block,
    payload_probe,
    payload_segment,
    shm_available,
    typed_nbytes,
)
from repro.model.database import Database
from repro.service.sharded.routing import shard_for_chunk
from repro.workloads.queries import bsgf_query_set, database_for

#: Guard-relation cardinality of the shipped A3 wave (the acceptance setup
#: requires >= 40000; every A3 relation gets this many tuples, eight int64
#: columns in total per guard tuple).
DEFAULT_TUPLES = int(os.environ.get("REPRO_BENCH_DATAPLANE_TUPLES", 40_000))

#: Where the JSON artifact is written.
ARTIFACT_PATH = os.environ.get(
    "REPRO_BENCH_DATAPLANE_JSON", "BENCH_dataplane.json"
)

#: Timed repetitions (medians reported).
REPEATS = 3

#: Map chunks per relation in the shipped wave (mirrors a parallel map
#: phase fanning each relation out across the pool).
CHUNKS_PER_RELATION = 4

#: Columns per row of the crash-recovery resident relation.
ARITY = 8

#: Pool width for the shipping race and shard count for the recovery phase.
WORKERS = 2

STRATEGY = "greedy"


def _median(values):
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def _resident_rows():
    # Full-entropy doubles (including negative-zero stripes) so neither
    # plane benefits from value interning.
    return [
        tuple(
            float(row * ARITY + col) / 3.0 if (row + col) % 97 else -0.0
            for col in range(ARITY)
        )
        for row in range(DEFAULT_TUPLES)
    ]


def _bits(row):
    return tuple(
        struct.pack("<d", value) if isinstance(value, float) else value
        for value in row
    )


def _ship_wave(pool, chunks, plane):
    """Encode, ship and decode one wave; returns (seconds, rows delivered)."""
    segments = SegmentPool()
    payloads = []
    try:
        start = perf_counter()
        payloads = [encode_block(chunk, segments, plane) for chunk in chunks]
        counts = pool.map(payload_probe, payloads)
        elapsed = perf_counter() - start
    finally:
        for payload in payloads:
            name = payload_segment(payload)
            if name is not None:
                segments.release(name)
        segments.close_all()
    return elapsed, sum(counts)


def _assert_results_match(reference, candidate):
    assert set(reference.all_outputs) == set(candidate.all_outputs)
    for name in reference.all_outputs:
        assert (
            reference.all_outputs[name].tuples()
            == candidate.all_outputs[name].tuples()
        ), name
    assert reference.summary() == candidate.summary()


def _recovery_seconds(plane, query, database, serial, crash_shard):
    backend = make_backend("sharded", shards=WORKERS, data_plane=plane)
    try:
        gumbo = Gumbo(backend=backend)
        warm = gumbo.execute(query, database, STRATEGY)
        _assert_results_match(serial, warm)
        times = []
        for _ in range(REPEATS):
            backend.cluster.inject_crash(crash_shard)
            start = perf_counter()
            recovered = gumbo.execute(query, database, STRATEGY)
            times.append(perf_counter() - start)
            _assert_results_match(serial, recovered)
        assert backend.cluster.respawns >= REPEATS
        return _median(times)
    finally:
        backend.close()


@pytest.mark.skipif(not shm_available(), reason="POSIX shared memory required")
def test_bench_dataplane(capsys):
    wave_queries = bsgf_query_set("A3")
    wave_db = database_for(
        wave_queries, guard_tuples=DEFAULT_TUPLES, selectivity=0.5, seed=7
    )
    chunks = []
    for relation in wave_db:
        chunks.extend(relation.columns().chunks(CHUNKS_PER_RELATION))
    wave_rows = sum(chunk.length for chunk in chunks)
    wave_bytes = sum(typed_nbytes(chunk.packed()) for chunk in chunks)

    # Correctness first: the decoded wave is bit-identical to the source
    # under both planes (in-process decode; the worker-side path is the
    # same code and is parity-tested in tests/test_dataplane.py) ...
    from repro.exec.shm import decode_payload

    for plane in ("shm", "pickle"):
        segments = SegmentPool()
        try:
            probe = encode_block(chunks[0], segments, plane)
            decoded = decode_payload(probe, segments)
            assert list(map(_bits, decoded.rows())) == list(
                map(_bits, chunks[0].rows())
            )
            decoded.release()
        finally:
            segments.close_all()

    # ... and a real workload on the parallel backend agrees across planes.
    parity_queries = bsgf_query_set("A3")
    parity_db = database_for(
        parity_queries, guard_tuples=200, selectivity=0.5, seed=7
    )
    parity = {}
    for plane in ("shm", "pickle"):
        backend = make_backend("parallel", workers=WORKERS, data_plane=plane)
        try:
            parity[plane] = Gumbo(backend=backend).execute(
                parity_queries, parity_db, STRATEGY
            )
        finally:
            backend.close()
    _assert_results_match(parity["pickle"], parity["shm"])

    # Phase 1: race the shipping path over one long-lived pool.
    timings = {}
    with multiprocessing.get_context().Pool(processes=WORKERS) as pool:
        _ship_wave(pool, chunks, "pickle")  # warm the pool and the importers
        for plane in ("shm", "pickle"):
            times = []
            for _ in range(REPEATS):
                elapsed, delivered = _ship_wave(pool, chunks, plane)
                assert delivered == wave_rows
                times.append(elapsed)
            timings[plane] = _median(times)
    ship_speedup = (
        timings["pickle"] / timings["shm"]
        if timings["shm"] > 0
        else float("inf")
    )

    # Phase 2: cold start after a shard crash.  The retried request is
    # deliberately tiny (R/S only); what the respawned shard *must* do first
    # is reload every resident relation it owns — including the large BIG
    # table the query never touches — so the timing isolates respawn +
    # resident reload.  The crashed shard is the one owning BIG's chunk; the
    # shm plane reloads by re-attaching the cluster-owned segments
    # (descriptors only), the pickle plane re-ships and re-materialises BIG
    # by value.
    recovery_query = "Z := SELECT (x, y) FROM R(x, y) WHERE S(x);"
    recovery_db = Database.from_dict(
        {
            "R": [(float(i), float(i + 1)) for i in range(100)],
            "S": [(float(i),) for i in range(0, 100, 2)],
            "BIG": _resident_rows(),
        }
    )
    crash_shard = shard_for_chunk("BIG", 0, WORKERS)
    serial = Gumbo().execute(recovery_query, recovery_db, STRATEGY)
    recovery = {
        plane: _recovery_seconds(
            plane, recovery_query, recovery_db, serial, crash_shard
        )
        for plane in ("shm", "pickle")
    }
    recovery_speedup = (
        recovery["pickle"] / recovery["shm"]
        if recovery["shm"] > 0
        else float("inf")
    )

    write_bench_artifact(
        ARTIFACT_PATH,
        "dataplane",
        {
            "pickle_ship_s": timings["pickle"],
            "shm_ship_s": timings["shm"],
            "dataplane_ship_speedup": ship_speedup,
            "pickle_recovery_s": recovery["pickle"],
            "shm_recovery_s": recovery["shm"],
            "respawn_recovery_speedup": recovery_speedup,
        },
        workload="A3",
        guard_tuples=DEFAULT_TUPLES,
        wave_rows=wave_rows,
        wave_bytes=wave_bytes,
        chunks=len(chunks),
        workers=WORKERS,
        recovery_resident_tuples=DEFAULT_TUPLES,
    )

    with capsys.disabled():
        print()
        print(
            f"data-plane benchmark (A3, {DEFAULT_TUPLES} guard tuples, "
            f"{len(chunks)} chunks / {wave_bytes} typed bytes, "
            f"{WORKERS} workers)"
        )
        print(f"  pickle shipping (median): {timings['pickle'] * 1e3:9.3f} ms")
        print(f"  shm shipping (median):    {timings['shm'] * 1e3:9.3f} ms")
        print(f"  shipping speedup:         {ship_speedup:9.2f}x")
        print(f"  pickle recovery (median): {recovery['pickle'] * 1e3:9.3f} ms")
        print(f"  shm recovery (median):    {recovery['shm'] * 1e3:9.3f} ms")
        print(f"  recovery speedup:         {recovery_speedup:9.2f}x")
        print(f"  artifact:                 {ARTIFACT_PATH}")

    # The acceptance bar: shm delivers the wave >= 2x faster than pickle.
    assert ship_speedup >= 2.0, (
        f"shm shipping too slow: {timings['shm'] * 1e3:.3f} ms vs pickle "
        f"{timings['pickle'] * 1e3:.3f} ms ({ship_speedup:.2f}x)"
    )
