"""Benchmark E4 — Figure 5: SGF queries C1-C4 under SEQUNIT / PARUNIT / GREEDY-SGF.

Regenerates the relative-to-SEQUNIT table of Section 5.3 and checks its
qualitative claims: PARUNIT lowers net times (paper: 55 % lower on average),
GREEDY-SGF lowers total times below both SEQUNIT and PARUNIT while keeping
net times well below SEQUNIT.
"""

from repro.experiments import averages_by_strategy, run_figure5

from common import bench_environment


def test_bench_figure5(benchmark, capsys):
    result = benchmark.pedantic(
        run_figure5, kwargs={"environment": bench_environment()}, rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(result.format())

    averages = averages_by_strategy(result.records, "sequnit")
    # PARUNIT: lowest net times.
    assert averages["PARUNIT"]["net_time_pct"] < 80.0
    # GREEDY-SGF: net time below SEQUNIT, total time below both.
    assert averages["GREEDY-SGF"]["net_time_pct"] < 100.0
    assert averages["GREEDY-SGF"]["total_time_pct"] < 100.0
    assert (
        averages["GREEDY-SGF"]["total_time_pct"]
        <= averages["PARUNIT"]["total_time_pct"]
    )

    # Per query, GREEDY-SGF never reads more than SEQUNIT (it groups jobs).
    for query_id in ("C1", "C2", "C3", "C4"):
        greedy = result.record(query_id, "greedy-sgf")
        sequnit = result.record(query_id, "sequnit")
        assert greedy.input_gb <= sequnit.input_gb + 1e-9
