"""Benchmark — the serving layer: plan-cache speedup and service throughput.

Measures what the query service adds over bare ``Gumbo.execute``:

* **warm vs cold planning** — time to produce a plan for a repeated query
  through the plan cache (warm hit) vs re-planning from scratch (cold:
  statistics collection + strategy selection + plan construction).  The
  acceptance bar is a ≥ 5× warm/cold advantage — in practice the hit path is
  a fingerprint + dict lookup and lands orders of magnitude faster.
* **serving throughput** — queries/second for a repeated mixed workload on
  the thread-pooled service, with the plan-cache hit rate.

Results are written to ``BENCH_service.json`` (override the path with
``REPRO_BENCH_SERVICE_JSON``) so CI can archive the perf trajectory.
"""

from __future__ import annotations

import os
from time import perf_counter

from common import write_bench_artifact
from repro.core.gumbo import Gumbo
from repro.service import QueryService
from repro.workloads.queries import database_for, workload_query

#: Guard-relation cardinality of the benchmark workload.
DEFAULT_TUPLES = int(os.environ.get("REPRO_BENCH_SERVICE_TUPLES", 2_000))

#: Where the JSON artifact is written.
ARTIFACT_PATH = os.environ.get("REPRO_BENCH_SERVICE_JSON", "BENCH_service.json")

#: Cold/warm planning repetitions (medians reported).
PLAN_REPEATS = 5

#: Requests served in the throughput measurement.
SERVE_REQUESTS = 60


def _median(values):
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def test_bench_service_plan_cache_and_throughput(capsys):
    query = workload_query("A3")
    database = database_for(query, guard_tuples=DEFAULT_TUPLES, seed=11)

    # -- cold planning: fresh statistics + AUTO strategy selection every time.
    gumbo = Gumbo()
    cold_times = []
    for _ in range(PLAN_REPEATS):
        start = perf_counter()
        gumbo.plan_with(query, database, "auto")
        cold_times.append(perf_counter() - start)
    cold_s = _median(cold_times)

    # -- warm planning: the same query through the service's plan cache.
    with QueryService(database, gumbo) as service:
        service.plan(query)  # populate the cache (the one cold miss)
        warm_times = []
        for _ in range(PLAN_REPEATS):
            start = perf_counter()
            planned, was_cached = service.plan(query)
            warm_times.append(perf_counter() - start)
            assert was_cached
        warm_s = _median(warm_times)

        # -- throughput: a repeated mixed workload over concurrent clients.
        mixed = [workload_query("A1"), workload_query("A3")]
        mixed_db = database_for(
            [q for w in mixed for q in w.subqueries],
            guard_tuples=DEFAULT_TUPLES // 4,
            seed=11,
        )
    with QueryService(mixed_db, max_workers=4) as mixed_service:
        requests = [mixed[i % len(mixed)] for i in range(SERVE_REQUESTS)]
        batch = mixed_service.execute_many(requests)
        stats = mixed_service.stats()

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    write_bench_artifact(
        ARTIFACT_PATH,
        "service",
        {
            "plan_cold_s": cold_s,
            "plan_warm_s": warm_s,
            "plan_cache_speedup": speedup,
            "serve_elapsed_s": batch.elapsed_s,
            "serve_throughput_qps": batch.throughput_qps,
            "plan_cache_hit_rate": stats.plan_cache.hit_rate,
        },
        workload="A3",
        guard_tuples=DEFAULT_TUPLES,
        serve_requests=SERVE_REQUESTS,
        plan_cache_hits=stats.plan_cache.hits,
        plan_cache_misses=stats.plan_cache.misses,
    )

    with capsys.disabled():
        print()
        print(f"service benchmark (A3, {DEFAULT_TUPLES} guard tuples)")
        print(f"  cold planning (median): {cold_s * 1e3:9.3f} ms")
        print(f"  warm plan-cache hit:    {warm_s * 1e3:9.3f} ms")
        print(f"  speedup:                {speedup:9.1f}x")
        print(
            f"  throughput:             {batch.throughput_qps:9.1f} queries/s "
            f"({SERVE_REQUESTS} requests, hit rate "
            f"{stats.plan_cache.hit_rate:.0%})"
        )
        print(f"  artifact:               {ARTIFACT_PATH}")

    # The acceptance bar: a warm plan-cache hit beats cold planning >= 5x.
    assert speedup >= 5.0, (
        f"plan cache too slow: warm {warm_s * 1e3:.3f} ms vs "
        f"cold {cold_s * 1e3:.3f} ms ({speedup:.1f}x)"
    )
    # The mixed workload planned each distinct query once, then hit.
    assert stats.plan_cache.misses == len(mixed)
    assert stats.plan_cache.hits == SERVE_REQUESTS - len(mixed)
    assert batch.throughput_qps > 0
