"""Benchmark — the parallel backend's real wall-clock speedup.

Unlike the paper-reproduction benchmarks (which check *simulated* Hadoop
metrics), this benchmark measures *actual* elapsed time: the same generated
workload is executed on the multiprocessing backend with a single worker and
with ``PARALLEL_WORKERS`` workers, and the wall-clock speedup is reported.
Output relations and simulated metrics must be bit-identical across all runs
— the backends only differ in where the map/reduce functions execute.

The speedup assertion is gated on the host's CPU count: real parallel
speedup is physically impossible on a single core, so there the benchmark
only records the measurement (and checks parity).  The workload size can be
scaled through ``REPRO_BENCH_PARALLEL_TUPLES`` to keep pool-startup overhead
amortised on slower machines.
"""

from __future__ import annotations

import os

from repro.core.gumbo import Gumbo
from repro.exec import ParallelBackend, SimulatedBackend
from repro.workloads.queries import bsgf_query_set, database_for
from repro.workloads.scaling import ScaledEnvironment

#: Worker count of the "many workers" configuration (the acceptance setup).
PARALLEL_WORKERS = 4

#: Guard-relation cardinality; large enough that map work dominates the pool
#: startup and IPC overheads on a typical multi-core machine.
DEFAULT_TUPLES = int(os.environ.get("REPRO_BENCH_PARALLEL_TUPLES", 8_000))


def _execute_on(backend, queries, database, warmup_database):
    """Warm the backend's pool on a tiny run, then execute the real workload."""
    gumbo = Gumbo(backend=backend)
    gumbo.execute(queries, warmup_database, "par")
    return gumbo.execute(queries, database, "par")


def test_bench_parallel_backend_speedup(capsys):
    queries = bsgf_query_set("A1")
    database = database_for(
        queries, guard_tuples=DEFAULT_TUPLES, selectivity=0.5, seed=5
    )
    warmup = database_for(queries, guard_tuples=50, selectivity=0.5, seed=5)
    environment = ScaledEnvironment(scale=1.0, nodes=10)

    serial = Gumbo(backend=SimulatedBackend(environment.engine())).execute(
        queries, database, "par"
    )
    runs = {}
    for workers in (1, PARALLEL_WORKERS):
        backend = ParallelBackend(environment.engine(), workers=workers)
        try:
            runs[workers] = _execute_on(backend, queries, database, warmup)
        finally:
            backend.close()

    single, many = runs[1], runs[PARALLEL_WORKERS]
    speedup = (
        single.metrics.wall_elapsed_s / many.metrics.wall_elapsed_s
        if many.metrics.wall_elapsed_s > 0
        else float("inf")
    )

    with capsys.disabled():
        print()
        print(
            f"A1 ({DEFAULT_TUPLES} guard tuples), strategy par, "
            f"{os.cpu_count()} CPUs"
        )
        header = f"{'backend':<14} {'total_s':>10} {'net_s':>10} {'wall_s':>10}"
        print(header)
        print("-" * len(header))
        for label, result in (
            ("serial", serial),
            ("parallel[1]", single),
            (f"parallel[{PARALLEL_WORKERS}]", many),
        ):
            metrics = result.metrics
            print(
                f"{label:<14} {metrics.total_time:>10.1f} "
                f"{metrics.net_time:>10.1f} {metrics.wall_elapsed_s:>10.3f}"
            )
        print(
            f"wall-clock speedup parallel[{PARALLEL_WORKERS}] "
            f"vs parallel[1]: {speedup:.2f}x"
        )

    # Byte-identical results on every backend and worker count.
    for result in (single, many):
        assert result.summary() == serial.summary()
        assert set(result.all_outputs) == set(serial.all_outputs)
        for name, relation in serial.all_outputs.items():
            assert result.all_outputs[name].tuples() == relation.tuples(), name

    # Real wall-clock times were measured everywhere.
    assert serial.metrics.wall_elapsed_s > 0
    assert single.metrics.wall_elapsed_s > 0
    assert many.metrics.wall_elapsed_s > 0

    # Speedup expectations scale with the hardware actually available AND the
    # workload size: below the default tuple count the serial parent-side
    # shuffle merge dominates (Amdahl), so a shrunken workload — as CI uses to
    # stay within shared-runner budgets — only records the measurement.
    # REPRO_BENCH_ASSERT_SPEEDUP=1/0 forces the strict assertion on or off.
    cpus = os.cpu_count() or 1
    forced = os.environ.get("REPRO_BENCH_ASSERT_SPEEDUP")
    strict = (
        forced == "1"
        if forced in ("0", "1")
        else cpus >= 4 and DEFAULT_TUPLES >= 8_000
    )
    if strict:
        assert speedup >= 1.5, (
            f"expected >= 1.5x speedup on {cpus} CPUs, got {speedup:.2f}x"
        )
    # On a single core (or a deliberately small workload) there is nothing to
    # parallelise over; the measurement is still recorded above so the
    # speedup curve has its baseline point.
